"""SQL lexer and parser tests, including the IFDB dialect extensions."""

import pytest

from repro.db import expressions as ex
from repro.errors import SQLSyntaxError
from repro.sql import ast, parse_expression, parse_script, parse_statement
from repro.sql.lexer import tokenize


class TestLexer:
    def test_strings_with_escaped_quotes(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_line_and_block_comments(self):
        tokens = tokenize("SELECT 1 -- comment\n + /* block */ 2")
        values = [t.value for t in tokens if t.kind == "number"]
        assert values == [1, 2]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 .25")
        assert [t.value for t in tokens[:-1]] == [1, 2.5, 1000.0, 0.25]

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "Weird Name"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_params(self):
        tokens = tokenize("a = ? AND b = ?")
        assert sum(1 for t in tokens if t.kind == "param") == 2


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_statement("SELECT a, b FROM t WHERE a = 1")
        assert isinstance(statement, ast.Select)
        assert len(statement.items) == 2
        assert isinstance(statement.where, ex.Compare)

    def test_star_and_qualified_star(self):
        statement = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(statement.items[0].expr, ex.Star)
        assert statement.items[1].expr.table == "t"

    def test_joins(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT OUTER JOIN c ON c.y = b.y")
        join = statement.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "left"
        assert join.left.kind == "inner"

    def test_group_order_limit(self):
        statement = parse_statement(
            "SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 1 "
            "ORDER BY n DESC, b ASC LIMIT 5 OFFSET 2")
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit.value == 5
        assert statement.offset.value == 2

    def test_aggregates_and_distinct(self):
        statement = parse_statement("SELECT COUNT(DISTINCT a), AVG(b) FROM t")
        agg = statement.items[0].expr
        assert isinstance(agg, ex.Aggregate)
        assert agg.distinct

    def test_subqueries(self):
        statement = parse_statement(
            "SELECT * FROM (SELECT a FROM t) s "
            "WHERE EXISTS (SELECT 1 FROM u) AND a IN (SELECT a FROM v)")
        assert isinstance(statement.from_items[0], ast.SubqueryRef)

    def test_case_expression(self):
        statement = parse_statement(
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t")
        assert isinstance(statement.items[0].expr, ex.Case)

    def test_alias_forms(self):
        statement = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_items[0].alias == "u"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 SELECT 2")


class TestDMLParsing:
    def test_insert_values(self):
        statement = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_select(self):
        statement = parse_statement("INSERT INTO t SELECT * FROM u")
        assert statement.select is not None

    def test_insert_declassifying_clause(self):
        statement = parse_statement(
            "INSERT INTO Drives VALUES (1, 2) "
            "DECLASSIFYING (alice_drives, 'alice-cars')")
        assert statement.declassifying == ["alice_drives", "alice-cars"]

    def test_update(self):
        statement = parse_statement(
            "UPDATE t SET a = a + 1, b = ? WHERE c = 3")
        assert len(statement.assignments) == 2
        assert isinstance(statement.where, ex.Compare)

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a IS NOT NULL")
        assert isinstance(statement.where, ex.IsNull)
        assert statement.where.negated


class TestDDLParsing:
    def test_create_table_with_constraints(self):
        statement = parse_statement("""
            CREATE TABLE t (
                id INT PRIMARY KEY,
                name VARCHAR(20) NOT NULL UNIQUE,
                parent INT REFERENCES p(id) MATCH LABEL,
                amount NUMERIC(12, 2) DEFAULT 0,
                UNIQUE (name, parent),
                FOREIGN KEY (parent) REFERENCES p(id) DEFERRABLE,
                CHECK (amount >= 0),
                LABEL CHECK (LABEL_CONTAINS(_label, 'secret'))
            )""")
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].type_length == 20
        assert statement.columns[2].match_label
        assert statement.columns[3].has_default
        kinds = [c.kind for c in statement.constraints]
        assert kinds == ["unique", "foreign_key", "check", "label_check"]
        assert statement.constraints[1].deferred

    def test_create_view_with_declassifying(self):
        statement = parse_statement(
            "CREATE VIEW PCMembers AS SELECT firstName FROM ContactInfo "
            "WHERE isPC = TRUE WITH DECLASSIFYING (all_contacts)")
        assert isinstance(statement, ast.CreateView)
        assert statement.declassifying == ["all_contacts"]

    def test_create_index(self):
        statement = parse_statement("CREATE ORDERED INDEX i ON t (a, b)")
        assert statement.ordered
        assert statement.columns == ["a", "b"]

    def test_drop(self):
        assert isinstance(parse_statement("DROP TABLE IF EXISTS t"),
                          ast.DropTable)
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)


class TestTransactionsAndScripts:
    def test_begin_variants(self):
        assert parse_statement("BEGIN").isolation is None
        assert parse_statement(
            "BEGIN ISOLATION LEVEL SERIALIZABLE").isolation == "serializable"
        assert isinstance(parse_statement("COMMIT"), ast.Commit)
        assert isinstance(parse_statement("ABORT"), ast.Rollback)

    def test_call(self):
        statement = parse_statement("CALL addsecrecy('alice_medical')")
        assert statement.name == "addsecrecy"
        assert len(statement.args) == 1

    def test_script_parsing(self):
        statements = parse_script(
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT);")
        assert len(statements) == 2

    def test_parse_expression(self):
        expr = parse_expression("a + 2 * b")
        assert isinstance(expr, ex.BinOp)
        assert expr.op == "+"


class TestOperatorPrecedence:
    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ex.Or)
        assert isinstance(expr.items[1], ex.And)

    def test_multiplication_before_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_not_in(self):
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, ex.InList)
        assert expr.negated

    def test_between_and_not_between(self):
        assert not parse_expression("a BETWEEN 1 AND 2").negated
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_unary_minus(self):
        expr = parse_expression("-a * 2")
        assert expr.op == "*"
        assert isinstance(expr.left, ex.Neg)
