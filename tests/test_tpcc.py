"""TPC-C workload tests: load correctness and transaction semantics."""

import pytest

from repro.db import Database
from repro.workloads import TPCCConfig, TPCCWorkload, customer_last_name


@pytest.fixture(scope="module")
def loaded():
    db = Database(seed=7)
    config = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                        customers_per_district=12, items=40,
                        initial_orders_per_district=9, seed=7)
    workload = TPCCWorkload(db, config)
    workload.load()
    return db, workload


class TestLoader:
    def test_cardinalities(self, loaded):
        db, workload = loaded
        cfg = workload.config
        session = db.connect(workload.process)
        counts = {
            "Warehouse": cfg.warehouses,
            "District": cfg.warehouses * cfg.districts_per_warehouse,
            "Customer": (cfg.warehouses * cfg.districts_per_warehouse
                         * cfg.customers_per_district),
            "Item": cfg.items,
            "Stock": cfg.warehouses * cfg.items,
            "Orders": (cfg.warehouses * cfg.districts_per_warehouse
                       * cfg.initial_orders_per_district),
        }
        for table, expected in counts.items():
            assert session.execute(
                "SELECT COUNT(*) FROM %s" % table).scalar() == expected

    def test_new_orders_are_undelivered_tail(self, loaded):
        db, workload = loaded
        session = db.connect(workload.process)
        rows = session.query(
            "SELECT o.o_carrier_id FROM NewOrder n JOIN Orders o "
            "ON o.o_w_id = n.no_w_id AND o.o_d_id = n.no_d_id "
            "AND o.o_id = n.no_o_id")
        assert rows and all(r[0] is None for r in rows)

    def test_last_name_generation(self):
        assert customer_last_name(0) == "BARBARBAR"
        assert customer_last_name(371) == "PRICALLYOUGHT"
        assert customer_last_name(999) == "EINGEINGEING"


class TestTransactions:
    def test_new_order_advances_district_counter(self, loaded):
        db, workload = loaded
        session = db.connect(workload.process)
        before = session.execute(
            "SELECT SUM(d_next_o_id) FROM District").scalar()
        commits_before = workload.stats.new_order_commits
        rollbacks_before = workload.stats.rollbacks
        for _ in range(5):
            workload.txn_new_order()
        after = session.execute(
            "SELECT SUM(d_next_o_id) FROM District").scalar()
        committed = workload.stats.new_order_commits - commits_before
        assert committed + (workload.stats.rollbacks
                            - rollbacks_before) == 5
        assert after - before == committed

    def test_payment_moves_balances(self, loaded):
        db, workload = loaded
        session = db.connect(workload.process)
        ytd_before = session.execute(
            "SELECT SUM(w_ytd) FROM Warehouse").scalar()
        workload.txn_payment()
        ytd_after = session.execute(
            "SELECT SUM(w_ytd) FROM Warehouse").scalar()
        assert ytd_after > ytd_before
        assert session.execute(
            "SELECT COUNT(*) FROM History").scalar() >= 1

    def test_delivery_consumes_new_orders(self, loaded):
        db, workload = loaded
        session = db.connect(workload.process)
        before = session.execute("SELECT COUNT(*) FROM NewOrder").scalar()
        workload.txn_delivery()
        after = session.execute("SELECT COUNT(*) FROM NewOrder").scalar()
        assert after <= before

    def test_order_status_and_stock_level_read_only(self, loaded):
        db, workload = loaded
        inserted_before = db.rows_inserted
        workload.txn_order_status()
        workload.txn_stock_level()
        assert db.rows_inserted == inserted_before

    def test_mix_distribution(self, loaded):
        _db, workload = loaded
        kinds = [workload._sample_mix() for _ in range(4000)]
        share = kinds.count("new_order") / len(kinds)
        assert 0.40 < share < 0.50
        share = kinds.count("payment") / len(kinds)
        assert 0.38 < share < 0.48


class TestLabelledTPCC:
    def test_tuples_carry_configured_label(self):
        db = Database(seed=8)
        workload = TPCCWorkload(db, TPCCConfig(
            warehouses=1, districts_per_warehouse=1,
            customers_per_district=3, items=5,
            initial_orders_per_district=2, tags_per_label=3, seed=8))
        workload.load()
        table = db.catalog.get_table("Customer")
        for version in table.all_versions():
            assert version.label == workload.label
            assert len(version.label) == 3

    def test_runs_under_labels(self):
        db = Database(seed=9)
        workload = TPCCWorkload(db, TPCCConfig(
            warehouses=1, districts_per_warehouse=1,
            customers_per_district=5, items=10,
            initial_orders_per_district=3, tags_per_label=2, seed=9))
        workload.load()
        stats = workload.run(30)
        assert sum(stats.transactions.values()) + \
            stats.serialization_aborts == 30
