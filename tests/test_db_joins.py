"""Join strategies and subqueries in the planner/executor."""

import pytest


@pytest.fixture
def session(db):
    s = db.connect()
    s.execute("CREATE TABLE dept (id INT PRIMARY KEY, name TEXT)")
    s.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, "
              "name TEXT, salary REAL)")
    s.execute("CREATE INDEX emp_by_dept ON emp (dept_id)")
    for i, name in enumerate(["eng", "ops", "empty"], start=1):
        s.execute("INSERT INTO dept VALUES (?, ?)", (i, name))
    rows = [(1, 1, "ann", 100.0), (2, 1, "ben", 120.0),
            (3, 2, "cat", 90.0), (4, None, "dan", 80.0)]
    for row in rows:
        s.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", row)
    return s


class TestJoins:
    def test_inner_join(self, session):
        rows = session.query(
            "SELECT e.name, d.name FROM emp e JOIN dept d "
            "ON d.id = e.dept_id ORDER BY e.name")
        assert [list(r) for r in rows] == [
            ["ann", "eng"], ["ben", "eng"], ["cat", "ops"]]

    def test_left_join_preserves_unmatched(self, session):
        rows = session.query(
            "SELECT e.name, d.name FROM emp e LEFT JOIN dept d "
            "ON d.id = e.dept_id ORDER BY e.name")
        assert ["dan", None] in [list(r) for r in rows]
        assert len(rows) == 4

    def test_left_join_other_direction(self, session):
        rows = session.query(
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e "
            "ON e.dept_id = d.id ORDER BY d.name, e.name")
        assert ["empty", None] in [list(r) for r in rows]

    def test_implicit_cross_join_with_where(self, session):
        rows = session.query(
            "SELECT e.name FROM emp e, dept d "
            "WHERE e.dept_id = d.id AND d.name = 'ops'")
        assert [r[0] for r in rows] == ["cat"]

    def test_three_way_join(self, session):
        session.execute("CREATE TABLE badge (emp_id INT PRIMARY KEY, "
                        "code TEXT)")
        session.execute("INSERT INTO badge VALUES (1, 'A')")
        rows = session.query(
            "SELECT e.name, d.name, b.code FROM emp e "
            "JOIN dept d ON d.id = e.dept_id "
            "JOIN badge b ON b.emp_id = e.id")
        assert [list(r) for r in rows] == [["ann", "eng", "A"]]

    def test_self_join(self, session):
        rows = session.query(
            "SELECT a.name, b.name FROM emp a JOIN emp b "
            "ON b.dept_id = a.dept_id AND b.id <> a.id ORDER BY a.name")
        assert [list(r) for r in rows] == [["ann", "ben"], ["ben", "ann"]]

    def test_join_with_expression_key(self, session):
        rows = session.query(
            "SELECT d.name FROM dept d JOIN emp e ON e.id = d.id + 0 "
            "ORDER BY d.name")
        assert len(rows) == 3

    def test_cross_join(self, session):
        rows = session.query("SELECT COUNT(*) FROM dept CROSS JOIN emp")
        assert rows[0][0] == 12

    def test_where_on_left_join_right_side(self, session):
        rows = session.query(
            "SELECT e.name FROM emp e LEFT JOIN dept d "
            "ON d.id = e.dept_id WHERE d.name IS NULL")
        assert [r[0] for r in rows] == ["dan"]


class TestSubqueries:
    def test_in_subquery(self, session):
        rows = session.query(
            "SELECT name FROM emp WHERE dept_id IN "
            "(SELECT id FROM dept WHERE name = 'eng') ORDER BY name")
        assert [r[0] for r in rows] == ["ann", "ben"]

    def test_not_in_subquery(self, session):
        rows = session.query(
            "SELECT name FROM dept WHERE id NOT IN "
            "(SELECT dept_id FROM emp WHERE dept_id IS NOT NULL) "
            "ORDER BY name")
        assert [r[0] for r in rows] == ["empty"]

    def test_correlated_exists(self, session):
        rows = session.query(
            "SELECT d.name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id) ORDER BY d.name")
        assert [r[0] for r in rows] == ["eng", "ops"]

    def test_not_exists(self, session):
        rows = session.query(
            "SELECT d.name FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)")
        assert [r[0] for r in rows] == ["empty"]

    def test_scalar_subquery(self, session):
        value = session.execute(
            "SELECT (SELECT MAX(salary) FROM emp)").scalar()
        assert value == 120.0

    def test_from_subquery(self, session):
        rows = session.query(
            "SELECT s.n FROM (SELECT dept_id AS d, COUNT(*) AS n FROM emp "
            "WHERE dept_id IS NOT NULL GROUP BY dept_id) s ORDER BY s.n")
        assert [r[0] for r in rows] == [1, 2]

    def test_aggregate_with_join_group(self, session):
        rows = session.query(
            "SELECT d.name, COUNT(*) AS n, AVG(e.salary) FROM emp e "
            "JOIN dept d ON d.id = e.dept_id "
            "GROUP BY d.name ORDER BY d.name")
        assert [list(r) for r in rows] == [["eng", 2, 110.0],
                                           ["ops", 1, 90.0]]
