"""Authority state tests: ownership, delegation, revocation (section 3.2)."""

import pytest

from repro.core import AuthorityState, IFCProcess, Label, SeededIdGenerator
from repro.errors import AuthorityError, IFCViolation, UnknownPrincipalError


@pytest.fixture
def world(authority):
    alice = authority.create_principal("alice")
    bob = authority.create_principal("bob")
    carol = authority.create_principal("carol")
    tag = authority.create_tag("alice_data", owner=alice.id)
    return authority, alice, bob, carol, tag


class TestOwnership:
    def test_owner_has_authority(self, world):
        authority, alice, bob, _carol, tag = world
        assert authority.has_authority(alice.id, tag.id)
        assert not authority.has_authority(bob.id, tag.id)

    def test_check_authority_raises_with_names(self, world):
        authority, _alice, bob, _carol, tag = world
        with pytest.raises(AuthorityError, match="bob"):
            authority.check_authority(bob.id, tag.id)

    def test_any_principal_can_create_a_tag(self, world):
        authority, _alice, bob, _c, _t = world
        tag = authority.create_tag("bobs", owner=bob.id)
        assert authority.has_authority(bob.id, tag.id)

    def test_unknown_principal_rejected(self, authority):
        with pytest.raises(UnknownPrincipalError):
            authority.create_tag("x", owner=424242)


class TestDelegation:
    def test_delegate_grants_authority(self, world):
        authority, alice, bob, _c, tag = world
        authority.delegate(tag.id, alice.id, bob.id)
        assert authority.has_authority(bob.id, tag.id)

    def test_delegation_chains(self, world):
        authority, alice, bob, carol, tag = world
        authority.delegate(tag.id, alice.id, bob.id)
        authority.delegate(tag.id, bob.id, carol.id)
        assert authority.has_authority(carol.id, tag.id)

    def test_delegation_requires_grantor_authority(self, world):
        authority, _alice, bob, carol, tag = world
        with pytest.raises(AuthorityError):
            authority.delegate(tag.id, bob.id, carol.id)

    def test_revocation_is_transitive(self, world):
        authority, alice, bob, carol, tag = world
        authority.delegate(tag.id, alice.id, bob.id)
        authority.delegate(tag.id, bob.id, carol.id)
        authority.revoke(tag.id, alice.id, bob.id)
        assert not authority.has_authority(bob.id, tag.id)
        assert not authority.has_authority(carol.id, tag.id)

    def test_alternate_path_survives_revocation(self, world):
        authority, alice, bob, carol, tag = world
        authority.delegate(tag.id, alice.id, bob.id)
        authority.delegate(tag.id, alice.id, carol.id)
        authority.delegate(tag.id, bob.id, carol.id)
        authority.revoke(tag.id, alice.id, bob.id)
        assert authority.has_authority(carol.id, tag.id)   # direct path

    def test_revoking_nonexistent_grant_raises(self, world):
        authority, alice, bob, _c, tag = world
        with pytest.raises(AuthorityError):
            authority.revoke(tag.id, alice.id, bob.id)

    def test_version_bumps_on_mutation(self, world):
        authority, alice, bob, _c, tag = world
        before = authority.version
        authority.delegate(tag.id, alice.id, bob.id)
        assert authority.version > before


class TestEmptyLabelRule:
    """The authority state is an empty-labelled object (section 3.2)."""

    def test_contaminated_process_cannot_delegate(self, world):
        authority, alice, bob, _c, tag = world
        process = IFCProcess(authority, alice.id)
        process.add_secrecy(tag.id)
        with pytest.raises(IFCViolation):
            process.delegate(tag.id, bob.id)

    def test_clean_process_can_delegate_and_revoke(self, world):
        authority, alice, bob, _c, tag = world
        process = IFCProcess(authority, alice.id)
        process.delegate(tag.id, bob.id)
        assert authority.has_authority(bob.id, tag.id)
        process.revoke(tag.id, bob.id)
        assert not authority.has_authority(bob.id, tag.id)


class TestCompoundAuthority:
    def test_compound_authority_covers_members(self, authority):
        service = authority.create_principal("service")
        user = authority.create_principal("user")
        compound = authority.create_compound_tag("all", owner=service.id)
        member = authority.create_tag("user_tag", owner=user.id,
                                      compounds=(compound.id,),
                                      creator=service.id)
        assert authority.has_authority(service.id, member.id)
        assert not authority.has_authority(user.id, compound.id)

    def test_member_creation_requires_compound_authority(self, authority):
        service = authority.create_principal("service")
        rogue = authority.create_principal("rogue")
        compound = authority.create_compound_tag("all", owner=service.id)
        with pytest.raises(AuthorityError):
            authority.create_tag("sneaky", owner=rogue.id,
                                 compounds=(compound.id,))

    def test_delegated_compound_authority(self, authority):
        service = authority.create_principal("service")
        helper = authority.create_principal("helper")
        user = authority.create_principal("user")
        compound = authority.create_compound_tag("all", owner=service.id)
        member = authority.create_tag("m", owner=user.id,
                                      compounds=(compound.id,),
                                      creator=service.id)
        authority.delegate(compound.id, service.id, helper.id)
        assert authority.has_authority(helper.id, member.id)

    def test_label_helpers(self, authority):
        principal = authority.create_principal("p")
        t1 = authority.create_tag("t1", owner=principal.id)
        t2 = authority.create_tag("t2", owner=principal.id)
        label = authority.label_of("t1", "t2")
        assert label == Label([t1.id, t2.id])
        assert authority.describe_label(label) == ("t1", "t2")
