"""Views (sections 4.3-4.4): standard views, declassifying views, and
the outer-join data-independence pattern."""

import pytest

from repro.core import EMPTY_LABEL, IFCProcess, Label
from repro.errors import AuthorityError


@pytest.fixture
def contacts(authority, db):
    """A HotCRP-style ContactInfo table with per-user contact tags."""
    service = authority.create_principal("service")
    all_contacts = authority.create_compound_tag("all_contacts",
                                                 owner=service.id)
    admin = db.connect(IFCProcess(authority, service.id))
    admin.execute(
        "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY, "
        "firstName TEXT, lastName TEXT, phone TEXT, isPC BOOLEAN)")
    people = []
    for i, (first, last, pc) in enumerate(
            [("Ann", "Zed", True), ("Ben", "Young", True),
             ("Cat", "Xu", False)], start=1):
        principal = authority.create_principal("user%d" % i)
        tag = authority.create_tag("c%d-contact" % i, owner=principal.id,
                                   compounds=(all_contacts.id,),
                                   creator=service.id)
        process = IFCProcess(authority, principal.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        session.execute(
            "INSERT INTO ContactInfo VALUES (?, ?, ?, '555', ?)",
            (i, first, last, pc))
        people.append((principal, tag))
    return authority, db, service, all_contacts, people


class TestDeclassifyingViews:
    def test_pcmembers_view(self, contacts):
        """The paper's PCMembers example (section 4.3)."""
        authority, db, service, all_contacts, _people = contacts
        admin = db.connect(IFCProcess(authority, service.id))
        admin.execute(
            "CREATE VIEW PCMembers AS SELECT firstName, lastName "
            "FROM ContactInfo WHERE isPC = TRUE "
            "WITH DECLASSIFYING (all_contacts)")
        nobody = db.connect()          # empty label, no authority
        rows = nobody.query("SELECT * FROM PCMembers ORDER BY lastName")
        assert [list(r) for r in rows] == [["Ben", "Young"], ["Ann", "Zed"]]

    def test_view_rows_carry_stripped_label(self, contacts):
        authority, db, service, all_contacts, _people = contacts
        admin = db.connect(IFCProcess(authority, service.id))
        admin.execute(
            "CREATE VIEW PCMembers AS SELECT firstName FROM ContactInfo "
            "WHERE isPC = TRUE WITH DECLASSIFYING (all_contacts)")
        nobody = db.connect()
        for row in nobody.query("SELECT * FROM PCMembers"):
            assert row.label == EMPTY_LABEL

    def test_creation_requires_authority(self, contacts):
        authority, db, _service, _all, people = contacts
        principal, _tag = people[0]
        user_session = db.connect(IFCProcess(authority, principal.id))
        with pytest.raises(AuthorityError):
            user_session.execute(
                "CREATE VIEW Leak AS SELECT phone FROM ContactInfo "
                "WITH DECLASSIFYING (all_contacts)")

    def test_revocation_disables_view(self, contacts):
        authority, db, service, all_contacts, _people = contacts
        helper = authority.create_principal("helper")
        authority.delegate(all_contacts.id, service.id, helper.id)
        helper_session = db.connect(IFCProcess(authority, helper.id))
        helper_session.execute(
            "CREATE VIEW PC2 AS SELECT firstName FROM ContactInfo "
            "WHERE isPC = TRUE WITH DECLASSIFYING (all_contacts)")
        nobody = db.connect()
        assert len(nobody.query("SELECT * FROM PC2")) == 2
        authority.revoke(all_contacts.id, service.id, helper.id)
        with pytest.raises(AuthorityError):
            nobody.query("SELECT * FROM PC2")

    def test_without_view_table_is_hidden(self, contacts):
        _authority, db, *_ = contacts
        nobody = db.connect()
        assert nobody.query("SELECT * FROM ContactInfo") == []

    def test_view_with_joins_and_aggregates(self, contacts):
        authority, db, service, all_contacts, _people = contacts
        admin = db.connect(IFCProcess(authority, service.id))
        admin.execute(
            "CREATE VIEW PCCount AS SELECT COUNT(*) AS n FROM ContactInfo "
            "WHERE isPC = TRUE WITH DECLASSIFYING (all_contacts)")
        nobody = db.connect()
        assert nobody.execute("SELECT n FROM PCCount").scalar() == 2


class TestStandardViews:
    def test_plain_view_preserves_labels(self, contacts):
        authority, db, service, _all, people = contacts
        admin = db.connect(IFCProcess(authority, service.id))
        admin.execute(
            "CREATE VIEW Names AS SELECT firstName FROM ContactInfo")
        nobody = db.connect()
        assert nobody.query("SELECT * FROM Names") == []
        principal, tag = people[0]
        process = IFCProcess(authority, principal.id)
        process.add_secrecy(tag.id)
        own = db.connect(process)
        assert len(own.query("SELECT * FROM Names")) == 1

    def test_view_on_view(self, contacts):
        authority, db, service, all_contacts, _people = contacts
        admin = db.connect(IFCProcess(authority, service.id))
        admin.execute(
            "CREATE VIEW PCMembers AS SELECT firstName, lastName "
            "FROM ContactInfo WHERE isPC = TRUE "
            "WITH DECLASSIFYING (all_contacts)")
        admin.execute(
            "CREATE VIEW PCFirst AS SELECT firstName FROM PCMembers")
        nobody = db.connect()
        assert len(nobody.query("SELECT * FROM PCFirst")) == 2


class TestDataIndependence:
    """Section 4.4: outer joins simulate field-level labels."""

    @pytest.fixture
    def payment_contact(self, authority, db):
        user = authority.create_principal("user")
        t_pay = authority.create_tag("u-payment", owner=user.id)
        t_contact = authority.create_tag("u-contact", owner=user.id)
        admin = db.connect(IFCProcess(authority, user.id))
        admin.execute("CREATE TABLE Payment (uid INT PRIMARY KEY, "
                      "card TEXT)")
        admin.execute("CREATE TABLE Contact (uid INT PRIMARY KEY, "
                      "email TEXT)")
        process = IFCProcess(authority, user.id)
        session = db.connect(process)
        process.add_secrecy(t_pay.id)
        session.execute("INSERT INTO Payment VALUES (1, '4111')")
        process.declassify(t_pay.id)
        process.add_secrecy(t_contact.id)
        session.execute("INSERT INTO Contact VALUES (1, 'u@x.org')")
        process.declassify(t_contact.id)
        admin.execute(
            "CREATE VIEW PaymentContact AS "
            "SELECT p.uid AS uid, p.card AS card, c.email AS email "
            "FROM Payment p LEFT JOIN Contact c ON c.uid = p.uid")
        return authority, db, user, t_pay, t_contact

    def test_nulls_in_place_of_invisible_fields(self, payment_contact):
        """A process with only payment tags sees NULL contact fields
        (the SeaView-like field-level semantics, section 4.4)."""
        authority, db, user, t_pay, _t_contact = payment_contact
        process = IFCProcess(authority, user.id)
        process.add_secrecy(t_pay.id)
        session = db.connect(process)
        row = session.execute("SELECT * FROM PaymentContact").first()
        assert list(row) == [1, "4111", None]

    def test_full_label_sees_everything(self, payment_contact):
        authority, db, user, t_pay, t_contact = payment_contact
        process = IFCProcess(authority, user.id)
        process.add_secrecy(t_pay.id)
        process.add_secrecy(t_contact.id)
        session = db.connect(process)
        row = session.execute("SELECT * FROM PaymentContact").first()
        assert list(row) == [1, "4111", "u@x.org"]

    def test_joined_row_label_is_union(self, payment_contact):
        authority, db, user, t_pay, t_contact = payment_contact
        process = IFCProcess(authority, user.id)
        process.add_secrecy(t_pay.id)
        process.add_secrecy(t_contact.id)
        session = db.connect(process)
        row = session.execute(
            "SELECT p.card, c.email FROM Payment p "
            "JOIN Contact c ON c.uid = p.uid").first()
        assert row.label == Label([t_pay.id, t_contact.id])
