"""Load generator tests: the Figure 3 mix and the closed-loop simulator."""

import random

import pytest

from repro.workloads import (
    ClosedLoopSimulator,
    REQUEST_MIX,
    ServiceDemand,
    empirical_mix,
    sample_session_length,
    sample_think_time,
)


class TestRequestMix:
    def test_weights_sum_to_one(self):
        assert sum(w for _p, w in REQUEST_MIX) == pytest.approx(1.0)

    def test_empirical_matches_figure3(self):
        """Regenerates Figure 3: the sampled mix matches the spec."""
        for (path, expected), (path2, observed) in zip(
                REQUEST_MIX, empirical_mix(40000, seed=3)):
            assert path == path2
            assert observed == pytest.approx(expected, abs=0.01)

    def test_think_times_truncated(self):
        rng = random.Random(1)
        samples = [sample_think_time(rng) for _ in range(2000)]
        assert all(0 <= s <= 70.0 for s in samples)
        assert 4.0 < sum(samples) / len(samples) < 10.0

    def test_session_lengths_truncated(self):
        rng = random.Random(2)
        samples = [sample_session_length(rng) for _ in range(500)]
        assert all(s <= 3600.0 for s in samples)


DEMANDS = {path: ServiceDemand(web=0.020, db=0.010)
           for path, _w in REQUEST_MIX}


class TestClosedLoopSimulator:
    def test_throughput_grows_with_clients_until_saturation(self):
        sim = ClosedLoopSimulator(DEMANDS, n_web_servers=2, seed=4)
        small = sim.run(5, duration=600.0)
        large = sim.run(50, duration=600.0)
        assert large.throughput > small.throughput

    def test_saturation_bounded_by_bottleneck(self):
        """With one web server at 20 ms/request the ceiling is 50/s."""
        sim = ClosedLoopSimulator(DEMANDS, n_web_servers=1, seed=5)
        result = sim.run(2000, duration=600.0)
        assert result.throughput <= 50.0 * 1.05

    def test_more_web_servers_raise_web_bound_ceiling(self):
        # 2000 clients offer ~285 req/s: far beyond one server's 50/s
        # ceiling, so the web tier is the bottleneck in both runs.
        one = ClosedLoopSimulator(DEMANDS, n_web_servers=1, seed=6)
        three = ClosedLoopSimulator(DEMANDS, n_web_servers=3, seed=6)
        assert three.run(2000, 600.0).throughput > \
            one.run(2000, 600.0).throughput * 1.5

    def test_response_time_grows_under_load(self):
        sim = ClosedLoopSimulator(DEMANDS, n_web_servers=1, seed=7)
        light = sim.run(5, duration=600.0)
        heavy = sim.run(500, duration=600.0)
        assert heavy.p90_response > light.p90_response

    def test_deterministic_for_fixed_seed(self):
        sim = ClosedLoopSimulator(DEMANDS, n_web_servers=2, seed=8)
        a = sim.run(40, duration=300.0)
        b = sim.run(40, duration=300.0)
        assert a.throughput == b.throughput
        assert a.p90_response == b.p90_response

    def test_peak_throughput_respects_p90_constraint(self):
        sim = ClosedLoopSimulator(DEMANDS, n_web_servers=2, seed=9)
        peak = sim.peak_throughput(max_p90=3.0, duration=400.0,
                                   max_clients=4000)
        assert peak.p90_response <= 3.0
        assert peak.throughput > 0
