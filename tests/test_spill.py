"""Property-based tests for the hash-join spill layer (db/spill.py).

Seeded-random "properties" in the style of tests/test_stats.py: each
test draws many random inputs from a fixed seed and asserts invariants
that must hold for *all* of them —

* spool files round-trip arbitrary execution rows byte-exactly,
  including ``None``, strings with newlines/quotes/unicode, floats,
  and labels — and a label read back from a spill file is *identical*
  (``is``) to the live interned instance, so the scan-level label
  memos keep working across a spill;
* partitioning is a function: every input row lands in exactly one
  partition, nothing is lost or duplicated, and a probe row meets
  exactly the build rows that share its key (cross-checked against a
  plain dict join);
* recursive re-partitioning terminates — in particular on an
  all-equal-key build side, which no amount of re-hashing can split;
* a spilled HashJoin observes the statement's snapshot: a writer
  committing mid-statement (after the probe spooled) changes nothing
  (see also the audit note on ``committed_horizon`` in
  ARCHITECTURE.md).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.core.labels import EMPTY_LABEL, Label
from repro.db import Database
from repro.db.spill import (
    MAX_RECURSION,
    SPILL_STATS,
    SpilledHashBuild,
    SpillFile,
    decode_labeled_row,
    encode_labeled_row,
    estimate_row_bytes,
    estimate_spill_plan,
)

NASTY_STRINGS = (
    "", "plain", "with\nnewline", "with\ttab", "quote'and\"double",
    "semi;colon", "ünïcödé-λ", "line1\nline2\nline3", "\x00binary\x01",
)


def _random_values(rng: random.Random) -> list:
    values = []
    for _ in range(rng.randint(1, 8)):
        roll = rng.random()
        if roll < 0.2:
            values.append(None)
        elif roll < 0.45:
            values.append(rng.randint(-10**9, 10**9))
        elif roll < 0.65:
            values.append(round(rng.uniform(-1e6, 1e6), 6))
        elif roll < 0.9:
            values.append(rng.choice(NASTY_STRINGS))
        else:
            values.append(Label(rng.sample(range(1, 50),
                                           rng.randint(0, 4))))
    return values


def _random_label(rng: random.Random) -> Label:
    if rng.random() < 0.3:
        return EMPTY_LABEL
    return Label(rng.sample(range(1, 30), rng.randint(1, 5)))


def _random_row(rng: random.Random):
    return (_random_values(rng), _random_label(rng), _random_label(rng))


def test_labeled_row_codec_round_trips_and_reinterns():
    rng = random.Random(0x5B11)
    for _ in range(200):
        values, label, ilabel = _random_row(rng)
        out_values, out_label, out_ilabel = decode_labeled_row(
            encode_labeled_row(values, label, ilabel))
        assert out_values == values
        assert out_label is label            # interned identity
        assert out_ilabel is ilabel


def test_spill_file_round_trips_random_rows():
    rng = random.Random(0x5B12)
    for _round in range(25):
        spool = SpillFile()
        rows = [(tuple(_random_values(rng)), _random_row(rng))
                for _ in range(rng.randint(0, 60))]
        for key, row in rows:
            spool.write_row(key, row)
        got = list(spool.rows())
        assert len(got) == len(rows)
        for (key, row), (got_key, got_row) in zip(rows, got):
            assert got_key == key
            assert got_row[0] == row[0]
            assert got_row[1] is row[1]      # labels re-interned
            assert got_row[2] is row[2]
            # Labels *inside* the value list survive pickling too (the
            # _label pseudo-column rides in the execution row).
            for original, reloaded in zip(row[0], got_row[0]):
                if isinstance(original, Label):
                    assert reloaded is original


def test_every_row_lands_in_exactly_one_partition():
    rng = random.Random(0x5B13)
    for _round in range(10):
        spill = SpilledHashBuild(budget=512, keep_resident=False)
        keys = [(rng.randint(0, 20),) for _ in range(300)]
        for i, key in enumerate(keys):
            # Routing is a pure function of the key.
            assert spill.route(key) == spill.route(key)
            spill.add_build(key, ([i], EMPTY_LABEL, EMPTY_LABEL))
        counts = [p.build.count for p in spill.partitions]
        assert sum(counts) == len(keys)
        # Same key, same partition: replay the routing.
        for key in set(keys):
            assert 0 <= spill.route(key) < spill.fanout


def test_spilled_join_matches_dict_join():
    """The partition machinery must produce exactly the matches a
    plain in-memory dict join would, for every probe row, across
    random duplicate-heavy key distributions and tiny budgets (which
    force recursive re-partitioning)."""
    rng = random.Random(0x5B14)
    for _round in range(8):
        budget = rng.choice((256, 1024, 4096))
        build = [((rng.randint(0, 12),), _random_row(rng))
                 for _ in range(rng.randint(50, 250))]
        probe = [((rng.randint(0, 15),), _random_row(rng))
                 for _ in range(rng.randint(20, 120))]
        reference: dict = {}
        for key, row in build:
            reference.setdefault(key, []).append(row)

        spill = SpilledHashBuild(budget=budget)
        for key, row in build:
            spill.add_build(key, row)
        spooled = []
        immediate = []
        for key, row in probe:
            matches = spill.probe(key, row)
            if matches is None:
                spooled.append((key, row))
            else:
                immediate.append((row, matches))
        results = immediate + list(spill.results())
        # Every probe row surfaces exactly once...
        assert len(results) == len(probe)
        # ...with exactly the dict join's matches (order-insensitive).
        probe_index = {repr(row): key for key, row in probe}
        for row, matches in results:
            key = probe_index[repr(row)]
            expected = reference.get(key, [])
            assert sorted(repr(m) for m in matches) \
                == sorted(repr(m) for m in expected), key


def test_recursion_terminates_on_all_equal_keys():
    """A single-key build side cannot be split by re-hashing; the
    partitioner must detect that and finish in memory (over budget)
    instead of recursing forever."""
    before = SPILL_STATS.repartitions
    spill = SpilledHashBuild(budget=256, keep_resident=False)
    key = (7, "same")
    n = 500
    for i in range(n):
        spill.add_build(key, ([i, "payload"], EMPTY_LABEL, EMPTY_LABEL))
    spill.spool_probe(key, (["probe"], EMPTY_LABEL, EMPTY_LABEL))
    results = list(spill.results())
    assert len(results) == 1
    _row, matches = results[0]
    assert len(matches) == n
    # Recursion depth is bounded even though the budget was blown.
    assert SPILL_STATS.repartitions - before <= MAX_RECURSION


def test_recursion_terminates_on_skewed_keys():
    """One dominant key plus a long tail: recursion isolates the heavy
    key and stops, returning complete matches for both."""
    spill = SpilledHashBuild(budget=512, keep_resident=False)
    for i in range(400):
        spill.add_build((1,), ([i], EMPTY_LABEL, EMPTY_LABEL))
    for i in range(40):
        spill.add_build((1000 + i,), ([i], EMPTY_LABEL, EMPTY_LABEL))
    spill.spool_probe((1,), (["hot"], EMPTY_LABEL, EMPTY_LABEL))
    spill.spool_probe((1005,), (["cold"], EMPTY_LABEL, EMPTY_LABEL))
    spill.spool_probe((9999,), (["miss"], EMPTY_LABEL, EMPTY_LABEL))
    by_row = {row[0][0]: matches for row, matches in spill.results()}
    assert len(by_row["hot"]) == 400
    assert len(by_row["cold"]) == 1
    assert by_row["miss"] == []


def test_estimate_row_bytes_monotone():
    """Sanity on the budget arithmetic: adding data never shrinks the
    estimate, and labels charge 4 bytes per tag like the page model."""
    base = estimate_row_bytes([1, "ab"])
    assert estimate_row_bytes([1, "ab", None]) > base
    assert estimate_row_bytes([1, "abcdef"]) > base
    with_label = estimate_row_bytes([1, "ab"], Label((1, 2, 3)))
    assert with_label == base + 16 + 12


def test_estimate_spill_plan_levels():
    partitions, per_bytes, levels = estimate_spill_plan(0, 1024)
    assert (partitions, levels) == (0, 0)
    partitions, per_bytes, levels = estimate_spill_plan(100, 1024)
    assert (partitions, levels) == (0, 0) and per_bytes == 100
    partitions, per_bytes, levels = estimate_spill_plan(8_000, 1024)
    assert partitions == 8 and levels == 1 and per_bytes <= 1024
    partitions, per_bytes, levels = estimate_spill_plan(10_000, 1024)
    assert partitions == 8 ** levels and per_bytes <= 1024
    partitions, per_bytes, levels = estimate_spill_plan(1_000_000, 1024)
    assert partitions == 8 ** levels
    assert per_bytes <= 1024 or levels == MAX_RECURSION


def _stack(work_mem, batch_size=None):
    authority = AuthorityState(idgen=SeededIdGenerator(31))
    db = Database(authority, seed=31, work_mem=work_mem,
                  batch_size=batch_size)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("p").id))
    session.execute("CREATE TABLE fact (k INT PRIMARY KEY, g INT, t TEXT)")
    session.execute("CREATE TABLE probe (id INT PRIMARY KEY, g INT)")
    for i in range(800):
        session.execute("INSERT INTO fact VALUES (?, ?, ?)",
                        (i, i % 60, "payload-%d" % i))
    for i in range(30):
        session.execute("INSERT INTO probe VALUES (?, ?)", (i, i % 80))
    session.execute("ANALYZE")
    return db, session


JOIN_SQL = "SELECT p.id, f.k FROM probe p JOIN fact f ON f.g = p.g"


def _normalized(session, sql):
    return sorted((tuple(r), tuple(sorted(r.label)))
                  for r in session.execute(sql).rows)


def test_session_level_spilled_join_parity_and_explain():
    """End-to-end: an unindexed equi-join over an 800-row build side
    under a 2KB budget must spill (stats prove it), report
    ``spill_partitions``/``mem`` in EXPLAIN with peak estimated memory
    within the budget, and return exactly the unbounded result."""
    _db0, unbounded = _stack(0)
    before = SPILL_STATS.snapshot()
    _db1, bounded = _stack(2048)
    expected = _normalized(unbounded, JOIN_SQL)
    got = _normalized(bounded, JOIN_SQL)
    assert got == expected
    after = SPILL_STATS.snapshot()
    assert after["spills"] > before["spills"]
    assert after["rows_spilled"] > before["rows_spilled"]

    plan_lines = [r[0] for r in bounded.execute("EXPLAIN " + JOIN_SQL)]
    join_line = next(line for line in plan_lines if "HashJoin" in line)
    assert "spill_partitions=" in join_line, join_line
    partitions = int(join_line.split("spill_partitions=")[1].split()[0])
    assert partitions >= 1
    est_mem = int(join_line.split("mem=")[1].split("B")[0])
    assert est_mem <= 2048
    # The unbounded database plans the same join without spill fields.
    free_line = next(line for line in
                     (r[0] for r in unbounded.execute("EXPLAIN " + JOIN_SQL))
                     if "HashJoin" in line)
    assert "spill_partitions=" not in free_line


def test_measured_row_widths_drive_spill_estimates():
    """ANALYZE measures per-column byte widths (sampled with the spill
    estimator's own accounting), so the optimizer budgets the build
    side from what rows actually weigh: wide padding columns the
    synthetic column-count guess undercounts push the plan into a
    predicted spill — and a projection that never reads them earns the
    memory credit back."""
    authority = AuthorityState(idgen=SeededIdGenerator(77))
    db = Database(authority, seed=77, work_mem=60_000)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("q").id))
    session.execute("CREATE TABLE wide (k INT PRIMARY KEY, g INT,"
                    " pad TEXT)")
    session.execute("CREATE TABLE slim (id INT PRIMARY KEY, g INT)")
    for i in range(300):
        session.execute("INSERT INTO wide VALUES (?, ?, ?)",
                        (i, i % 50, "x" * 300))
    for i in range(40):
        session.execute("INSERT INTO slim VALUES (?, ?)", (i, i % 50))

    def join_line(sql):
        return next(r[0] for r in session.execute("EXPLAIN " + sql)
                    if "HashJoin" in r[0])

    wide_sql = "SELECT s.id, w.pad FROM slim s JOIN wide w ON w.g = s.g"
    narrow_sql = "SELECT s.id FROM slim s JOIN wide w ON w.g = s.g"
    # Un-analyzed: the synthetic per-column guess (~40KB build) fits.
    assert "spill_partitions=" not in join_line(wide_sql)
    session.execute("ANALYZE")
    # Measured: ~450B × 300 rows blows the 60KB budget.
    assert "spill_partitions=" in join_line(wide_sql)
    # Projection pushdown drops pad from the build; measured narrow
    # rows (~110B incl. the None placeholders) fit again.
    assert "spill_partitions=" not in join_line(narrow_sql)


def test_spilled_hash_join_sees_statement_snapshot():
    """Regression for the committed_horizon()/spill interaction: a
    writer that was in flight when the statement's snapshot was taken
    commits *mid-statement* — after the probe side spooled, before the
    partition phase joined it.  The spilled join must not see the
    writer's rows, exactly like the in-memory join: the MVCC batch
    fast path is anchored on the snapshot's ``xmax`` and
    ``min_in_progress``, which do not move, so the advancing committed
    horizon alone can never admit a snapshot-invisible version."""
    results = {}
    for label, work_mem in (("spilled", 2048), ("in-memory", 0)):
        # batch_size=16 so the join emits output *while* probing: the
        # writer's commit genuinely lands between two output batches,
        # with the probe scan still running and partitions unspooled.
        db, session = _stack(work_mem, batch_size=16)
        writer = db.connect(IFCProcess(db.authority,
                                       db.authority.create_principal(
                                           "w%d" % work_mem).id))
        writer.begin()                       # in flight before snapshot
        for i in range(5):
            writer.execute("INSERT INTO fact VALUES (?, ?, ?)",
                           (9000 + i, i % 60, "late"))
            writer.execute("INSERT INTO probe VALUES (?, ?)",
                           (9000 + i, i % 60))
        session.begin()                      # reader snapshot taken here
        prepared = db.prepare_select(db.parse(JOIN_SQL), JOIN_SQL)
        ctx = session._context(())
        batches = prepared.plan.batches(ctx)
        first = next(batches)                # build consumed, probing...
        writer.commit()                      # ...commits mid-statement
        rows = [tuple(values) for values in first.values]
        for batch in batches:
            rows.extend(tuple(values) for values in batch.values)
        session.commit()
        results[label] = sorted(rows)
        # Neither the writer's build rows (fact.k >= 9000) nor its
        # probe rows (probe.id >= 9000) may surface: the committed
        # horizon advanced mid-statement, but the snapshot's xmax and
        # min_in_progress still exclude the writer.
        assert not any(pid >= 9000 or k >= 9000
                       for pid, k in results[label]), label
    assert results["spilled"] == results["in-memory"]

def _open_fds() -> int:
    """Number of open file descriptors in this process."""
    return len(os.listdir("/proc/self/fd"))


def test_mid_join_error_releases_spill_descriptors():
    """Regression: a spilled join's partition spools used to close only
    on clean exhaustion — an error raised while the join was mid-output
    (a downstream expression blowing up, a client disconnect) leaked
    every partition's TemporaryFile descriptor.  The operator-level
    ``finally`` must now release them the moment the error unwinds."""
    db, session = _stack(2048, batch_size=16)
    session.begin()
    prepared = db.prepare_select(db.parse(JOIN_SQL), JOIN_SQL)
    ctx = session._context(())
    baseline = _open_fds()
    batches = prepared.plan.batches(ctx)
    next(batches)            # build spilled, probe underway
    assert _open_fds() > baseline      # the spools are genuinely open
    with pytest.raises(RuntimeError, match="boom"):
        batches.throw(RuntimeError("boom"))
    assert _open_fds() == baseline
    session.rollback()


def test_abandoned_spilled_join_iterator_releases_descriptors():
    """Closing (abandoning) a suspended spilled-join iterator — what a
    LIMIT above the join, or a cursor dropped mid-fetch, does — must
    release the partition spools, not wait for garbage collection."""
    db, session = _stack(2048, batch_size=16)
    session.begin()
    prepared = db.prepare_select(db.parse(JOIN_SQL), JOIN_SQL)
    ctx = session._context(())
    baseline = _open_fds()
    batches = prepared.plan.batches(ctx)
    next(batches)
    assert _open_fds() > baseline
    batches.close()
    assert _open_fds() == baseline
    session.rollback()


def test_mid_aggregate_error_releases_group_spill_descriptors():
    """Same contract for grace-spilled aggregation: an error while the
    fold is emitting resident groups (partitions still spooled) must
    close every GroupSpill spool."""
    db, session = _stack(1024, batch_size=4)
    sql = "SELECT g, COUNT(*) FROM fact GROUP BY g"
    session.begin()
    prepared = db.prepare_select(db.parse(sql), sql)
    ctx = session._context(())
    baseline = _open_fds()
    batches = prepared.plan.batches(ctx)
    next(batches)            # fold done, resident groups emitting
    assert _open_fds() > baseline
    with pytest.raises(RuntimeError, match="boom"):
        batches.throw(RuntimeError("boom"))
    assert _open_fds() == baseline
    session.rollback()


def test_mid_sort_error_releases_run_descriptors():
    """And for external sort: killing the merge mid-stream must close
    every spooled run."""
    db, session = _stack(1024, batch_size=4)
    sql = "SELECT k, t FROM fact ORDER BY t"
    session.begin()
    prepared = db.prepare_select(db.parse(sql), sql)
    ctx = session._context(())
    baseline = _open_fds()
    batches = prepared.plan.batches(ctx)
    next(batches)            # runs spooled, merge underway
    assert _open_fds() > baseline
    with pytest.raises(RuntimeError, match="boom"):
        batches.throw(RuntimeError("boom"))
    assert _open_fds() == baseline
    session.rollback()
