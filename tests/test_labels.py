"""Unit and property tests for Label (section 3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import EMPTY_LABEL, Label, as_label

tag_sets = st.sets(st.integers(min_value=1, max_value=40), max_size=8)


class TestLabelBasics:
    def test_empty_label_is_falsy(self):
        assert not EMPTY_LABEL
        assert len(EMPTY_LABEL) == 0

    def test_construction_from_iterable(self):
        label = Label([3, 1, 2, 3])
        assert len(label) == 3
        assert 1 in label and 2 in label and 3 in label

    def test_labels_are_immutable(self):
        label = Label([1])
        with pytest.raises(AttributeError):
            label.tags = frozenset()
        with pytest.raises(AttributeError):
            label._tags = frozenset()

    def test_equality_and_hash(self):
        assert Label([1, 2]) == Label([2, 1])
        assert hash(Label([1, 2])) == hash(Label([2, 1]))
        assert Label([1]) != Label([2])
        assert Label([1, 2]) == {1, 2}

    def test_repr_is_sorted_and_stable(self):
        assert repr(Label([3, 1])) == "Label({1, 3})"
        assert repr(EMPTY_LABEL) == "Label({})"

    def test_as_label_coercions(self):
        assert as_label(None) is EMPTY_LABEL
        assert as_label([1, 2]) == Label([1, 2])
        label = Label([5])
        assert as_label(label) is label


class TestLabelAlgebra:
    def test_union_returns_self_when_subset(self):
        label = Label([1, 2])
        assert label.union([1]) is label

    def test_union_combines(self):
        assert Label([1]).union(Label([2])) == Label([1, 2])

    def test_with_tag_idempotent(self):
        label = Label([1])
        assert label.with_tag(1) is label
        assert label.with_tag(2) == Label([1, 2])

    def test_without(self):
        assert Label([1, 2, 3]).without([2]) == Label([1, 3])
        label = Label([1])
        assert label.without([9]) is label

    def test_intersection(self):
        assert Label([1, 2]).intersection([2, 3]) == Label([2])

    def test_issubset_plain(self):
        assert Label([1]).issubset(Label([1, 2]))
        assert not Label([3]).issubset(Label([1, 2]))

    def test_byte_size_four_per_tag(self):
        assert EMPTY_LABEL.byte_size() == 0
        assert Label([1]).byte_size() == 4
        assert Label(range(10)).byte_size() == 40


class TestLabelProperties:
    @given(tag_sets, tag_sets)
    def test_union_is_commutative(self, a, b):
        assert Label(a).union(Label(b)) == Label(b).union(Label(a))

    @given(tag_sets, tag_sets, tag_sets)
    def test_union_is_associative(self, a, b, c):
        left = Label(a).union(Label(b)).union(Label(c))
        right = Label(a).union(Label(b).union(Label(c)))
        assert left == right

    @given(tag_sets)
    def test_union_with_empty_is_identity(self, a):
        assert Label(a).union(EMPTY_LABEL) == Label(a)

    @given(tag_sets, tag_sets)
    def test_without_then_disjoint(self, a, b):
        result = Label(a).without(b)
        assert not (result.tags & frozenset(b))

    @given(tag_sets, tag_sets)
    def test_subset_union_monotone(self, a, b):
        assert Label(a).issubset(Label(a).union(Label(b)))

    @given(tag_sets)
    def test_hash_consistent_with_eq(self, a):
        assert hash(Label(a)) == hash(Label(set(a)))
