"""MVCC internals, vacuum, the page model, and the buffer cache."""

import pytest

from repro.core import IFCProcess, Label
from repro.db import Database
from repro.db.pages import BufferCache, HeapPageAllocator


class TestVersionChains:
    def test_update_creates_new_version(self, db):
        session = db.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY, y INT)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        session.execute("UPDATE t SET y = 20 WHERE x = 1")
        table = db.catalog.get_table("t")
        assert table.version_count == 2       # old + new version

    def test_vacuum_reclaims_dead_versions(self, db):
        session = db.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY, y INT)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        for i in range(5):
            session.execute("UPDATE t SET y = ? WHERE x = 1", (i,))
        table = db.catalog.get_table("t")
        assert table.version_count == 6
        removed = db.vacuum("t")
        assert removed == 5
        assert table.version_count == 1
        # Data intact after vacuum.
        assert session.execute("SELECT y FROM t").scalar() == 4

    def test_vacuum_respects_active_snapshots(self, db):
        session = db.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY, y INT)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        reader = db.connect()
        reader.execute("BEGIN")
        reader.execute("SELECT * FROM t")
        session.execute("UPDATE t SET y = 20 WHERE x = 1")
        assert db.vacuum("t") == 0            # old version still needed
        assert reader.execute("SELECT y FROM t").scalar() == 10
        reader.execute("COMMIT")
        assert db.vacuum("t") == 1

    def test_aborted_inserts_vacuumed(self, db):
        session = db.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("ROLLBACK")
        assert db.vacuum("t") == 1


class TestPageModel:
    def test_allocator_fills_pages(self):
        allocator = HeapPageAllocator("t", page_size=100)
        pages = {allocator.place(40) for _ in range(5)}
        assert pages == {0, 1, 2}          # 2 per 100-byte page

    def test_labels_increase_tuple_size(self, authority):
        db_plain = Database(authority, seed=1)
        principal = authority.create_principal("p")
        tags = [authority.create_tag("t%d" % i, owner=principal.id)
                for i in range(10)]
        process = IFCProcess(authority, principal.id)
        session = db_plain.connect(process)
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        for tag in tags:
            process.add_secrecy(tag.id)
        session.execute("INSERT INTO t VALUES (2)")
        versions = list(db_plain.catalog.get_table("t").all_versions())
        # 4 bytes per tag (section 8.3).
        assert versions[1].size - versions[0].size == 40

    def test_baseline_stores_no_label_bytes(self, authority):
        db_base = Database(authority, ifc_enabled=False, seed=1)
        principal = authority.create_principal("p2")
        tag = authority.create_tag("zz", owner=principal.id)
        process = IFCProcess(authority, principal.id)
        session = db_base.connect(process)
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO t VALUES (2)")
        versions = list(db_base.catalog.get_table("t").all_versions())
        assert versions[0].size == versions[1].size


class TestBufferCache:
    def test_unbounded_cache_never_misses(self):
        cache = BufferCache(capacity=None)
        for i in range(100):
            cache.touch("t", i)
        assert cache.stats.misses == 0

    def test_lru_eviction_and_penalty(self):
        cache = BufferCache(capacity=2, io_penalty=0.5)
        cache.touch("t", 1)
        cache.touch("t", 2)
        cache.touch("t", 1)          # hit
        cache.touch("t", 3)          # evicts 2 (LRU)
        cache.touch("t", 2)          # miss again
        assert cache.stats.hits == 1
        assert cache.stats.misses == 4
        assert cache.stats.evictions == 2
        assert cache.stats.io_time == pytest.approx(2.0)

    def test_small_cache_causes_io_in_engine(self, authority):
        db_disk = Database(authority, buffer_pages=4, io_penalty=0.001,
                           page_size=256, seed=3)
        session = db_disk.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY, pad TEXT)")
        for i in range(200):
            session.execute("INSERT INTO t VALUES (?, ?)",
                            (i, "p" * 64))
        session.query("SELECT * FROM t WHERE pad LIKE 'q%'")   # full scan
        assert db_disk.buffer_cache.stats.misses > 0
        assert db_disk.buffer_cache.stats.io_time > 0


class TestDeterministicOrder:
    def test_flag_orders_results(self, authority):
        db_det = Database(authority, deterministic_order=True, seed=4)
        session = db_det.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        for value in (3, 1, 2):
            session.execute("INSERT INTO t VALUES (?)", (value,))
        rows = session.query("SELECT x FROM t")
        assert [r[0] for r in rows] == [1, 2, 3]
