"""The statistics subsystem: ANALYZE, histograms, selectivity,
stats-driven plan choice, range access paths, and invalidation."""

import pytest

from repro.db import Database
from repro.db.physical import (
    HashJoin,
    IndexLoopJoin,
    IndexRangeScan,
    IndexScan,
    Scan,
)
from repro.db.stats import Histogram
from repro.errors import CatalogError


def walk(plan):
    from repro.db.physical import _children
    yield plan
    for child in _children(plan):
        yield from walk(child)


def plan_for(db, sql):
    return db.prepare_select(db.parse(sql), sql).plan


@pytest.fixture
def store():
    db = Database(ifc_enabled=False)
    session = db.connect()
    session.execute_script("""
        CREATE TABLE events (id INT PRIMARY KEY, kind TEXT, ts FLOAT,
                             note TEXT);
        CREATE ORDERED INDEX events_by_ts ON events (ts);
        CREATE ORDERED INDEX events_kind_ts ON events (kind, ts);
    """)
    session.begin()
    for i in range(1000):
        session.execute(
            "INSERT INTO events VALUES (?, ?, ?, ?)",
            (i, "k%d" % (i % 4), float(i % 200),
             None if i % 10 == 0 else "n%d" % i))
    session.commit()
    return db, session


class TestAnalyze:
    def test_analyze_statement_collects_stats(self, store):
        db, session = store
        assert db.stats_manager.peek("events") is None
        session.execute("ANALYZE events")
        stats = db.stats_manager.peek("events")
        assert stats is not None
        assert stats.row_count == 1000
        assert stats.columns["id"].ndv == 1000
        assert stats.columns["kind"].ndv == 4
        assert stats.columns["ts"].ndv == 200

    def test_analyze_without_table_covers_all(self, store):
        db, session = store
        session.execute("CREATE TABLE other (x INT PRIMARY KEY)")
        session.execute("ANALYZE")
        assert set(db.stats_manager.analyzed()) >= {"events", "other"}

    def test_analyze_unknown_table_fails(self, store):
        _db, session = store
        with pytest.raises(CatalogError):
            session.execute("ANALYZE nonexistent")

    def test_null_fraction(self, store):
        db, session = store
        session.execute("ANALYZE events")
        note = db.stats_manager.peek("events").columns["note"]
        assert note.null_frac == pytest.approx(0.1, abs=0.01)

    def test_min_max(self, store):
        db, session = store
        session.execute("ANALYZE events")
        ts = db.stats_manager.peek("events").columns["ts"]
        assert ts.min_value == 0.0
        assert ts.max_value == 199.0

    def test_measured_column_widths(self, store):
        """ANALYZE samples per-column byte widths with the spill
        estimator's accounting, and avg_row_bytes() sums them over the
        row container — restricted to a projected column subset when
        asked."""
        db, session = store
        session.execute("ANALYZE events")
        stats = db.stats_manager.peek("events")
        assert stats.columns["id"].avg_width == 28          # all ints
        note = stats.columns["note"].avg_width
        # 90% "n%d" strings (49+len), 10% NULLs at 8 bytes.
        assert 40 < note < 60
        assert stats.avg_row_bytes(["id"]) == 64 + 28
        total = stats.avg_row_bytes()
        assert total == 64 + sum(stats.columns[c].avg_width
                                 for c in stats.columns)
        assert stats.avg_row_bytes(["id", "nope"]) is None


class TestHistogram:
    def test_equi_depth_on_skewed_data(self):
        # 900 copies of 1 plus 100 distinct high values: equi-depth
        # buckets concentrate where the data does.
        values = sorted([1] * 900 + list(range(1000, 1100)))
        hist = Histogram.build(values, buckets=10)
        assert hist.total == 1000
        assert sum(hist.counts) == 1000
        # At least ~90% of the mass sits at or below the value 1.
        assert hist.fraction_below(1) >= 0.85
        # The skewed head never swallows the tail completely.
        assert hist.fraction_below(999) < 1.0
        assert hist.fraction_below(1100) == 1.0
        assert hist.fraction_below(0) == 0.0

    def test_fraction_below_interpolates(self):
        hist = Histogram.build(list(range(100)), buckets=4)
        for value, expected in ((10, 0.11), (50, 0.51), (90, 0.91)):
            assert hist.fraction_below(value) == \
                pytest.approx(expected, abs=0.05)

    def test_incomparable_value_returns_none(self):
        hist = Histogram.build([1, 2, 3])
        assert hist.fraction_below("zebra") is None

    def test_selectivity_within_tolerance(self, store):
        db, session = store
        session.execute("ANALYZE events")
        ts = db.stats_manager.peek("events").columns["ts"]
        # Actual fraction of ts < 50 is 50/200 = 0.25.
        assert ts.range_selectivity(None, 50.0, include_high=False) == \
            pytest.approx(0.25, abs=0.05)
        # ts BETWEEN 20 AND 119 covers 100/200 of the distinct values.
        assert ts.range_selectivity(20.0, 119.0) == \
            pytest.approx(0.5, abs=0.05)
        # Equality on kind: 4 distinct values, uniform.
        kind = db.stats_manager.peek("events").columns["kind"]
        assert kind.eq_selectivity() == pytest.approx(0.25, abs=0.01)


class TestRangeAccessPaths:
    RANGE_SQL = "SELECT id FROM events WHERE ts < 10"

    def _range_scans(self, db, sql):
        return [n for n in walk(plan_for(db, sql))
                if isinstance(n, IndexRangeScan)]

    def test_range_scan_without_stats(self, store):
        # Satellite: range predicates reach scan_range even when the
        # table was never analyzed (default selectivity).
        db, _session = store
        scans = self._range_scans(db, self.RANGE_SQL)
        assert len(scans) == 1
        assert scans[0].index.name == "events_by_ts"
        assert scans[0].predicate is None     # consumed by the bounds

    def test_range_scan_matches_full_scan_results(self, store):
        db, session = store
        indexed = session.query(self.RANGE_SQL)
        full = session.query("SELECT id FROM events WHERE ts + 0 < 10")
        assert sorted(r[0] for r in indexed) == sorted(r[0] for r in full)

    def test_between_uses_range_scan(self, store):
        db, session = store
        sql = "SELECT id FROM events WHERE ts BETWEEN 5 AND 9"
        scans = self._range_scans(db, sql)
        assert len(scans) == 1
        rows = session.query(sql)
        full = session.query(
            "SELECT id FROM events WHERE ts + 0 BETWEEN 5 AND 9")
        assert sorted(r[0] for r in rows) == sorted(r[0] for r in full)

    def test_eq_prefix_plus_range(self, store):
        db, session = store
        sql = "SELECT id FROM events WHERE kind = 'k1' AND ts >= 190"
        scans = self._range_scans(db, sql)
        assert len(scans) == 1
        assert scans[0].index.name == "events_kind_ts"
        rows = session.query(sql)
        full = session.query(
            "SELECT id FROM events WHERE kind = 'k1' AND ts + 0 >= 190")
        assert sorted(r[0] for r in rows) == sorted(r[0] for r in full)

    def test_parameterized_bounds(self, store):
        _db, session = store
        rows = session.query(
            "SELECT id FROM events WHERE ts > ? AND ts <= ?", (190, 195))
        full = session.query(
            "SELECT id FROM events WHERE ts + 0 > ? AND ts + 0 <= ?",
            (190, 195))
        assert sorted(r[0] for r in rows) == sorted(r[0] for r in full)
        # NULL bound: comparison is UNKNOWN, no rows.
        assert session.query(
            "SELECT id FROM events WHERE ts > ?", (None,)) == []

    def test_residual_predicate_survives(self, store):
        db, session = store
        sql = ("SELECT id FROM events WHERE ts < 10 AND note LIKE 'n%'")
        scans = self._range_scans(db, sql)
        assert len(scans) == 1
        assert scans[0].predicate is not None
        rows = session.query(sql)
        full = session.query(
            "SELECT id FROM events WHERE ts + 0 < 10 AND note LIKE 'n%'")
        assert sorted(r[0] for r in rows) == sorted(r[0] for r in full)

    def test_equality_still_beats_range(self, store):
        # kind = 'k1' AND ts = 5 fully covers events_kind_ts: the eq
        # probe is cheaper than a range scan.
        db, _session = store
        plan = plan_for(
            db, "SELECT id FROM events WHERE kind = 'k1' AND ts = 5")
        scans = [n for n in walk(plan) if isinstance(n, IndexScan)
                 and not isinstance(n, IndexRangeScan)]
        assert len(scans) == 1


class TestStatsDrivenJoinOrder:
    def _tables(self, small_rows, big_rows):
        db = Database(ifc_enabled=False)
        session = db.connect()
        session.execute_script("""
            CREATE TABLE alpha (a_id INT PRIMARY KEY, beta_id INT);
            CREATE TABLE beta (b_id INT PRIMARY KEY, payload INT);
        """)
        session.begin()
        for i in range(small_rows):
            session.execute("INSERT INTO alpha VALUES (?, ?)",
                            (i, i % max(big_rows, 1)))
        for i in range(big_rows):
            session.execute("INSERT INTO beta VALUES (?, ?)", (i, i))
        session.commit()
        session.execute("ANALYZE")
        return db, session

    SQL = ("SELECT a.a_id, b.payload FROM alpha a "
           "JOIN beta b ON b.b_id = a.beta_id")

    def _leading_table(self, db):
        # Preorder walk puts the outer (driving) side first, whether
        # the inner side is index-probed or hashed.
        plan = plan_for(db, self.SQL)
        scans = [n for n in walk(plan) if isinstance(n, Scan)]
        assert scans
        return scans[0].table.name

    def test_small_table_leads(self):
        db, _session = self._tables(small_rows=30, big_rows=600)
        assert self._leading_table(db) == "alpha"

    def test_order_flips_when_sizes_flip(self):
        db, _session = self._tables(small_rows=600, big_rows=30)
        assert self._leading_table(db) == "beta"

    def test_results_identical_either_order(self):
        db1, s1 = self._tables(30, 600)
        db2, s2 = self._tables(600, 30)
        rows1 = s1.query(self.SQL)
        assert sorted(tuple(r) for r in rows1) == \
            sorted((i, i % 600) for i in range(30))
        rows2 = s2.query(self.SQL)
        assert sorted(tuple(r) for r in rows2) == \
            sorted((i, i % 30) for i in range(600))


class TestExplainEstimates:
    def test_explain_shows_cost_and_rows(self, store):
        db, session = store
        session.execute("ANALYZE events")
        lines = [r[0] for r in session.execute(
            "EXPLAIN SELECT id FROM events WHERE ts < 50")]
        range_lines = [l for l in lines if "IndexRangeScan" in l]
        assert len(range_lines) == 1
        assert "cost=" in range_lines[0] and "rows=" in range_lines[0]
        # Estimated rows within a factor of the actual 250.
        import re
        rows = int(re.search(r"rows=(\d+)", range_lines[0]).group(1))
        assert 100 <= rows <= 500

    def test_join_operators_carry_estimates(self, store):
        db, session = store
        session.execute_script(
            "CREATE TABLE kinds (kind TEXT PRIMARY KEY, descr TEXT)")
        for k in range(4):
            session.execute("INSERT INTO kinds VALUES (?, ?)",
                            ("k%d" % k, "kind %d" % k))
        session.execute("ANALYZE")
        lines = [r[0] for r in session.execute(
            "EXPLAIN SELECT e.id, k.descr FROM events e "
            "JOIN kinds k ON k.kind = e.kind WHERE e.ts < 10")]
        assert all("cost=" in l and "rows=" in l for l in lines), lines


class TestInvalidationAndRefresh:
    def test_ddl_restamps_stats_epoch(self, store):
        db, session = store
        session.execute("ANALYZE events")
        before = db.stats_manager.peek("events")
        # DROP INDEX bumps the catalog version; the next planning pass
        # re-validates the stats against the live table object and
        # re-stamps them (the histograms describe data, which index DDL
        # cannot change) instead of re-collecting.
        session.execute("DROP INDEX events_by_ts")
        assert before.epoch != (db.catalog.version,
                                db.authority.tags.version)
        session.execute("SELECT id FROM events WHERE ts < 10")
        after = db.stats_manager.peek("events")
        assert after is before                   # no re-collection
        assert after.epoch == (db.catalog.version,
                               db.authority.tags.version)

    def test_recreated_table_fails_identity_check(self, store):
        db, session = store
        session.execute("CREATE TABLE phoenix (x INT PRIMARY KEY)")
        session.execute("INSERT INTO phoenix VALUES (1)")
        session.execute("ANALYZE phoenix")
        stale = db.stats_manager.peek("phoenix")
        # Simulate a drop+recreate that bypassed the engine's forget
        # hook: stats keyed on the name must not describe the new table.
        db.catalog.drop_table("phoenix")
        db.stats_manager._stats["phoenix"] = stale
        session.execute("CREATE TABLE phoenix (x INT PRIMARY KEY)")
        for i in range(40):
            session.execute("INSERT INTO phoenix VALUES (?)", (i,))
        session.execute("SELECT x FROM phoenix WHERE x = 1")
        fresh = db.stats_manager.peek("phoenix")
        assert fresh is not stale
        assert fresh.row_count == 40

    def test_rolled_back_delete_keeps_stats_rows(self, store):
        # An aborted DELETE stamps xmax with an aborted xid; those
        # versions are still live and must still be counted.
        db, session = store
        session.begin()
        session.execute("DELETE FROM events")
        session.rollback()
        session.execute("ANALYZE events")
        assert db.stats_manager.peek("events").row_count == 1000

    def test_drop_table_forgets_stats(self, store):
        db, session = store
        session.execute("CREATE TABLE doomed (x INT PRIMARY KEY)")
        session.execute("ANALYZE doomed")
        assert db.stats_manager.peek("doomed") is not None
        session.execute("DROP TABLE doomed")
        assert db.stats_manager.peek("doomed") is None

    @staticmethod
    def _drift(db, session):
        """Drift past the refresh threshold (max(2048, 0.5*1000) = 2048
        modifications) while staying under the engine's periodic-sweep
        interval, so the *test* controls when the refresh happens: 250
        real inserts plus a simulated backlog on the counter."""
        db._stats_probe = 0
        session.begin()
        for i in range(1000, 1250):
            session.execute("INSERT INTO events VALUES (?, 'k9', ?, 'x')",
                            (i, float(i)))
        session.commit()
        db.catalog.get_table("events").modifications += 2000

    def test_modification_drift_triggers_refresh(self, store):
        db, session = store
        session.execute("ANALYZE events")
        assert db.stats_manager.peek("events").row_count == 1000
        self._drift(db, session)
        # 250 modifications > max(64, 0.2 * 1000): planning refreshes.
        session.execute("SELECT id FROM events WHERE ts < 10")
        assert db.stats_manager.peek("events").row_count == 1250

    def test_small_drift_keeps_stats(self, store):
        db, session = store
        session.execute("ANALYZE events")
        collected = db.stats_manager.peek("events")
        session.execute("INSERT INTO events VALUES (5000, 'k0', 1.0, 'x')")
        session.execute("SELECT id FROM events WHERE ts < 10")
        assert db.stats_manager.peek("events") is collected

    def test_refresh_evicts_only_affected_plans(self, store):
        db, session = store
        session.execute("CREATE TABLE other (x INT PRIMARY KEY)")
        session.execute("ANALYZE")
        sql_events = "SELECT id FROM events WHERE ts < 10"
        sql_other = "SELECT x FROM other WHERE x = 1"
        session.execute(sql_events)
        session.execute(sql_other)
        assert sql_events in db._select_cache
        assert sql_other in db._select_cache
        self._drift(db, session)
        refreshed = db.stats_manager.refresh_drifted()
        assert refreshed == ["events"]
        # Only the plan reading the refreshed table was evicted.
        assert sql_events not in db._select_cache
        assert sql_other in db._select_cache

    def test_periodic_sweep_refreshes_without_replanning(self, store):
        # Even with every hot plan cached (so no planning pass ever
        # consults the stats), the engine's probe-interval sweep picks
        # up the drift.
        db, session = store
        session.execute("ANALYZE events")
        sql = "SELECT id FROM events WHERE ts < 10"
        session.execute(sql)
        self._drift(db, session)
        for _ in range(db.STATS_PROBE_INTERVAL + 1):
            session.execute(sql)
        assert db.stats_manager.peek("events").row_count == 1250

    def test_analyze_results_unaffected_by_plan_choice(self, store):
        # The same query returns identical rows before and after
        # ANALYZE, whatever access path the stats steer it to.
        db, session = store
        sql = "SELECT id FROM events WHERE ts >= 195 AND kind = 'k3'"
        before = sorted(r[0] for r in session.query(sql))
        session.execute("ANALYZE")
        after = sorted(r[0] for r in session.query(sql))
        assert before == after


class TestQueryByLabelUnaffected:
    def test_range_scan_respects_labels(self, medical):
        """A range predicate on an ordered-indexed column must not
        surface tuples the process label does not cover."""
        db = medical.db
        clinic = db.connect(medical.process_for(medical.clinic))
        clinic.execute(
            "CREATE ORDERED INDEX patients_by_name ON HIVPatients "
            "(patient_name)")
        alice = db.connect(medical.process_for(medical.alice,
                                               medical.alice_medical))
        rows = alice.query("SELECT patient_name FROM HIVPatients "
                           "WHERE patient_name >= 'A'")
        assert [r[0] for r in rows] == ["Alice"]
        # With the compound tag, everything in range is visible.
        staff = db.connect(medical.process_for(medical.clinic,
                                               medical.all_medical))
        rows = staff.query("SELECT patient_name FROM HIVPatients "
                           "WHERE patient_name >= 'A'")
        assert sorted(r[0] for r in rows) == ["Alice", "Bob", "Cathy"]


class TestSelectivityProperties:
    """Property-style checks of the estimator: seeded random columns,
    hundreds of random bounds, and the invariants the cost model relies
    on — estimates stay in [0, 1], widening a range never shrinks its
    estimate, and degenerate columns (all-null, single-value) behave."""

    @staticmethod
    def _column_stats(values):
        from repro.db.stats import ColumnStats
        non_null = [v for v in values if v is not None]
        null_frac = 1.0 - len(non_null) / len(values) if values else 0.0
        return ColumnStats(len(set(non_null)), null_frac,
                           min(non_null) if non_null else None,
                           max(non_null) if non_null else None,
                           Histogram.build(sorted(non_null)))

    def _random_columns(self, rng, count=12):
        columns = []
        for _ in range(count):
            n = rng.randint(1, 400)
            shape = rng.choice(("uniform", "skewed", "dupes", "nulls"))
            if shape == "uniform":
                values = [rng.uniform(-100, 100) for _ in range(n)]
            elif shape == "skewed":
                values = [rng.expovariate(0.05) for _ in range(n)]
            elif shape == "dupes":
                values = [float(rng.randint(0, 5)) for _ in range(n)]
            else:
                values = [rng.uniform(0, 10) if rng.random() < 0.5
                          else None for _ in range(n)]
            columns.append(self._column_stats(values))
        return columns

    def test_estimates_always_in_unit_interval(self):
        import random
        rng = random.Random(0xD1FF)
        for cs in self._random_columns(rng):
            assert 0.0 <= cs.eq_selectivity() <= 1.0
            for _ in range(50):
                low = rng.uniform(-150, 150) if rng.random() < 0.8 else None
                high = rng.uniform(-150, 150) if rng.random() < 0.8 else None
                sel = cs.range_selectivity(
                    low, high, include_low=rng.random() < 0.5,
                    include_high=rng.random() < 0.5)
                assert 0.0 <= sel <= 1.0, (low, high, sel)

    def test_range_estimate_monotone_in_bound_widening(self):
        import random
        rng = random.Random(0xD1CE)
        for cs in self._random_columns(rng):
            for _ in range(30):
                low = rng.uniform(-120, 120)
                high = low + rng.uniform(0, 120)
                base = cs.range_selectivity(low, high)
                # Widening either bound never shrinks the estimate.
                assert cs.range_selectivity(low - rng.uniform(0, 50),
                                            high) >= base - 1e-12
                assert cs.range_selectivity(
                    low, high + rng.uniform(0, 50)) >= base - 1e-12
                # Inclusive bounds cover at least what exclusive do.
                assert cs.range_selectivity(low, high) >= \
                    cs.range_selectivity(low, high, include_low=False,
                                         include_high=False) - 1e-12

    def test_fraction_below_monotone(self):
        import random
        rng = random.Random(99)
        values = sorted([1.0] * 300
                        + [rng.uniform(0, 50) for _ in range(300)])
        hist = Histogram.build(values, buckets=16)
        for inclusive in (True, False):
            probes = sorted(rng.uniform(-5, 60) for _ in range(200))
            fracs = [hist.fraction_below(p, inclusive=inclusive)
                     for p in probes]
            assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))

    def test_all_null_column(self):
        cs = self._column_stats([None] * 50)
        assert cs.eq_selectivity() == 0.0
        assert cs.range_selectivity(1.0, 2.0) == 0.0
        assert cs.range_selectivity(None, 10.0) == 0.0
        assert cs.histogram is None and cs.ndv == 0

    def test_single_value_column(self):
        cs = self._column_stats([7.0] * 80 + [None] * 20)
        assert cs.eq_selectivity() == pytest.approx(0.8)
        # A range containing the value captures the non-null mass...
        assert cs.range_selectivity(0.0, 10.0) == pytest.approx(0.8)
        assert cs.range_selectivity(7.0, 7.0) == pytest.approx(0.8)
        # ... and ranges strictly beside it capture nothing.
        assert cs.range_selectivity(None, 7.0, include_high=False) == 0.0
        assert cs.range_selectivity(7.0, None, include_low=False) == 0.0
        assert cs.range_selectivity(8.0, 9.0) == 0.0
