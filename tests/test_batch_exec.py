"""Batch-at-a-time executor: amortizations and batch-boundary safety.

The vectorized executor (``Plan.batches`` / :class:`RowBatch` in
:mod:`repro.db.physical`) must be *invisible* in results — only the loop
shape and the per-tuple bookkeeping change.  These tests pin:

* result parity between batched and row-at-a-time execution across the
  operator zoo, at batch sizes that force awkward boundaries;
* the label-run amortization: one ``covers`` per distinct label per
  batch (counted via per-statement metrics deltas,
  ``Database.last_statement_metrics``), including the per-row
  fallback under declassifying views;
* the MVCC whole-batch fast path, and its mandatory fallback when a
  concurrent transaction is in flight or a version was deleted;
* page-run buffer accounting (``touch_run``) producing counters
  identical to per-version ``touch``;
* the batch expression compiler's AND short-circuit contract.
"""

from __future__ import annotations

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.db import expressions as ex
from repro.db import physical
from repro.db.pages import BufferCache


def _stack(batch_size, **db_kwargs):
    """A database plus a secret-label session over a populated table."""
    authority = AuthorityState(idgen=SeededIdGenerator(4242))
    db = Database(authority, seed=4242, batch_size=batch_size, **db_kwargs)
    owner = authority.create_principal("owner")
    tag = authority.create_tag("batch-secret", owner=owner.id)
    public = db.connect(IFCProcess(authority, owner.id))
    secret_proc = IFCProcess(authority, owner.id)
    secret_proc.add_secrecy(tag.id)
    secret = db.connect(secret_proc)
    public.execute("CREATE TABLE m (id INT PRIMARY KEY, grp INT, v INT)")
    public.execute("CREATE ORDERED INDEX m_grp ON m (grp, v)")
    for i in range(40):
        session = secret if i % 3 == 0 else public
        session.execute("INSERT INTO m VALUES (?, ?, ?)",
                        (i, i % 4, (i * 7) % 23))
    return db, public, secret, tag


QUERIES = [
    ("SELECT * FROM m", ()),
    ("SELECT id, v FROM m WHERE v < 12", ()),
    ("SELECT grp, COUNT(*), SUM(v) FROM m GROUP BY grp", ()),
    ("SELECT DISTINCT grp FROM m WHERE v >= 5", ()),
    ("SELECT id FROM m ORDER BY v DESC, id LIMIT 7 OFFSET 3", ()),
    ("SELECT a.id, b.id FROM m a JOIN m b ON b.grp = a.grp "
     "WHERE a.v < 5 AND b.v < 5", ()),
    ("SELECT id, _label FROM m WHERE LABEL_SIZE(_label) > 0", ()),
    ("SELECT id FROM m WHERE grp = 2 AND v BETWEEN 3 AND 15", ()),
    ("SELECT id FROM m WHERE EXISTS (SELECT 1 FROM m b "
     "WHERE b.grp = m.grp AND b.v > m.v)", ()),
]


def _normalized(session, sql, params=()):
    rows = session.execute(sql, params).rows
    return sorted(((tuple(r), tuple(sorted(r.label))) for r in rows),
                  key=repr)


@pytest.mark.parametrize("batch_size", [1, 2, 3, 1024])
def test_batch_boundaries_cannot_change_results(batch_size):
    _db_row, _pub_row, secret_row, _ = _stack(0)
    _db_bat, _pub_bat, secret_bat, _ = _stack(batch_size)
    for sql, params in QUERIES:
        assert _normalized(secret_bat, sql, params) \
            == _normalized(secret_row, sql, params), sql


def test_label_run_batching_counts_one_covers_per_label_per_batch():
    # 40 rows, two distinct interned labels (secret and empty), batch
    # size 20 → 2 batches × ≤2 labels = ≤4 covers calls, against 40 in
    # row-at-a-time mode.
    _db, _public, secret, _tag = _stack(20)
    assert len(secret.execute("SELECT * FROM m").rows) == 40
    batched_calls = _db.last_statement_metrics()["labels"]["covers_calls"]

    _db2, _public2, secret_row, _ = _stack(0)
    assert len(secret_row.execute("SELECT * FROM m").rows) == 40
    row_calls = _db2.last_statement_metrics()["labels"]["covers_calls"]

    assert row_calls == 40
    assert batched_calls <= 4


def test_label_runs_under_declassifying_view():
    """Declassification takes the per-row path but must agree with the
    row-at-a-time executor on values *and* (stripped) labels."""
    results = {}
    for mode, batch_size in (("batched", 8), ("row", 0)):
        authority = AuthorityState(idgen=SeededIdGenerator(99))
        db = Database(authority, seed=99, batch_size=batch_size)
        clinic = authority.create_principal("clinic")
        compound = authority.create_compound_tag("all_t", owner=clinic.id)
        tags = [authority.create_tag("t%d" % i, owner=clinic.id,
                                     compounds=(compound.id,))
                for i in range(3)]
        admin = db.connect(IFCProcess(authority, clinic.id))
        admin.execute("CREATE TABLE p (id INT PRIMARY KEY, v INT)")
        for i in range(30):
            proc = IFCProcess(authority, clinic.id)
            proc.add_secrecy(tags[i % 3].id)
            db.connect(proc).execute("INSERT INTO p VALUES (?, ?)",
                                     (i, i % 5))
        declass_proc = IFCProcess(authority, clinic.id)
        session = db.connect(declass_proc)
        admin.execute("CREATE VIEW pv AS SELECT id, v FROM p "
                      "WITH DECLASSIFYING (all_t)")
        # The reader's label is empty: rows are visible only because
        # the view strips the patient tags (stripped labels are empty).
        results[mode] = _normalized(session, "SELECT * FROM pv WHERE v < 4")
        assert all(label == () for _row, label in results[mode])
        assert len(results[mode]) == 24
    assert results["batched"] == results["row"]


def _count_visible_calls(db):
    calls = [0]
    original = db.txn_manager.visible

    def wrapper(version, txn):
        calls[0] += 1
        return original(version, txn)

    db.txn_manager.visible = wrapper
    return calls


def test_mvcc_fast_path_skips_visible_on_clean_batches():
    _db, public, secret, _ = _stack(1024)
    calls = _count_visible_calls(_db)
    assert len(secret.execute("SELECT * FROM m").rows) == 40
    assert calls[0] == 0


def test_mvcc_fast_path_falls_back_with_inflight_transaction():
    db, public, secret, _ = _stack(1024)
    # An in-flight concurrent writer: its row must stay invisible, and
    # the batch fast path must not run (its xmin is an active xid).
    writer = db.connect(IFCProcess(db.authority,
                                   db.authority.create_principal("w").id))
    writer.begin()
    writer.execute("INSERT INTO m VALUES (999, 0, 1)")
    calls = _count_visible_calls(db)
    rows = secret.execute("SELECT id FROM m").rows
    assert calls[0] > 0                      # per-row fallback ran
    assert 999 not in [r[0] for r in rows]   # and kept the row hidden
    writer.commit()
    assert 999 in [r[0] for r in secret.execute("SELECT id FROM m").rows]


def test_mvcc_fast_path_resumes_after_vacuum_reclaims_aborts():
    """An aborted xid stalls the committed horizon (its dead versions
    linger in the heap), dropping scans to per-row visible(); a full
    vacuum reclaims them and must un-stall the fast path."""
    db, public, secret, _ = _stack(1024)
    public.begin()
    public.execute("INSERT INTO m VALUES (998, 0, 1)")
    public.rollback()
    public.execute("INSERT INTO m VALUES (997, 0, 1)")   # after the abort
    calls = _count_visible_calls(db)
    rows = secret.execute("SELECT id FROM m").rows
    assert calls[0] > 0                      # stalled: per-row fallback
    assert 998 not in [r[0] for r in rows]
    db.vacuum()
    calls[0] = 0
    rows = [r[0] for r in secret.execute("SELECT id FROM m").rows]
    assert calls[0] == 0                     # fast path resumed
    assert 998 not in rows and 997 in rows


def test_subquery_plans_stay_row_at_a_time():
    """EXISTS/IN/scalar consumers short-circuit, so expression-embedded
    subquery plans are deliberately not batch-stamped."""
    db, public, _secret, _ = _stack(1024)
    stmt = db.parse("SELECT * FROM m")
    assert db.planner.plan_select(stmt).plan.batch_size == 1024
    assert db.planner.plan_select(stmt, batched=False).plan.batch_size == 0


def test_mvcc_fast_path_falls_back_after_delete():
    db, public, secret, _ = _stack(1024)
    secret.execute("DELETE FROM m WHERE id = 0")      # sets an xmax
    calls = _count_visible_calls(db)
    rows = secret.execute("SELECT id FROM m").rows
    assert calls[0] > 0
    assert 0 not in [r[0] for r in rows]
    assert len(rows) == 39


def test_touch_run_counters_identical_to_per_version_touch():
    """The batched buffer accounting charges page runs; counter for
    counter it must equal the per-version sequence (hit_rate pins)."""
    sequence = ([("a", 0)] * 5 + [("a", 1)] * 3 + [("b", 0)] * 4
                + [("a", 0)] * 2 + [("a", 2)] + [("b", 0)] * 6)
    for capacity in (None, 2, 8):
        per_touch = BufferCache(capacity=capacity, io_penalty=0.5)
        for table, page in sequence:
            per_touch.touch(table, page)
        runs = BufferCache(capacity=capacity, io_penalty=0.5)
        run_key, run_len = None, 0
        for key in sequence:
            if key == run_key:
                run_len += 1
            else:
                if run_len:
                    runs.touch_run(run_key[0], run_key[1], run_len)
                run_key, run_len = key, 1
        runs.touch_run(run_key[0], run_key[1], run_len)
        for field in ("hits", "misses", "evictions", "io_time"):
            assert getattr(runs.stats, field) \
                == getattr(per_touch.stats, field), (capacity, field)
        assert runs.stats.hit_rate == per_touch.stats.hit_rate
        assert len(runs) == len(per_touch)


def test_batched_scan_buffer_stats_match_row_mode():
    db_row, _p1, secret_row, _ = _stack(0, buffer_pages=4, io_penalty=0.25,
                                        page_size=256)
    db_bat, _p2, secret_bat, _ = _stack(16, buffer_pages=4, io_penalty=0.25,
                                        page_size=256)
    for db, session in ((db_row, secret_row), (db_bat, secret_bat)):
        db.buffer_cache.reset()
        session.execute("SELECT * FROM m WHERE v < 10")
    for field in ("hits", "misses", "evictions", "io_time"):
        assert getattr(db_bat.buffer_cache.stats, field) \
            == getattr(db_row.buffer_cache.stats, field), field


def test_explain_shows_batch_annotation_only_when_batched():
    _db, public, _secret, _ = _stack(512)
    lines = [r[0] for r in public.execute("EXPLAIN SELECT * FROM m "
                                          "WHERE v < 5")]
    assert any("batch=512" in line for line in lines)
    naive_db, naive_pub, _n, _ = _stack(None, naive_plans=True)
    lines = [r[0] for r in naive_pub.execute("EXPLAIN SELECT * FROM m "
                                             "WHERE v < 5")]
    assert not any("batch=" in line for line in lines)


def test_small_index_probes_stay_on_the_row_path():
    """Vectorization is estimate-driven: a primary-key probe cannot
    amortize the batch machinery, so its whole plan stays row-at-a-time
    even in a batched database (stamp_batch_size / BATCH_MIN_INDEX_ROWS),
    while a full scan of the same table batches."""
    _db, public, _secret, _ = _stack(512)
    probe = [r[0] for r in public.execute(
        "EXPLAIN SELECT * FROM m WHERE id = 7")]
    assert any("IndexScan" in line for line in probe)
    assert not any("batch=" in line for line in probe)
    full = [r[0] for r in public.execute("EXPLAIN SELECT * FROM m")]
    assert any("batch=512" in line for line in full)


def test_reads_columns_only_classifier():
    col = ex.ColumnRef("v")
    label = ex.ColumnRef("_label")
    assert ex.reads_columns_only(ex.Compare("<", col, ex.Literal(3)))
    assert not ex.reads_columns_only(
        ex.FuncCall("LABEL_SIZE", [label]))
    assert not ex.reads_columns_only(
        ex.And([ex.Compare("=", col, ex.Literal(1)),
                ex.Compare("=", label, ex.Literal(None))]))
    assert not ex.reads_columns_only(ex.Exists(object()))


def test_compile_batch_and_preserves_short_circuit():
    """``x <> 0 AND 100 / x > 2`` must not divide for rows the first
    conjunct already rejected — the row compiler's contract."""
    scope = ex.Scope()
    scope.add_table("t", ["x"])
    compiler = ex.ExprCompiler(scope)
    x = ex.ColumnRef("x")
    node = ex.And([
        ex.Compare("<>", x, ex.Literal(0)),
        ex.Compare(">", ex.BinOp("/", ex.Literal(100), x), ex.Literal(2)),
    ])
    batch_fn = ex.compile_batch(compiler, node)
    rows = [[5, None], [0, None], [2, None], [None, None]]
    batch = physical.RowBatch(rows, [None] * 4, [None] * 4)
    flags = batch_fn(batch, None)
    assert flags == [True, False, True, None]
    # And the scan-level on-values path accepts this predicate shape.
    assert ex.reads_columns_only(node)


SELF_JOIN = ("SELECT a.id, b.id FROM m a JOIN m b ON b.grp = a.grp "
             "ORDER BY a.id, b.id")


def _join_counters(batch_size):
    """Run the duplicate-heavy self-join; return (rows, lookups,
    buffer_accesses, covers_calls) deltas for the join statement."""
    db, _public, secret, _ = _stack(batch_size, work_mem=0)
    plan_lines = [r[0] for r in secret.execute("EXPLAIN " + SELF_JOIN)]
    assert any("IndexLoopJoin" in line for line in plan_lines), plan_lines
    db.buffer_cache.reset()
    rows = secret.execute(SELF_JOIN).rows
    delta = db.last_statement_metrics()
    return (rows,
            delta["index"]["lookups"],
            db.buffer_cache.stats.accesses,
            delta["labels"]["covers_calls"])


def test_index_loop_join_dedups_probes_per_batch():
    """40 outer rows but only 4 distinct join keys: the batched probe
    must hit the index once per distinct key per batch, and must not
    double-count buffer-cache touches or Query-by-Label checks for the
    duplicate outer keys — row mode pays all three per outer row."""
    row_rows, row_lookups, row_touches, row_covers = _join_counters(0)
    bat_rows, bat_lookups, bat_touches, bat_covers = _join_counters(1024)
    assert [tuple(r) for r in bat_rows] == [tuple(r) for r in row_rows]
    # Row mode: one probe per outer row; each probe yields the 10
    # same-group candidates, each touched and label-checked.
    assert row_lookups == 40
    assert row_touches == 40 + 40 * 10       # outer scan + per-row probes
    # Batched (one 40-row batch): one probe per *distinct* key, one
    # touch and one visibility pass per candidate per probe — and one
    # covers() per distinct label per batch, never per duplicate row.
    assert bat_lookups == 4
    assert bat_touches == 40 + 4 * 10        # outer scan + deduped probes
    assert bat_covers <= 4                   # ≤2 labels × (scan + probe)
    assert bat_lookups <= row_lookups * 0.8  # the ≥20% acceptance floor
    assert bat_covers < row_covers


def test_index_loop_join_small_outer_stays_on_row_path():
    """The outer side is estimated below BATCH_MIN_INDEX_ROWS: batch
    probing cannot amortize, so the join pins the row path (per-row
    probes) even though the outer scan itself batches."""
    db, public, secret, _ = _stack(512, work_mem=0)
    public.execute("CREATE TABLE tiny (id INT PRIMARY KEY, grp INT)")
    for i in range(8):
        public.execute("INSERT INTO tiny VALUES (?, ?)", (i, i % 4))
    sql = "SELECT t.id, b.id FROM tiny t JOIN m b ON b.grp = t.grp"
    plan_lines = [r[0] for r in secret.execute("EXPLAIN " + sql)]
    join_line = next(line for line in plan_lines
                     if "IndexLoopJoin" in line)
    assert "batch=" not in join_line, join_line
    scan_line = next(line for line in plan_lines if "Scan tiny" in line)
    assert "batch=512" in scan_line, scan_line
    # Counter pin: the row path probes once per outer row — duplicate
    # keys are *not* deduped below the floor.
    rows = secret.execute(sql).rows
    assert db.last_statement_metrics()["index"]["lookups"] == 8
    assert len(rows) == 8 * 10


def test_projection_pushdown_materializes_only_needed_columns():
    """m has 3 stored columns; projecting 2 must copy exactly 2 cells
    per visible row out of the heap — the counter proof that pushdown
    reached the storage layer, at any batch size."""
    for batch_size in (5, 1024):
        _db, _public, secret, _ = _stack(batch_size)
        lines = [r[0] for r in secret.execute("EXPLAIN SELECT id, v FROM m")]
        assert any("cols=id,v" in line for line in lines), lines
        assert len(secret.execute("SELECT id, v FROM m").rows) == 40
        delta = _db.last_statement_metrics()["exec"]
        assert delta["columns_materialized"] == 2 * 40, (batch_size, delta)


def test_projection_pushdown_select_star_full_width():
    """``*`` reads everything: no cols= annotation, all cells copied."""
    _db, _public, secret, _ = _stack(1024)
    lines = [r[0] for r in secret.execute("EXPLAIN SELECT * FROM m")]
    assert not any("cols=" in line for line in lines), lines
    assert len(secret.execute("SELECT * FROM m").rows) == 40
    delta = _db.last_statement_metrics()["exec"]
    assert delta["columns_materialized"] == 3 * 40


def test_projection_pushdown_subquery_disables_pushdown():
    """A correlated subquery may read arbitrary outer columns through
    the outer-row stack, so its presence pins every scan to full
    width (the conservative bail-out)."""
    _db, _public, secret, _ = _stack(1024)
    sql = ("SELECT id FROM m WHERE EXISTS (SELECT 1 FROM m b "
           "WHERE b.grp = m.grp AND b.v > m.v)")
    lines = [r[0] for r in secret.execute("EXPLAIN " + sql)]
    assert not any("cols=" in line for line in lines), lines


def test_projection_pushdown_under_declassifying_view():
    """Pushdown must reach the scan *below* a declassifying view
    without disturbing label stripping: values, stripped labels, and
    the cell counter all agree with the full-width row executor."""
    results = {}
    for mode, batch_size in (("batched", 8), ("row", 0)):
        authority = AuthorityState(idgen=SeededIdGenerator(55))
        db = Database(authority, seed=55, batch_size=batch_size)
        clinic = authority.create_principal("clinic")
        compound = authority.create_compound_tag("all_t", owner=clinic.id)
        tag = authority.create_tag("t0", owner=clinic.id,
                                   compounds=(compound.id,))
        admin = db.connect(IFCProcess(authority, clinic.id))
        admin.execute("CREATE TABLE p (id INT PRIMARY KEY, a INT, b INT,"
                      " c TEXT)")
        for i in range(30):
            proc = IFCProcess(authority, clinic.id)
            proc.add_secrecy(tag.id)
            db.connect(proc).execute(
                "INSERT INTO p VALUES (?, ?, ?, ?)",
                (i, i % 5, i % 7, "pad-%d" % i))
        admin.execute("CREATE VIEW pv AS SELECT id, a FROM p "
                      "WITH DECLASSIFYING (all_t)")
        session = db.connect(IFCProcess(authority, clinic.id))
        results[mode] = _normalized(session, "SELECT a FROM pv")
        if mode == "batched":
            # The view body reads id and a: 2 of 4 stored columns.
            delta = db.last_statement_metrics()["exec"]
            assert delta["columns_materialized"] == 2 * 30
        assert all(label == () for _row, label in results[mode])
        assert len(results[mode]) == 30
    assert results["batched"] == results["row"]


def test_dml_plans_never_project():
    """UPDATE/DELETE rewrite whole tuple versions (xmax stamping plus
    the unchanged columns of the new version), so DML access paths
    always run at full width — no cols= on any EXPLAIN line, and a
    single-column UPDATE must leave its neighbors intact."""
    _db, public, secret, _ = _stack(1024)
    lines = [r[0] for r in secret.execute(
        "EXPLAIN UPDATE m SET v = 0 WHERE grp = 1")]
    assert not any("cols=" in line for line in lines), lines
    before = {r[0]: (r[1], r[2])
              for r in secret.execute("SELECT id, grp, v FROM m")}
    # id=5 is a public row; the public session may rewrite it.
    assert public.execute("UPDATE m SET v = 0 WHERE id = 5").rowcount == 1
    after = {r[0]: (r[1], r[2])
             for r in secret.execute("SELECT id, grp, v FROM m")}
    assert after[5] == (before[5][0], 0)
    assert all(after[i] == before[i] for i in before if i != 5)


def test_aggregation_over_join_matches_row_mode_with_projection():
    """Aggregation above a join above two projected scans: the
    column-at-a-time path must agree with row-at-a-time on groups,
    aggregates, and labels."""
    sql = ("SELECT a.grp, COUNT(*), SUM(b.v) FROM m a "
           "JOIN m b ON b.grp = a.grp GROUP BY a.grp")
    _db_row, _p1, secret_row, _ = _stack(0)
    _db_bat, _p2, secret_bat, _ = _stack(16)
    assert _normalized(secret_bat, sql) == _normalized(secret_row, sql)


def test_batches_widen_rows_exactly_once():
    """The no-double-copy pin: a batched pipeline (projected scan →
    projection) only rebuilds row-major lists at the cursor drain, so
    ``rows_widened`` equals the statement's output row count."""
    _db, _public, secret, _ = _stack(1024)
    rows = secret.execute("SELECT id, v FROM m WHERE v < 12").rows
    assert len(rows) > 0
    delta = _db.last_statement_metrics()["exec"]
    assert delta["rows_widened"] == len(rows)
    assert delta["columns_materialized"] == 2 * len(rows)


def test_predicate_free_scan_skips_row_copy_for_dml_targets():
    """versions() yields the physical versions without materializing a
    predicate row when there is no predicate (and with only the bare
    tuple when the predicate is label-free)."""
    db, public, secret, _ = _stack(1024)
    # Label-free predicate UPDATE through the batched path.
    count = secret.execute("UPDATE m SET v = v + 1 "
                           "WHERE grp = 1 AND id % 3 = 0").rowcount
    reference_db, _pub, secret_row, _ = _stack(0)
    expected = secret_row.execute("UPDATE m SET v = v + 1 "
                                  "WHERE grp = 1 AND id % 3 = 0").rowcount
    assert count == expected
    assert _normalized(secret, "SELECT * FROM m") \
        == _normalized(secret_row, "SELECT * FROM m")
