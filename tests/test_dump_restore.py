"""Label-preserving dump/restore and psql-style describe (section 7.2)."""

import pytest

from repro.core import IFCProcess, Label
from repro.db import Database
from repro.db.dump import (
    describe,
    dump_database,
    dump_to_file,
    restore_database,
    restore_from_file,
)
from repro.errors import DatabaseError


@pytest.fixture
def populated(medical):
    """The medical scenario plus a referencing table and a view."""
    admin = medical.db.connect(
        IFCProcess(medical.authority, medical.clinic.id))
    admin.execute(
        "CREATE TABLE Visits (vid INT PRIMARY KEY, patient_name TEXT)")
    admin.execute("CREATE INDEX visits_by_name ON Visits (patient_name)")
    admin.execute("INSERT INTO Visits VALUES (1, 'Alice')")
    admin.execute(
        "CREATE VIEW PatientCount AS SELECT COUNT(*) AS n "
        "FROM HIVPatients WITH DECLASSIFYING (all_medical)")
    return medical


class TestDumpRestore:
    def test_roundtrip_preserves_tuples_and_labels(self, populated):
        data = dump_database(populated.db)
        fresh = Database(populated.authority, seed=1)
        restore_database(data, fresh)
        # Labels intact: Bob's row only visible with Bob's tag.
        empty = fresh.connect(
            IFCProcess(populated.authority, populated.clinic.id))
        assert empty.query("SELECT * FROM HIVPatients") == []
        bob = fresh.connect(populated.process_for(populated.bob,
                                                  populated.bob_medical))
        rows = bob.query("SELECT patient_name, _label FROM HIVPatients")
        assert len(rows) == 1
        assert rows[0][1] == Label([populated.bob_medical.id])

    def test_roundtrip_preserves_constraints(self, populated):
        fresh = Database(populated.authority, seed=2)
        restore_database(dump_database(populated.db), fresh)
        session = fresh.connect(
            IFCProcess(populated.authority, populated.clinic.id))
        from repro.errors import UniqueViolation
        session.execute("INSERT INTO Visits VALUES (2, 'Bob')")
        with pytest.raises(UniqueViolation):
            session.execute("INSERT INTO Visits VALUES (2, 'Dup')")

    def test_roundtrip_preserves_views(self, populated):
        fresh = Database(populated.authority, seed=3)
        restore_database(dump_database(populated.db), fresh)
        session = fresh.connect(
            IFCProcess(populated.authority, populated.clinic.id))
        assert session.execute(
            "SELECT n FROM PatientCount").scalar() == 3

    def test_roundtrip_preserves_secondary_indexes(self, populated):
        fresh = Database(populated.authority, seed=4)
        restore_database(dump_database(populated.db), fresh)
        table = fresh.catalog.get_table("Visits")
        assert table.find_index(("patient_name",)) is not None

    def test_dead_versions_not_dumped(self, medical):
        session = medical.db.connect(
            medical.process_for(medical.alice, medical.alice_medical))
        session.execute(
            "UPDATE HIVPatients SET condition = 'x' "
            "WHERE patient_name = 'Alice'")
        fresh = Database(medical.authority, seed=5)
        restore_database(dump_database(medical.db), fresh)
        table = fresh.catalog.get_table("HIVPatients")
        assert table.version_count == 3       # one live version per row

    def test_restore_requires_empty_database(self, populated):
        data = dump_database(populated.db)
        occupied = Database(populated.authority, seed=6)
        occupied.connect().execute("CREATE TABLE t (x INT)")
        with pytest.raises(DatabaseError):
            restore_database(data, occupied)

    def test_file_roundtrip(self, populated, tmp_path):
        path = str(tmp_path / "backup.ifdb")
        dump_to_file(populated.db, path)
        fresh = Database(populated.authority, seed=7)
        restore_from_file(path, fresh)
        assert "HIVPatients" in fresh.catalog.tables

    def test_garbage_rejected(self, populated):
        with pytest.raises(Exception):
            restore_database(b"not a dump", Database(populated.authority))

    def test_restore_runs_analyze(self, populated):
        """Restored tables plan on real statistics immediately, not on
        defaults until drift forces a refresh."""
        fresh = Database(populated.authority, seed=8)
        restore_database(dump_database(populated.db), fresh)
        assert "Visits" in fresh.stats_manager.analyzed()
        stats = fresh.stats_manager.peek("HIVPatients")
        assert stats is not None and stats.row_count == 3


class TestDumpIntegrity:
    """The CRC/format-version container (corruption must fail clearly)."""

    def test_truncated_dump_rejected(self, populated):
        data = dump_database(populated.db)
        with pytest.raises(DatabaseError, match="truncated"):
            restore_database(data[:-20], Database(populated.authority))

    def test_bit_flip_rejected(self, populated):
        data = bytearray(dump_database(populated.db))
        data[-10] ^= 0x40
        with pytest.raises(DatabaseError, match="checksum"):
            restore_database(bytes(data), Database(populated.authority))

    def test_old_format_rejected_with_clear_error(self, populated):
        import pickle
        legacy = pickle.dumps({"format": "ifdb-dump-v1", "tables": {}})
        with pytest.raises(DatabaseError, match="magic"):
            restore_database(legacy, Database(populated.authority))

    def test_header_shorter_than_magic_rejected(self, populated):
        with pytest.raises(DatabaseError, match="magic"):
            restore_database(b"IF", Database(populated.authority))


class TestDumpCompleteness:
    """Unserializable catalog objects must never vanish silently."""

    def test_dump_warns_about_functions_and_triggers(self, populated):
        from repro.db.dump import DumpIncompleteWarning
        db = populated.db
        db.create_function("shout", lambda s: str(s).upper())
        db.create_procedure("audit_proc", lambda session: None)
        with pytest.warns(DumpIncompleteWarning, match="SHOUT") as caught:
            data = dump_database(db)
        assert any("audit_proc" in str(w.message) for w in caught)
        fresh = Database(populated.authority, seed=9)
        with pytest.warns(DumpIncompleteWarning, match="function SHOUT|"
                                                       "procedure"):
            restore_database(data, fresh)
        assert "Visits" in fresh.catalog.tables
        assert not fresh.catalog.functions and not fresh.catalog.procedures

    def test_complete_dump_does_not_warn(self, populated, recwarn):
        data = dump_database(populated.db)
        fresh = Database(populated.authority, seed=10)
        restore_database(data, fresh)
        from repro.db.dump import DumpIncompleteWarning
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DumpIncompleteWarning)]


class TestDescribe:
    def test_describe_shows_label_histogram(self, medical):
        text = describe(medical.db, "HIVPatients")
        assert "HIVPatients" in text
        assert "alice_medical" in text
        assert "live tuples: 3" in text

    def test_describe_notes_polyinstantiation(self, medical):
        session = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        session.execute(
            "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'x')")
        text = describe(medical.db, "HIVPatients")
        assert "polyinstantiated inserts: 1" in text
