"""EXPLAIN ANALYZE: executed plans annotated with measured actuals.

The contract under test (db/metrics.py ``PlanRecorder`` + the session's
``_explain_analyze``):

* the statement really executes — root-operator actual rows equal the
  row count the plain statement returns, across the differential
  executors (optimized vs naive plans, batch sizes 1/default/row-mode);
* per-operator counters are *exclusive* (self-only) and sum exactly to
  the statement-total line — execution is single-threaded and
  pull-based, so counter attribution has no slack, even when the plan
  spills;
* ANALYZE of DML applies its writes exactly once (the instrumented
  plan replaces, not precedes, the normal execution);
* plain EXPLAIN is unchanged: no actuals, nothing executed.
"""

from __future__ import annotations

import re

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.errors import DatabaseError

_ACTUAL = re.compile(r"\(actual (.*)\)\s*$")


def _parse_pairs(text):
    out = {}
    for part in text.split():
        key, _, value = part.partition("=")
        if not _:
            continue
        if key == "time":
            out[key] = float(value[:-2])          # strip "ms"
        elif key == "io":
            out[key] = value
        else:
            out[key] = int(value)
    return out


def _actuals(line):
    """The ``(actual …)`` pairs of one plan line, or None."""
    match = _ACTUAL.search(line)
    return _parse_pairs(match.group(1)) if match else None


def _analyze(session, sql):
    lines = [row[0] for row in session.execute("EXPLAIN ANALYZE " + sql)]
    ops = [a for a in map(_actuals, lines) if a is not None]
    summary = next(line for line in lines
                   if line.startswith("Statement counters:"))
    totals = _parse_pairs(summary[len("Statement counters:"):])
    return lines, ops, totals


def _stack(batch_size=None, **db_kwargs):
    authority = AuthorityState(idgen=SeededIdGenerator(2024))
    kwargs = dict(db_kwargs)
    if batch_size is not None:
        kwargs["batch_size"] = batch_size
    db = Database(authority, seed=2024, **kwargs)
    owner = authority.create_principal("owner")
    tag = authority.create_tag("ea-secret", owner=owner.id)
    public = db.connect(IFCProcess(authority, owner.id))
    secret_proc = IFCProcess(authority, owner.id)
    secret_proc.add_secrecy(tag.id)
    secret = db.connect(secret_proc)
    public.execute("CREATE TABLE m (id INT PRIMARY KEY, grp INT, v INT)")
    public.execute("CREATE ORDERED INDEX m_grp ON m (grp, v)")
    for i in range(40):
        session = secret if i % 3 == 0 else public
        session.execute("INSERT INTO m VALUES (?, ?, ?)",
                        (i, i % 4, (i * 7) % 23))
    return db, public, secret


QUERIES = [
    "SELECT * FROM m",
    "SELECT id, v FROM m WHERE v < 12",
    "SELECT grp, COUNT(*), SUM(v) FROM m GROUP BY grp",
    "SELECT DISTINCT grp FROM m WHERE v >= 5",
    "SELECT id FROM m ORDER BY v DESC, id LIMIT 7 OFFSET 3",
    "SELECT a.id, b.id FROM m a JOIN m b ON b.grp = a.grp "
    "WHERE a.v < 5 AND b.v < 5",
]


@pytest.mark.parametrize("variant", ["default", "batch1", "row", "naive"])
def test_root_actual_rows_match_the_real_result(variant):
    kwargs = {"default": {}, "batch1": {"batch_size": 1},
              "row": {"batch_size": 0},
              "naive": {"naive_plans": True}}[variant]
    _db, _public, secret = _stack(**kwargs)
    for sql in QUERIES:
        expected = len(secret.execute(sql).rows)
        lines, ops, _totals = _analyze(secret, sql)
        assert ops, lines
        assert ops[0]["rows"] == expected, (variant, sql, lines)


def test_per_operator_counters_sum_exactly_to_statement_totals():
    """The acceptance pin: a spilling aggregate-over-join, every
    counter family in motion, per-operator exclusive figures summing
    to the statement's registry delta with zero slack."""
    authority = AuthorityState(idgen=SeededIdGenerator(7))
    db = Database(authority, seed=7, work_mem=2048)
    owner = authority.create_principal("o")
    session = db.connect(IFCProcess(authority, owner.id))
    session.execute("CREATE TABLE r (id INT PRIMARY KEY, k INT, pad TEXT)")
    session.execute("CREATE TABLE s (sid INT PRIMARY KEY, k INT, v INT)")
    for i in range(200):
        session.execute("INSERT INTO r VALUES (?, ?, ?)",
                        (i, i % 25, "pad-%06d" % i))
        session.execute("INSERT INTO s VALUES (?, ?, ?)",
                        (i, i % 25, i * 3))
    sql = ("SELECT r.k, COUNT(*), SUM(s.v) FROM r JOIN s ON s.k = r.k "
           "GROUP BY r.k")
    lines, ops, totals = _analyze(session, sql)
    assert any("HashJoin" in line for line in lines), lines
    # The join really spilled, and EXPLAIN ANALYZE attributed it there.
    join_actuals = next(a for line, a in zip(lines, map(_actuals, lines))
                        if a and "HashJoin" in line)
    assert join_actuals["spills"] >= 1
    assert join_actuals["spill_partitions"] > 0
    assert join_actuals["spill_bytes"] > 0
    # Zero-slack attribution: every counter key, summed over operators,
    # equals the statement-total delta (time/io excluded — wall time
    # nests, it does not partition).
    summed = {}
    for op in ops:
        for key, value in op.items():
            if key in ("rows", "batches", "time", "io"):
                continue
            summed[key] = summed.get(key, 0) + value
    totals.pop("io", None)
    assert summed == totals, (summed, totals, lines)
    # And the statement's answer is unchanged by instrumentation.
    assert ops[0]["rows"] == len(session.execute(sql).rows) == 25


def test_analyze_update_applies_writes_exactly_once():
    _db, public, secret = _stack()
    before = {r[0]: r[2] for r in secret.execute("SELECT id, grp, v FROM m")}
    lines = [r[0] for r in public.execute(
        "EXPLAIN ANALYZE UPDATE m SET v = v + 1 WHERE id = 5")]
    assert lines[0].startswith("Update m")
    assert "actual rows=1" in lines[0], lines
    after = {r[0]: r[2] for r in secret.execute("SELECT id, grp, v FROM m")}
    assert after[5] == before[5] + 1        # once, not twice
    assert all(after[i] == before[i] for i in before if i != 5)
    assert any("Execution time:" in line for line in lines)


def test_analyze_delete_applies_writes_exactly_once():
    _db, public, secret = _stack()
    assert len(secret.execute("SELECT id FROM m").rows) == 40
    # The write rule scopes the DELETE to the session's own rows: the
    # secret session inserted exactly the id % 3 == 0 tuples (14).
    lines = [r[0] for r in secret.execute(
        "EXPLAIN ANALYZE DELETE FROM m WHERE id % 3 = 0")]
    assert lines[0].startswith("Delete m")
    assert "actual rows=14" in lines[0], lines
    assert len(secret.execute("SELECT id FROM m").rows) == 26


def test_analyze_insert_is_rejected():
    _db, public, _secret = _stack()
    with pytest.raises(DatabaseError):
        public.execute("EXPLAIN ANALYZE INSERT INTO m VALUES (99, 0, 0)")
    assert 99 not in [r[0] for r in public.execute("SELECT id FROM m")]


def test_plain_explain_still_estimates_only():
    _db, public, secret = _stack()
    lines = [r[0] for r in public.execute(
        "EXPLAIN SELECT * FROM m WHERE v < 5")]
    assert not any("actual" in line for line in lines), lines
    assert not any("Execution time" in line for line in lines)
    # and it did not execute: DML via plain EXPLAIN leaves data alone
    public.execute("EXPLAIN UPDATE m SET v = 0")
    assert any(r[0] != 0 for r in public.execute("SELECT v FROM m"))


def test_analyze_result_shape_matches_explain():
    _db, public, _secret = _stack()
    result = public.execute("EXPLAIN ANALYZE SELECT * FROM m")
    assert result.columns == ["QUERY PLAN"]
    assert all(len(row) == 1 for row in result.rows)


def test_analyze_row_counts_per_operator_make_sense():
    """Interior operators see pre-limit cardinalities; the probe counts
    what each operator *emitted*, not what the statement returned.
    ORDER BY … LIMIT plans as a TopN bounded heap, which emits only the
    post-offset rows — the scan below it still shows the full input."""
    _db, _public, secret = _stack()
    lines, ops, _totals = _analyze(
        secret, "SELECT id FROM m ORDER BY v DESC, id LIMIT 7 OFFSET 3")
    by_line = {line.strip().split()[0]: a
               for line, a in zip(lines, map(_actuals, lines)) if a}
    assert by_line["TopN"]["rows"] == 7
    assert by_line["Scan"]["rows"] == 40
