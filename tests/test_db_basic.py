"""Basic relational-engine behaviour (no labels): CRUD, types, queries."""

import pytest

from repro.errors import (
    CatalogError,
    DatabaseError,
    SQLSyntaxError,
    TypeError_,
)


@pytest.fixture
def session(db):
    s = db.connect()
    s.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c REAL DEFAULT 1.5,"
              " d BOOLEAN DEFAULT FALSE)")
    return s


class TestInsertAndTypes:
    def test_insert_and_select(self, session):
        session.execute("INSERT INTO t (a, b) VALUES (1, 'x')")
        row = session.execute("SELECT * FROM t").first()
        assert row == [1, "x", 1.5, False]

    def test_defaults_applied(self, session):
        session.execute("INSERT INTO t (a) VALUES (1)")
        row = session.execute("SELECT c, d FROM t").first()
        assert row == [1.5, False]

    def test_type_coercion(self, session):
        session.execute("INSERT INTO t (a, b, c) VALUES ('5', 7, '2.5')")
        row = session.execute("SELECT a, b, c FROM t").first()
        assert row == [5, "7", 2.5]

    def test_bad_type_rejected(self, session):
        with pytest.raises(TypeError_):
            session.execute("INSERT INTO t (a) VALUES ('not a number')")

    def test_not_null_enforced(self, db):
        s = db.connect()
        s.execute("CREATE TABLE n (x INT NOT NULL)")
        with pytest.raises(TypeError_):
            s.execute("INSERT INTO n (x) VALUES (NULL)")

    def test_varchar_length(self, db):
        s = db.connect()
        s.execute("CREATE TABLE v (x VARCHAR(3))")
        s.execute("INSERT INTO v VALUES ('abc')")
        with pytest.raises(TypeError_):
            s.execute("INSERT INTO v VALUES ('abcd')")

    def test_wrong_arity_rejected(self, session):
        with pytest.raises(DatabaseError):
            session.execute("INSERT INTO t (a, b) VALUES (1)")

    def test_unknown_column_rejected(self, session):
        with pytest.raises(CatalogError):
            session.execute("INSERT INTO t (zz) VALUES (1)")


class TestQueries:
    @pytest.fixture(autouse=True)
    def populate(self, session):
        for i in range(10):
            session.execute("INSERT INTO t (a, b, c) VALUES (?, ?, ?)",
                            (i, "name%d" % (i % 3), float(i)))
        self.session = session

    def test_where_comparisons(self):
        assert len(self.session.query("SELECT * FROM t WHERE a >= 5")) == 5
        assert len(self.session.query(
            "SELECT * FROM t WHERE a BETWEEN 2 AND 4")) == 3
        assert len(self.session.query(
            "SELECT * FROM t WHERE b LIKE 'name%'")) == 10
        assert len(self.session.query(
            "SELECT * FROM t WHERE b LIKE '%1'")) == 3

    def test_order_by_and_limit(self):
        rows = self.session.query(
            "SELECT a FROM t ORDER BY a DESC LIMIT 3")
        assert [r[0] for r in rows] == [9, 8, 7]
        rows = self.session.query(
            "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 4")
        assert [r[0] for r in rows] == [4, 5]

    def test_order_by_position_and_alias(self):
        rows = self.session.query(
            "SELECT a * -1 AS neg FROM t ORDER BY neg LIMIT 1")
        assert rows[0][0] == -9
        rows = self.session.query("SELECT a FROM t ORDER BY 1 DESC LIMIT 1")
        assert rows[0][0] == 9

    def test_distinct(self):
        rows = self.session.query("SELECT DISTINCT b FROM t ORDER BY b")
        assert [r[0] for r in rows] == ["name0", "name1", "name2"]

    def test_group_by_with_having(self):
        rows = self.session.query(
            "SELECT b, COUNT(*) AS n, SUM(a) FROM t GROUP BY b "
            "HAVING COUNT(*) > 3 ORDER BY b")
        assert [list(r) for r in rows] == [["name0", 4, 18]]

    def test_global_aggregates(self):
        row = self.session.execute(
            "SELECT COUNT(*), MIN(a), MAX(a), AVG(c) FROM t").first()
        assert list(row) == [10, 0, 9, 4.5]

    def test_global_aggregate_on_empty_input(self):
        row = self.session.execute(
            "SELECT COUNT(*), SUM(a), MIN(a) FROM t WHERE a > 100").first()
        assert list(row) == [0, None, None]

    def test_count_distinct(self):
        assert self.session.execute(
            "SELECT COUNT(DISTINCT b) FROM t").scalar() == 3

    def test_parameters_positional(self):
        rows = self.session.query(
            "SELECT a FROM t WHERE a > ? AND a < ?", (2, 6))
        assert [r[0] for r in rows] == [3, 4, 5]

    def test_select_without_from(self, session):
        row = session.execute("SELECT 1 + 1, 'x' || 'y'").first()
        assert list(row) == [2, "xy"]

    def test_case_expression(self):
        rows = self.session.query(
            "SELECT CASE WHEN a < 5 THEN 'low' ELSE 'high' END AS bucket, "
            "COUNT(*) FROM t GROUP BY CASE WHEN a < 5 THEN 'low' "
            "ELSE 'high' END ORDER BY bucket")
        assert [list(r) for r in rows] == [["high", 5], ["low", 5]]

    def test_builtin_functions(self):
        row = self.session.execute(
            "SELECT ABS(-3), LENGTH('abcd'), UPPER('x'), LOWER('Y'), "
            "COALESCE(NULL, 7), SUBSTR('hello', 2, 3)").first()
        assert list(row) == [3, 4, "X", "y", 7, "ell"]

    def test_null_semantics_in_where(self, db):
        s = db.connect()
        s.execute("CREATE TABLE nt (x INT, y INT)")
        s.execute("INSERT INTO nt VALUES (1, NULL)")
        s.execute("INSERT INTO nt VALUES (2, 5)")
        assert len(s.query("SELECT * FROM nt WHERE y > 1")) == 1
        assert len(s.query("SELECT * FROM nt WHERE y IS NULL")) == 1
        # NULL = NULL is unknown, not true
        assert len(s.query("SELECT * FROM nt WHERE y = NULL")) == 0


class TestUpdateDelete:
    @pytest.fixture(autouse=True)
    def populate(self, session):
        for i in range(5):
            session.execute("INSERT INTO t (a, b) VALUES (?, 'x')", (i,))
        self.session = session

    def test_update_with_expression(self):
        count = self.session.execute(
            "UPDATE t SET a = a + 100 WHERE a >= 3").rowcount
        assert count == 2
        rows = self.session.query("SELECT a FROM t ORDER BY a")
        assert [r[0] for r in rows] == [0, 1, 2, 103, 104]

    def test_delete(self):
        assert self.session.execute(
            "DELETE FROM t WHERE a % 2 = 0").rowcount == 3
        assert self.session.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_update_everything(self):
        assert self.session.execute("UPDATE t SET b = 'z'").rowcount == 5
        assert len(self.session.query(
            "SELECT * FROM t WHERE b = 'z'")) == 5


class TestCatalogDDL:
    def test_duplicate_table_rejected(self, session):
        with pytest.raises(CatalogError):
            session.execute("CREATE TABLE t (x INT)")

    def test_if_not_exists(self, session):
        session.execute("CREATE TABLE IF NOT EXISTS t (x INT)")

    def test_drop_table(self, session):
        session.execute("CREATE TABLE gone (x INT)")
        session.execute("DROP TABLE gone")
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM gone")

    def test_unknown_table(self, session):
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM nothere")

    def test_syntax_error(self, session):
        with pytest.raises(SQLSyntaxError):
            session.execute("SELEC * FROM t")

    def test_create_index_used_for_lookup(self, session, db):
        session.execute("CREATE INDEX t_b ON t (b)")
        for i in range(20):
            session.execute("INSERT INTO t (a, b) VALUES (?, ?)",
                            (100 + i, "k%d" % i))
        rows = session.query("SELECT a FROM t WHERE b = 'k5'")
        assert [r[0] for r in rows] == [105]
