"""Property-based system tests: randomized operation sequences must
never violate the core IFDB invariants.

Invariants checked:

1. **Confinement**: a query never returns a tuple whose label is not
   covered by the reader's label (Query by Label, section 4.2).
2. **Write stamping**: every stored tuple's label equals the label its
   writer held at insert time.
3. **Polyinstantiation soundness**: an insert never fails because of a
   tuple the inserter could not see.
4. **MVCC atomicity**: after a rollback, the database state matches the
   state before the transaction began.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AuthorityState, IFCProcess, Label, SeededIdGenerator
from repro.core.rules import covers
from repro.db import Database
from repro.errors import IntegrityError, ReproError


def build_world(n_users=3):
    authority = AuthorityState(idgen=SeededIdGenerator(99))
    db = Database(authority, seed=99)
    users = []
    for i in range(n_users):
        principal = authority.create_principal("u%d" % i)
        tag = authority.create_tag("tag%d" % i, owner=principal.id)
        users.append((principal, tag))
    admin = db.connect(IFCProcess(authority, users[0][0].id))
    admin.execute("CREATE TABLE T (k INT PRIMARY KEY, v INT)")
    return authority, db, users


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "select"]),
        st.integers(min_value=0, max_value=2),       # acting user
        st.sets(st.integers(min_value=0, max_value=2), max_size=3),  # label
        st.integers(min_value=0, max_value=9),       # key
    ),
    min_size=1, max_size=40)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops)
def test_random_operations_respect_invariants(operations):
    authority, db, users = build_world()
    registry = authority.tags
    value_counter = [0]

    for op, user_index, label_indices, key in operations:
        principal, _tag = users[user_index]
        process = IFCProcess(authority, principal.id)
        for li in label_indices:
            process.add_secrecy(users[li][1].id)
        session = db.connect(process)
        try:
            if op == "insert":
                value_counter[0] += 1
                session.execute("INSERT INTO T VALUES (?, ?)",
                                (key, value_counter[0]))
            elif op == "update":
                session.execute("UPDATE T SET v = v + 1 WHERE k = ?",
                                (key,))
            elif op == "delete":
                session.execute("DELETE FROM T WHERE k = ?", (key,))
            else:
                rows = session.query("SELECT k, v, _label FROM T")
                # Invariant 1: confinement.
                for row in rows:
                    assert covers(registry, row[2], process.label)
        except ReproError:
            pass      # rule violations are allowed; crashes are not

    # Invariant 2: every stored version's label was some writer's label —
    # in this workload, always a subset of the three user tags.
    all_tags = {users[i][1].id for i in range(3)}
    for version in db.catalog.get_table("T").all_versions():
        assert set(version.label.tags) <= all_tags

    # Invariant 3 (spot check): a fresh insert with a label above every
    # existing conflicting tuple must polyinstantiate, not fail.
    process = IFCProcess(authority, users[0][0].id)
    session = db.connect(process)
    try:
        session.execute("INSERT INTO T VALUES (0, -1)")
    except IntegrityError:
        # Allowed only if a conflicting tuple was *visible* (empty
        # label covers only empty-labelled tuples).
        txn = db.txn_manager.begin()
        visible_conflict = any(
            version.values[0] == 0 and len(version.label) == 0
            and db.txn_manager.visible(version, txn)
            for version in db.catalog.get_table("T").all_versions())
        db.txn_manager.abort(txn)
        assert visible_conflict


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.booleans()),
                min_size=1, max_size=20))
def test_rollback_restores_prior_state(changes):
    authority, db, users = build_world()
    principal, _ = users[0]
    process = IFCProcess(authority, principal.id)
    session = db.connect(process)
    for i in range(5):
        session.execute("INSERT INTO T VALUES (?, 0)", (i,))

    def snapshot():
        return sorted(tuple(r) for r in session.query(
            "SELECT k, v FROM T"))

    before = snapshot()
    session.execute("BEGIN")
    for key, is_update in changes:
        try:
            if is_update:
                session.execute("UPDATE T SET v = v + 1 WHERE k = ?",
                                (key,))
            else:
                session.execute("INSERT INTO T VALUES (?, 1)",
                                (key + 100,))
        except ReproError:
            session.rollback()
            break
    if session.transaction is not None:
        session.rollback()
    assert snapshot() == before


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=4), max_size=5),
       st.sets(st.integers(min_value=0, max_value=4), max_size=5))
def test_visibility_is_monotone_in_labels(reader_tags, bigger_extra):
    """Raising the reader's label never hides previously visible rows."""
    authority, db, users_unused = build_world(n_users=1)
    owner = authority.create_principal("owner")
    tags = [authority.create_tag("m%d" % i, owner=owner.id)
            for i in range(5)]
    writer = IFCProcess(authority, owner.id)
    session = db.connect(writer)
    rng = random.Random(7)
    for key in range(20):
        chosen = rng.sample(range(5), rng.randint(0, 2))
        target = Label([tags[i].id for i in chosen])
        writer.set_label(target)
        session.execute("INSERT INTO T VALUES (?, 0)", (100 + key,))
    writer.set_label(Label())

    def visible_with(tag_indices):
        reader = IFCProcess(authority, owner.id)
        for i in tag_indices:
            reader.add_secrecy(tags[i].id)
        return {r[0] for r in db.connect(reader).query(
            "SELECT k FROM T")}

    small = visible_with(reader_tags)
    large = visible_with(reader_tags | bigger_extra)
    assert small <= large
