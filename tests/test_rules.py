"""The flow rules (sections 3.2, 4.2, 5.1) plus hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Label
from repro.core.rules import (
    can_flow,
    can_flow_integrity,
    covers,
    may_commit,
    may_write,
    same_contamination,
    strip,
    symmetric_difference,
    tuple_visible,
)
from repro.core.tags import Tag, TagRegistry

tag_sets = st.sets(st.integers(min_value=1, max_value=30), max_size=6)


@pytest.fixture
def registry():
    reg = TagRegistry()
    reg.add(Tag(id=100, name="all", owner=1, is_compound=True))
    reg.add(Tag(id=1, name="alice", owner=1, compounds=frozenset((100,))))
    reg.add(Tag(id=2, name="bob", owner=1, compounds=frozenset((100,))))
    reg.add(Tag(id=3, name="loose", owner=1))
    return reg


class TestCovers:
    def test_plain_subset(self, registry):
        assert covers(registry, Label([1]), Label([1, 3]))
        assert not covers(registry, Label([3]), Label([1]))

    def test_empty_covered_by_anything(self, registry):
        assert covers(registry, Label(), Label())
        assert covers(registry, Label(), Label([1]))

    def test_compound_covers_members(self, registry):
        assert covers(registry, Label([1]), Label([100]))
        assert covers(registry, Label([1, 2]), Label([100]))
        assert not covers(registry, Label([3]), Label([100]))

    def test_same_contamination_with_compounds(self, registry):
        # {all} and {all, alice} denote the same contamination set.
        assert same_contamination(registry, Label([100]), Label([100, 1]))
        assert not same_contamination(registry, Label([1]), Label([100]))


class TestFlowRules:
    def test_information_flow_rule(self, registry):
        assert can_flow(registry, Label([1]), Label([1, 2]))
        assert not can_flow(registry, Label([1, 2]), Label([1]))

    def test_integrity_flow_is_dual(self, registry):
        assert can_flow_integrity(registry, Label([1, 2]), Label([1]))
        assert not can_flow_integrity(registry, Label([1]), Label([1, 2]))

    def test_tuple_visible_is_confinement(self, registry):
        assert tuple_visible(registry, Label([1]), Label([1]))
        assert not tuple_visible(registry, Label([1, 3]), Label([1]))

    def test_write_rule(self, registry):
        # LT must cover LP.
        assert may_write(registry, Label([1, 2]), Label([1]))
        assert not may_write(registry, Label([1]), Label([1, 2]))

    def test_commit_rule(self, registry):
        # commit label must be covered by the written tuple's label.
        assert may_commit(registry, Label([1]), Label([1, 2]))
        assert not may_commit(registry, Label([1, 2]), Label([1]))


class TestStripAndSymdiff:
    def test_strip_plain(self, registry):
        assert strip(registry, Label([1, 3]), Label([3])) == Label([1])

    def test_strip_compound_removes_members(self, registry):
        assert strip(registry, Label([1, 2, 3]), Label([100])) == Label([3])

    def test_strip_no_op_returns_same_object(self, registry):
        label = Label([3])
        assert strip(registry, label, Label([1])) is label

    def test_symmetric_difference(self, registry):
        assert symmetric_difference(Label([1, 2]), Label([2, 3])) == \
            Label([1, 3])
        assert symmetric_difference(Label([1]), Label([1])) == Label()


class TestRuleProperties:
    @given(tag_sets, tag_sets)
    def test_covers_matches_set_subset_without_compounds(self, a, b):
        reg = TagRegistry()    # no compound tags at all
        assert covers(reg, Label(a), Label(b)) == (a <= b)

    @given(tag_sets)
    def test_covers_is_reflexive(self, a):
        reg = TagRegistry()
        assert covers(reg, Label(a), Label(a))

    @given(tag_sets, tag_sets, tag_sets)
    def test_covers_is_transitive(self, a, b, c):
        reg = TagRegistry()
        if covers(reg, Label(a), Label(b)) and covers(reg, Label(b),
                                                      Label(c)):
            assert covers(reg, Label(a), Label(c))

    @given(tag_sets, tag_sets)
    def test_write_rule_dual_of_flow(self, a, b):
        reg = TagRegistry()
        assert may_write(reg, Label(a), Label(b)) == \
            can_flow(reg, Label(b), Label(a))

    @given(tag_sets, tag_sets)
    def test_symmetric_difference_commutes(self, a, b):
        assert symmetric_difference(Label(a), Label(b)) == \
            symmetric_difference(Label(b), Label(a))

    @given(tag_sets, tag_sets)
    def test_strip_result_disjoint_from_stripped(self, a, b):
        reg = TagRegistry()
        result = strip(reg, Label(a), Label(b))
        assert not (result.tags & frozenset(b))
        assert result.tags <= frozenset(a)
