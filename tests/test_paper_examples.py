"""Scenario tests that replay passages of the paper verbatim.

Each test cites the section whose example it reproduces, so the test
suite doubles as an executable index into the paper.
"""

import pytest

from repro.core import EMPTY_LABEL, IFCProcess, Label
from repro.errors import (
    AuthorityError,
    ForeignKeyViolation,
    IFCViolation,
)


class TestSection1CarTelPolicy:
    """'IFDB can enforce Alice's policy that only she can see her
    current location, and only she and her friends can see her past
    drives.'"""

    def test_policy(self, authority, db):
        alice = authority.create_principal("alice")
        bob = authority.create_principal("bob")
        t_loc = authority.create_tag("alice-location", owner=alice.id)
        t_drv = authority.create_tag("alice-drives", owner=alice.id)
        # Alice lets Bob see her drives but not her location.
        authority.delegate(t_drv.id, alice.id, bob.id)
        bob_process = IFCProcess(authority, bob.id)
        bob_process.add_secrecy(t_drv.id)
        bob_process.declassify(t_drv.id)             # allowed: delegated
        bob_process.add_secrecy(t_loc.id)
        with pytest.raises(AuthorityError):
            bob_process.declassify(t_loc.id)          # never delegated


class TestSection42QueryExamples:
    """The HIVPatients queries of section 4.2 / Figure 2."""

    def test_bob_query_with_bob_label(self, medical):
        process = medical.process_for(medical.bob, medical.bob_medical)
        session = medical.db.connect(process)
        rows = session.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Bob' "
            "AND patient_dob = '6/26/78'")
        assert len(rows) == 1

    def test_same_query_with_empty_or_wrong_label(self, medical):
        john = medical.authority.create_principal("john")
        john_tag = medical.authority.create_tag("john_medical",
                                                owner=john.id)
        for process in (medical.process_for(medical.bob),
                        medical.process_for(john, john_tag)):
            session = medical.db.connect(process)
            rows = session.query(
                "SELECT * FROM HIVPatients WHERE patient_name = 'Bob' "
                "AND patient_dob = '6/26/78'")
            assert rows == []


class TestSection51TransactionChannel:
    """The 'Alice has HIV' covert-channel transaction, step by step."""

    def test_channel_closed(self, medical):
        db = medical.db
        setup = db.connect(IFCProcess(medical.authority, medical.clinic.id))
        setup.execute("CREATE TABLE Foo (msg TEXT PRIMARY KEY)")
        process = IFCProcess(medical.authority, medical.clinic.id)
        session = db.connect(process)
        session.execute("BEGIN")
        session.execute("INSERT INTO Foo VALUES ('Alice has HIV')")
        process.add_secrecy(medical.alice_medical.id)      # addsecrecy()
        found = session.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'")
        assert found                                       # she does
        with pytest.raises(IFCViolation):
            session.commit()
        # Without the commit-label rule, 'Alice has HIV' would now be
        # publicly readable exactly when Alice has HIV.
        assert setup.execute("SELECT COUNT(*) FROM Foo").scalar() == 0


class TestSection521InsertExamples:
    """The three inserts enumerated in section 5.2.1."""

    def test_all_three(self, medical):
        db = medical.db
        authority = medical.authority
        # 1: Dan is new — succeeds with any label.
        dan = authority.create_principal("dan")
        dan_tag = authority.create_tag("dan_medical", owner=dan.id)
        s1 = db.connect(medical.process_for(dan, dan_tag))
        s1.execute("INSERT INTO HIVPatients VALUES ('Dan', '8/12/69', 'x')")
        # 2: visible conflict — fails, revealing nothing new.
        s2 = db.connect(medical.process_for(medical.alice,
                                            medical.alice_medical))
        from repro.errors import UniqueViolation
        with pytest.raises(UniqueViolation):
            s2.execute(
                "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'x')")
        # 3: invisible conflict — polyinstantiates instead of leaking.
        s3 = db.connect(IFCProcess(authority, medical.clinic.id))
        s3.execute("INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'x')")


class TestSection522ForeignKeyChannels:
    """The HIVRecords insert channel and PatientContact delete channel."""

    @pytest.fixture
    def tables(self, medical):
        admin = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        admin.execute(
            "CREATE TABLE PatientContact (patient_name TEXT PRIMARY KEY, "
            "phone TEXT)")
        admin.execute(
            "CREATE TABLE HIVRecords (recid INT PRIMARY KEY, "
            "patient_name TEXT, patient_dob TEXT, "
            "FOREIGN KEY (patient_name, patient_dob) "
            "REFERENCES HIVPatients(patient_name, patient_dob))")
        return admin

    def test_probe_insert_channel_closed(self, medical, tables):
        """A process with an empty label cannot probe HIVPatients
        membership by inserting into HIVRecords: the Foreign Key Rule
        demands explicit declassification authority."""
        probe = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        # Alice IS in the table, but the prober may not learn that:
        with pytest.raises(IFCViolation):
            probe.execute(
                "INSERT INTO HIVRecords VALUES (1, 'Alice', '2/1/60')")
        # And for an absent patient the failure is indistinguishable
        # at this label: it also raises (FK violation).
        with pytest.raises((ForeignKeyViolation, IFCViolation)):
            probe.execute(
                "INSERT INTO HIVRecords VALUES (2, 'Zoe', '1/1/99')")

    def test_authorized_insert_with_clause(self, medical, tables):
        """The clinic (compound authority) may vouch explicitly."""
        process = IFCProcess(medical.authority, medical.clinic.id)
        session = medical.db.connect(process)
        session.execute(
            "INSERT INTO HIVRecords VALUES (1, 'Alice', '2/1/60') "
            "DECLASSIFYING (alice_medical)")
        assert True


class TestSection43PCMembersView:
    """The PCMembers declassifying view, verbatim from section 4.3."""

    def test_view(self, authority, db):
        service = authority.create_principal("service")
        all_contacts = authority.create_compound_tag("all_contacts",
                                                     owner=service.id)
        admin = db.connect(IFCProcess(authority, service.id))
        admin.execute(
            "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY, "
            "firstName TEXT, lastName TEXT, isPC BOOLEAN)")
        db.create_function("IsPCMember",
                           lambda ctx, is_pc: bool(is_pc),
                           needs_context=True)
        user = authority.create_principal("cathy")
        tag = authority.create_tag("cathy-contact", owner=user.id,
                                   compounds=(all_contacts.id,),
                                   creator=service.id)
        process = IFCProcess(authority, user.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        session.execute(
            "INSERT INTO ContactInfo VALUES (1, 'Cathy', 'C', TRUE)")
        admin.execute(
            "CREATE VIEW PCMembers AS SELECT firstName, lastName "
            "FROM ContactInfo WHERE IsPCMember(isPC) "
            "WITH DECLASSIFYING (all_contacts)")
        public = db.connect()
        assert [list(r) for r in public.query("SELECT * FROM PCMembers")] \
            == [["Cathy", "C"]]


class TestSection63TrustedBase:
    """'she does not need to trust any of the processing that goes on in
    the middle' — untrusted code computing on secrets cannot leak."""

    def test_untrusted_computation_cannot_release(self, medical):
        process = IFCProcess(medical.authority, medical.clinic.id)
        session = medical.db.connect(process)
        process.add_secrecy(medical.all_medical.id)
        rows = session.query("SELECT condition FROM HIVPatients")
        assert len(rows) == 3          # reads everything...
        # ...but the process is contaminated and the clinic principal has
        # compound authority; drop to an unprivileged principal and the
        # data is stuck:
        nobody = medical.authority.create_principal("nobody")

        def leak_attempt():
            process.declassify(medical.all_medical.id)

        with pytest.raises(AuthorityError):
            process.with_reduced_authority(nobody.id, leak_attempt)
