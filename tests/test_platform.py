"""Platform tests (section 7.2): output interposition, the label-sync
protocol's lazy coalescing, and the authority cache."""

import pytest

from repro.core import IFCProcess, Label
from repro.db import Database
from repro.errors import AuthorityError, ReleaseError
from repro.platform import AuthorityCache, IFRuntime


@pytest.fixture
def world(authority, db):
    runtime = IFRuntime(authority)
    alice = authority.create_principal("alice")
    tag = authority.create_tag("alice_tag", owner=alice.id)
    return authority, db, runtime, alice, tag


class TestOutputInterposition:
    def test_clean_process_sends(self, world):
        _a, _db, runtime, alice, _tag = world
        process = runtime.spawn(alice.id)
        process.send("hello")
        assert runtime.outbox[-1][1] == "hello"

    def test_contaminated_process_blocked(self, world):
        _a, _db, runtime, alice, tag = world
        process = runtime.spawn(alice.id)
        process.add_secrecy(tag.id)
        with pytest.raises(ReleaseError):
            process.send("secret")
        assert not runtime.outbox
        assert not process.try_send("secret")

    def test_send_to_labelled_destination(self, world):
        _a, _db, runtime, alice, tag = world
        process = runtime.spawn(alice.id)
        process.add_secrecy(tag.id)
        process.send("for alice only", Label([tag.id]))

    def test_declassify_then_send(self, world):
        _a, _db, runtime, alice, tag = world
        process = runtime.spawn(alice.id)
        process.add_secrecy(tag.id)
        process.declassify(tag.id)      # owner, via cache
        process.send("ok")

    def test_cached_declassify_requires_authority(self, world):
        authority, _db, runtime, _alice, tag = world
        mallory = authority.create_principal("mallory")
        process = runtime.spawn(mallory.id)
        process.add_secrecy(tag.id)
        with pytest.raises(AuthorityError):
            process.declassify(tag.id)

    def test_anonymous_process_has_no_authority(self, world):
        _a, _db, runtime, _alice, tag = world
        process = runtime.spawn_anonymous()
        process.add_secrecy(tag.id)
        with pytest.raises(AuthorityError):
            process.declassify(tag.id)


class TestProtocolCoalescing:
    """Section 7.1: label changes are coalesced and sent lazily."""

    @pytest.fixture
    def connection(self, world):
        authority, db, runtime, alice, tag = world
        session = db.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        process = runtime.spawn(alice.id)
        return process, process.connect(db), tag

    def test_first_statement_syncs_once(self, connection):
        process, conn, _tag = connection
        conn.execute("SELECT * FROM t")
        assert conn.stats.label_updates_sent == 1
        assert conn.stats.statements_sent == 1

    def test_no_change_no_update(self, connection):
        process, conn, _tag = connection
        conn.execute("SELECT * FROM t")
        conn.execute("SELECT * FROM t")
        assert conn.stats.label_updates_sent == 1

    def test_many_changes_one_update(self, connection):
        """Multiple label flips between statements ride one message."""
        process, conn, tag = connection
        conn.execute("SELECT * FROM t")
        for _ in range(5):
            process.add_secrecy(tag.id)
            process.declassify(tag.id)
        conn.execute("SELECT * FROM t")
        assert conn.stats.label_updates_sent == 2
        assert conn.stats.label_changes_coalesced >= 9

    def test_query_by_label_through_connection(self, connection):
        process, conn, tag = connection
        process.add_secrecy(tag.id)
        conn.execute("INSERT INTO t VALUES (1)")
        process.declassify(tag.id)
        assert conn.query("SELECT * FROM t") == []      # hidden again


class TestAuthorityCache:
    def test_hits_after_first_lookup(self, world):
        authority, _db, _runtime, alice, tag = world
        cache = AuthorityCache(authority)
        assert cache.has_authority(alice.id, tag.id)
        assert cache.has_authority(alice.id, tag.id)
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidated_by_authority_changes(self, world):
        authority, _db, _runtime, alice, tag = world
        bob = authority.create_principal("bob")
        cache = AuthorityCache(authority)
        assert not cache.has_authority(bob.id, tag.id)
        authority.delegate(tag.id, alice.id, bob.id)
        assert cache.has_authority(bob.id, tag.id)      # sees the change
        assert cache.invalidations == 1

    def test_revocation_visible_through_cache(self, world):
        authority, _db, _runtime, alice, tag = world
        bob = authority.create_principal("bob")
        authority.delegate(tag.id, alice.id, bob.id)
        cache = AuthorityCache(authority)
        assert cache.has_authority(bob.id, tag.id)
        authority.revoke(tag.id, alice.id, bob.id)
        assert not cache.has_authority(bob.id, tag.id)

    def test_disabled_cache_always_misses(self, world):
        authority, _db, _runtime, alice, tag = world
        cache = AuthorityCache(authority, enabled=False)
        cache.has_authority(alice.id, tag.id)
        cache.has_authority(alice.id, tag.id)
        assert cache.hits == 0 and cache.misses == 2
