"""Tag registry and compound-tag tests (section 3.1)."""

import pytest

from repro.core.tags import SECRECY, Tag, TagRegistry
from repro.errors import UnknownTagError


def make_tag(tag_id, name, *, compound=False, compounds=()):
    return Tag(id=tag_id, name=name, owner=1, is_compound=compound,
               compounds=frozenset(compounds))


@pytest.fixture
def registry():
    reg = TagRegistry()
    reg.add(make_tag(100, "all_drives", compound=True))
    reg.add(make_tag(1, "alice_drives", compounds=(100,)))
    reg.add(make_tag(2, "bob_drives", compounds=(100,)))
    reg.add(make_tag(3, "loose_tag"))
    return reg


class TestTagRegistry:
    def test_lookup_by_name_and_id(self, registry):
        assert registry.get(1).name == "alice_drives"
        assert registry.lookup("bob_drives").id == 2

    def test_unknown_tag_raises(self, registry):
        with pytest.raises(UnknownTagError):
            registry.get(999)
        with pytest.raises(UnknownTagError):
            registry.lookup("nope")

    def test_duplicate_id_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add(make_tag(1, "other"))

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add(make_tag(50, "alice_drives"))

    def test_membership_in_non_compound_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add(make_tag(51, "bad", compounds=(3,)))

    def test_names_sorted(self, registry):
        assert registry.names([2, 1]) == ("alice_drives", "bob_drives")


class TestCompoundExpansion:
    def test_members_of(self, registry):
        assert registry.members_of(100) == {1, 2}
        assert registry.members_of(1) == frozenset()

    def test_compounds_of(self, registry):
        assert registry.compounds_of(1) == {100}
        assert registry.compounds_of(3) == frozenset()

    def test_expand_includes_members(self, registry):
        assert registry.expand({100}) == {100, 1, 2}
        assert registry.expand({3}) == {3}
        assert registry.expand({100, 3}) == {100, 1, 2, 3}

    def test_nested_compounds(self, registry):
        registry.add(make_tag(200, "everything", compound=True))
        registry.add(make_tag(101, "all_locations", compound=True,
                              compounds=(200,)))
        registry.add(make_tag(10, "alice_location", compounds=(101,)))
        # expansion is transitive through nested compounds
        assert 10 in registry.expand({200})
        assert registry.compounds_of(10) == {101, 200}

    def test_member_added_after_nesting_propagates_up(self, registry):
        registry.add(make_tag(200, "everything", compound=True))
        registry.add(make_tag(101, "sub", compound=True, compounds=(200,)))
        registry.add(make_tag(11, "leaf", compounds=(101,)))
        assert 11 in registry.expand({200})

    def test_compound_and_member_kinds_must_match(self, registry):
        from repro.core.tags import INTEGRITY
        reg = TagRegistry()
        reg.add(Tag(id=1, name="c", owner=1, is_compound=True, kind=SECRECY))
        with pytest.raises(ValueError):
            reg.add(Tag(id=2, name="i", owner=1, kind=INTEGRITY,
                        compounds=frozenset((1,))))
