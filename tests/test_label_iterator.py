"""The per-tuple label iterator (paper section 10's future-work feature).

"A special iterator where each tuple selected by a query is handled in
its own context with that tuple's label."
"""

import pytest

from repro.core import IFCProcess, Label
from repro.errors import IFCViolation


@pytest.fixture
def world(authority, db):
    service = authority.create_principal("service")
    compound = authority.create_compound_tag("all_data", owner=service.id)
    users = []
    admin = db.connect(IFCProcess(authority, service.id))
    admin.execute("CREATE TABLE Raw (uid INT PRIMARY KEY, v INT)")
    admin.execute("CREATE TABLE Summaries (uid INT PRIMARY KEY, total INT)")
    for uid in (1, 2, 3):
        principal = authority.create_principal("user%d" % uid)
        tag = authority.create_tag("u%d-data" % uid, owner=principal.id,
                                   compounds=(compound.id,),
                                   creator=service.id)
        process = IFCProcess(authority, principal.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO Raw VALUES (?, ?)", (uid, uid * 10))
        users.append((principal, tag))
    return authority, db, service, compound, users


class TestPerTupleIterator:
    def test_writes_carry_each_tuples_label(self, world):
        authority, db, service, compound, users = world
        process = IFCProcess(authority, service.id)
        session = db.connect(process)

        def summarize(row, scoped_session):
            scoped_session.insert("Summaries", uid=row["uid"],
                                  total=row["v"] * 2)
            return row["uid"]

        handled = session.for_each_with_label(
            "SELECT uid, v FROM Raw", summarize,
            cover_tags=(compound.id,))
        assert sorted(handled) == [1, 2, 3]

        # Each summary tuple carries exactly its source tuple's label.
        table = db.catalog.get_table("Summaries")
        labels = {v.values[0]: v.label for v in table.all_versions()}
        for index, (principal, tag) in enumerate(users, start=1):
            assert labels[index] == Label([tag.id])

    def test_caller_is_not_contaminated(self, world):
        authority, db, service, compound, users = world
        process = IFCProcess(authority, service.id)
        session = db.connect(process)
        session.for_each_with_label("SELECT uid, v FROM Raw",
                                    lambda row, s: None,
                                    cover_tags=(compound.id,))
        assert process.label == Label()

    def test_per_user_summaries_visible_only_to_owner(self, world):
        authority, db, service, compound, users = world
        service_session = db.connect(IFCProcess(authority, service.id))
        service_session.for_each_with_label(
            "SELECT uid, v FROM Raw",
            lambda row, s: s.insert("Summaries", uid=row["uid"],
                                    total=row["v"]),
            cover_tags=(compound.id,))
        principal, tag = users[0]
        owner = IFCProcess(authority, principal.id)
        owner.add_secrecy(tag.id)
        owner_session = db.connect(owner)
        rows = owner_session.query("SELECT uid FROM Summaries")
        assert [r[0] for r in rows] == [1]       # only their own

    def test_without_cover_tags_sees_only_own_level(self, world):
        authority, db, _service, _compound, users = world
        principal, tag = users[0]
        process = IFCProcess(authority, principal.id)
        process.add_secrecy(tag.id)
        session = db.connect(process)
        rows = session.for_each_with_label("SELECT uid FROM Raw",
                                           lambda row, s: row["uid"])
        assert rows == [1]
