"""Shared fixtures: a seeded authority state, databases, and a small
medical-records scenario modelled on the paper's Figure 2."""

from __future__ import annotations

import pytest

from repro.core import AuthorityState, IFCProcess, Label, SeededIdGenerator
from repro.db import Database, metrics


@pytest.fixture(autouse=True)
def _reset_metrics():
    """Process-wide counters are shared by every Database in the process;
    start each test from zero so exact-count pins cannot bleed across
    tests (and leave a clean slate behind for the next one)."""
    metrics.REGISTRY.reset()
    yield
    metrics.REGISTRY.reset()


@pytest.fixture
def metrics_scope():
    """Factory for per-block counter deltas:

        with metrics_scope() as scope:
            session.execute(...)
        assert scope["labels"]["covers_calls"] == 2
    """
    return metrics.REGISTRY.scope


@pytest.fixture
def authority():
    return AuthorityState(idgen=SeededIdGenerator(12345))


@pytest.fixture
def db(authority):
    return Database(authority, seed=12345)


@pytest.fixture
def baseline_db(authority):
    return Database(authority, ifc_enabled=False, seed=12345)


class MedicalScenario:
    """Principals/tags/table from the paper's running medical example."""

    def __init__(self, authority, db):
        self.authority = authority
        self.db = db
        self.alice = authority.create_principal("alice")
        self.bob = authority.create_principal("bob")
        self.cathy = authority.create_principal("cathy")
        self.clinic = authority.create_principal("clinic")
        self.all_medical = authority.create_compound_tag(
            "all_medical", owner=self.clinic.id)
        self.alice_medical = authority.create_tag(
            "alice_medical", owner=self.alice.id,
            compounds=(self.all_medical.id,), creator=self.clinic.id)
        self.bob_medical = authority.create_tag(
            "bob_medical", owner=self.bob.id,
            compounds=(self.all_medical.id,), creator=self.clinic.id)
        self.cathy_medical = authority.create_tag(
            "cathy_medical", owner=self.cathy.id,
            compounds=(self.all_medical.id,), creator=self.clinic.id)
        admin = db.connect(IFCProcess(authority, self.clinic.id))
        admin.execute(
            "CREATE TABLE HIVPatients ("
            " patient_name TEXT, patient_dob TEXT, condition TEXT,"
            " PRIMARY KEY (patient_name, patient_dob))")

    def process_for(self, principal, *tags) -> IFCProcess:
        process = IFCProcess(self.authority, principal.id)
        for tag in tags:
            process.add_secrecy(tag.id)
        return process

    def populate_figure2(self):
        """The three rows of Figure 2, each under its patient's tag."""
        rows = [
            (self.alice, self.alice_medical, ("Alice", "2/1/60")),
            (self.bob, self.bob_medical, ("Bob", "6/26/78")),
            (self.cathy, self.cathy_medical, ("Cathy", "4/22/71")),
        ]
        for principal, tag, (name, dob) in rows:
            process = self.process_for(principal, tag)
            session = self.db.connect(process)
            session.execute(
                "INSERT INTO HIVPatients VALUES (?, ?, 'hiv')", (name, dob))


@pytest.fixture
def medical(authority, db):
    scenario = MedicalScenario(authority, db)
    scenario.populate_figure2()
    return scenario
