"""IFC process tests: explicit label changes, closures, release gate
(sections 3.2-3.3)."""

import pytest

from repro.core import EMPTY_LABEL, IFCProcess, Label
from repro.core.tags import INTEGRITY
from repro.errors import AuthorityError, IFCViolation


@pytest.fixture
def world(authority):
    alice = authority.create_principal("alice")
    bob = authority.create_principal("bob")
    tag_a = authority.create_tag("a", owner=alice.id)
    tag_b = authority.create_tag("b", owner=bob.id)
    return authority, alice, bob, tag_a, tag_b


class TestLabelChanges:
    def test_add_secrecy_is_unrestricted(self, world):
        authority, alice, _bob, tag_a, tag_b = world
        process = IFCProcess(authority, alice.id)
        process.add_secrecy(tag_b.id)        # anyone may contaminate itself
        assert tag_b.id in process.label

    def test_declassify_requires_authority(self, world):
        authority, alice, _bob, tag_a, tag_b = world
        process = IFCProcess(authority, alice.id)
        process.add_secrecy(tag_a.id)
        process.add_secrecy(tag_b.id)
        process.declassify(tag_a.id)          # owner
        assert process.label == Label([tag_b.id])
        with pytest.raises(AuthorityError):
            process.declassify(tag_b.id)      # not bob

    def test_declassify_compound_strips_members(self, authority):
        service = authority.create_principal("svc")
        user = authority.create_principal("u")
        compound = authority.create_compound_tag("all", owner=service.id)
        member = authority.create_tag("m", owner=user.id,
                                      compounds=(compound.id,),
                                      creator=service.id)
        process = IFCProcess(authority, service.id)
        process.add_secrecy(member.id)
        process.add_secrecy(compound.id)
        process.declassify(compound.id)
        assert process.label == EMPTY_LABEL

    def test_set_label_combines_rules(self, world):
        authority, alice, _bob, tag_a, tag_b = world
        process = IFCProcess(authority, alice.id)
        process.set_label(Label([tag_a.id]))
        assert process.label == Label([tag_a.id])
        process.set_label(EMPTY_LABEL)        # declassify own tag: fine
        process.add_secrecy(tag_b.id)
        with pytest.raises(AuthorityError):
            process.set_label(EMPTY_LABEL)    # can't drop bob's tag

    def test_label_epoch_moves_on_changes(self, world):
        authority, alice, _bob, tag_a, _tag_b = world
        process = IFCProcess(authority, alice.id)
        epoch = process.label_epoch
        process.add_secrecy(tag_a.id)
        assert process.label_epoch > epoch
        again = process.label_epoch
        process.add_secrecy(tag_a.id)          # no-op, no bump
        assert process.label_epoch == again


class TestReleaseGate:
    def test_clean_process_can_release(self, world):
        authority, alice, *_ = world
        process = IFCProcess(authority, alice.id)
        assert process.can_release()
        process.check_release()

    def test_contaminated_process_cannot_release(self, world):
        authority, alice, _bob, tag_a, _ = world
        process = IFCProcess(authority, alice.id)
        process.add_secrecy(tag_a.id)
        assert not process.can_release()
        with pytest.raises(IFCViolation):
            process.check_release()

    def test_release_to_higher_destination(self, world):
        authority, alice, _bob, tag_a, _ = world
        process = IFCProcess(authority, alice.id)
        process.add_secrecy(tag_a.id)
        assert process.can_release(Label([tag_a.id]))


class TestAuthorityScoping:
    def test_reduced_authority_call(self, world):
        authority, alice, bob, tag_a, tag_b = world
        process = IFCProcess(authority, alice.id)

        def attempt():
            process.add_secrecy(tag_b.id)
            process.declassify(tag_b.id)

        # Run with bob's authority: declassifying bob's tag works inside.
        process.with_reduced_authority(bob.id, attempt)
        assert process.label == EMPTY_LABEL
        assert process.principal == alice.id     # restored

    def test_reduced_authority_restored_on_exception(self, world):
        authority, alice, bob, *_ = world
        process = IFCProcess(authority, alice.id)
        with pytest.raises(RuntimeError):
            process.with_reduced_authority(bob.id,
                                           lambda: (_ for _ in ()).throw(
                                               RuntimeError()))
        assert process.principal == alice.id

    def test_closure_runs_with_bound_authority(self, world):
        authority, alice, bob, tag_a, tag_b = world
        process_bob = IFCProcess(authority, bob.id)
        closure = process_bob.make_closure(
            "drop-b", lambda p: p.declassify(tag_b.id), principal=bob.id)
        process_alice = IFCProcess(authority, alice.id)
        process_alice.add_secrecy(tag_b.id)
        process_alice.call_closure(closure, process_alice)
        assert process_alice.label == EMPTY_LABEL

    def test_fresh_closure_principal_gets_exact_grants(self, world):
        authority, alice, _bob, tag_a, _tag_b = world
        process = IFCProcess(authority, alice.id)
        closure = process.make_closure("c", lambda: None,
                                       grant_tags=(tag_a.id,))
        assert authority.has_authority(closure.principal, tag_a.id)

    def test_closure_grants_need_creator_authority(self, world):
        authority, alice, _bob, _tag_a, tag_b = world
        process = IFCProcess(authority, alice.id)
        with pytest.raises(AuthorityError):
            process.make_closure("c", lambda: None, grant_tags=(tag_b.id,))


class TestIntegrityLabels:
    def test_endorse_requires_authority(self, authority):
        alice = authority.create_principal("alice")
        bob = authority.create_principal("bob")
        itag = authority.create_tag("verified", owner=alice.id,
                                    kind=INTEGRITY)
        process = IFCProcess(authority, bob.id)
        with pytest.raises(AuthorityError):
            process.endorse(itag.id)
        owner = IFCProcess(authority, alice.id)
        owner.endorse(itag.id)
        assert itag.id in owner.integrity_label

    def test_drop_integrity_is_unrestricted(self, authority):
        alice = authority.create_principal("alice")
        itag = authority.create_tag("verified", owner=alice.id,
                                    kind=INTEGRITY)
        process = IFCProcess(authority, alice.id)
        process.endorse(itag.id)
        process.drop_integrity(itag.id)
        assert len(process.integrity_label) == 0

    def test_secrecy_tag_cannot_be_endorsed(self, authority):
        alice = authority.create_principal("alice")
        stag = authority.create_tag("secret", owner=alice.id)
        process = IFCProcess(authority, alice.id)
        with pytest.raises(IFCViolation):
            process.endorse(stag.id)

    def test_integrity_tag_cannot_contaminate(self, authority):
        alice = authority.create_principal("alice")
        itag = authority.create_tag("verified", owner=alice.id,
                                    kind=INTEGRITY)
        process = IFCProcess(authority, alice.id)
        with pytest.raises(IFCViolation):
            process.add_secrecy(itag.id)
