"""Transactions (section 5.1): snapshot isolation, commit labels, the
clearance rule, and the paper's covert-channel transaction."""

import pytest

from repro.core import IFCProcess, Label
from repro.db import SERIALIZABLE
from repro.errors import (
    ClearanceError,
    IFCViolation,
    SerializationError,
    TransactionError,
)


@pytest.fixture
def plain(db):
    session = db.connect()
    session.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
    session.execute("INSERT INTO t VALUES (1, 10)")
    return session


class TestSnapshotIsolation:
    def test_uncommitted_writes_invisible_to_others(self, db, plain):
        other = db.connect()
        plain.execute("BEGIN")
        plain.execute("INSERT INTO t VALUES (2, 20)")
        assert other.execute("SELECT COUNT(*) FROM t").scalar() == 1
        plain.execute("COMMIT")
        assert other.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_snapshot_fixed_at_begin(self, db, plain):
        reader = db.connect()
        reader.execute("BEGIN")
        reader.execute("SELECT COUNT(*) FROM t")
        plain.execute("INSERT INTO t VALUES (2, 20)")
        # Reader's snapshot predates the insert.
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 1
        reader.execute("COMMIT")
        assert reader.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_own_writes_visible(self, plain):
        plain.execute("BEGIN")
        plain.execute("INSERT INTO t VALUES (2, 20)")
        assert plain.execute("SELECT COUNT(*) FROM t").scalar() == 2
        plain.execute("ROLLBACK")

    def test_rollback_discards(self, plain):
        plain.execute("BEGIN")
        plain.execute("UPDATE t SET b = 99 WHERE a = 1")
        plain.execute("ROLLBACK")
        assert plain.execute(
            "SELECT b FROM t WHERE a = 1").scalar() == 10

    def test_first_committer_wins(self, db, plain):
        t1 = db.connect()
        t2 = db.connect()
        t1.execute("BEGIN")
        t2.execute("BEGIN")
        t1.execute("UPDATE t SET b = 1 WHERE a = 1")
        with pytest.raises(SerializationError):
            t2.execute("UPDATE t SET b = 2 WHERE a = 1")
        t2.rollback()
        t1.execute("COMMIT")
        assert plain.execute("SELECT b FROM t WHERE a = 1").scalar() == 1

    def test_conflict_with_committed_after_snapshot(self, db, plain):
        t1 = db.connect()
        t2 = db.connect()
        t2.execute("BEGIN")
        t2.execute("SELECT * FROM t")
        t1.execute("UPDATE t SET b = 1 WHERE a = 1")        # autocommits
        with pytest.raises(SerializationError):
            t2.execute("UPDATE t SET b = 2 WHERE a = 1")

    def test_transaction_state_machine(self, plain):
        with pytest.raises(TransactionError):
            plain.commit()
        plain.execute("BEGIN")
        with pytest.raises(TransactionError):
            plain.begin()
        plain.rollback()

    def test_atomic_context_manager(self, db, plain):
        with pytest.raises(RuntimeError):
            with plain.atomic():
                plain.execute("INSERT INTO t VALUES (5, 50)")
                raise RuntimeError("boom")
        assert plain.execute(
            "SELECT COUNT(*) FROM t WHERE a = 5").scalar() == 0


class TestCommitLabels:
    def test_paper_covert_channel_transaction_blocked(self, medical):
        """The section 5.1 attack: write low, read high, commit-or-abort.

        IFDB must refuse the commit because the commit label exceeds the
        label of the previously written (empty-labelled) tuple."""
        db = medical.db
        clinic = db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        clinic.execute("CREATE TABLE Foo (msg TEXT PRIMARY KEY)")

        process = IFCProcess(medical.authority, medical.clinic.id)
        session = db.connect(process)
        session.execute("BEGIN")
        session.execute("INSERT INTO Foo VALUES ('Alice has HIV')")
        process.add_secrecy(medical.alice_medical.id)       # raise label
        rows = session.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'")
        assert len(rows) == 1                                # she does
        with pytest.raises(IFCViolation):
            session.commit()                                 # blocked!
        # Nothing leaked: the write never became visible.
        assert clinic.execute("SELECT COUNT(*) FROM Foo").scalar() == 0

    def test_commit_after_declassify_succeeds(self, medical):
        db = medical.db
        process = IFCProcess(medical.authority, medical.alice.id)
        session = db.connect(process)
        session.execute("BEGIN")
        process.add_secrecy(medical.alice_medical.id)
        session.execute(
            "INSERT INTO HIVPatients VALUES ('A2', '1/1/01', 'hiv')")
        process.declassify(medical.alice_medical.id)         # has authority
        session.commit()                                     # {} ⊆ {alice}

    def test_multi_label_transaction(self, medical):
        """Labels can change mid-transaction to write differently
        labelled tuples (the section 5.1 motivation)."""
        process = IFCProcess(medical.authority, medical.clinic.id)
        session = medical.db.connect(process)
        session.execute("BEGIN")
        process.add_secrecy(medical.alice_medical.id)
        session.execute(
            "INSERT INTO HIVPatients VALUES ('A3', '1/1/03', 'x')")
        process.declassify(medical.alice_medical.id)   # clinic: compound
        process.add_secrecy(medical.bob_medical.id)
        session.execute(
            "INSERT INTO HIVPatients VALUES ('B3', '1/1/03', 'x')")
        process.declassify(medical.bob_medical.id)
        session.commit()

    def test_delete_in_write_set(self, medical):
        """Deletes are writes for the commit-label rule."""
        process = IFCProcess(medical.authority, medical.clinic.id)
        session = medical.db.connect(process)
        session.execute("BEGIN")
        process.add_secrecy(medical.alice_medical.id)
        session.execute("DELETE FROM HIVPatients WHERE patient_name='Alice'")
        process.add_secrecy(medical.bob_medical.id)   # raise above write
        with pytest.raises(IFCViolation):
            session.commit()


class TestClearanceRule:
    def test_serializable_requires_authority_to_raise_label(self, medical):
        """Section 5.1: under serializability, adding a tag requires
        authority for it (conflicts leak transaction fate)."""
        process = IFCProcess(medical.authority, medical.bob.id)
        session = medical.db.connect(process)
        session.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        with pytest.raises(ClearanceError):
            process.add_secrecy(medical.alice_medical.id)   # not bob's
        process.add_secrecy(medical.bob_medical.id)          # his own: fine
        session.rollback()

    def test_snapshot_isolation_exempt(self, medical):
        """The prototype's snapshot isolation doesn't need the rule."""
        process = IFCProcess(medical.authority, medical.bob.id)
        session = medical.db.connect(process)
        session.execute("BEGIN")
        process.add_secrecy(medical.alice_medical.id)        # allowed
        session.rollback()

    def test_no_transaction_exempt(self, medical):
        process = IFCProcess(medical.authority, medical.bob.id)
        medical.db.connect(process)          # attach a session
        process.add_secrecy(medical.alice_medical.id)        # allowed
