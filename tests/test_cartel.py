"""End-to-end CarTel tests (section 6.1): tag scheme, ingest pipeline,
portal behaviour, and the attacks IFDB neutralizes."""

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.platform import IFRuntime, Request
from repro.apps.cartel import (
    CarTelApp,
    SensorProcessor,
    TraceGenerator,
    build_portal,
    drives_tag_name,
    install_driveupdate_trigger,
    location_tag_name,
)


@pytest.fixture
def cartel():
    authority = AuthorityState(idgen=SeededIdGenerator(77))
    db = Database(authority, seed=77)
    runtime = IFRuntime(authority)
    app = CarTelApp(db, runtime)
    install_driveupdate_trigger(app)
    web = build_portal(app)
    alice = app.signup("alice", "pwa")
    bob = app.signup("bob", "pwb")
    car_a = app.add_car(alice)
    car_b = app.add_car(bob)
    app.befriend(alice, bob)       # alice shares her drives with bob
    generator = TraceGenerator([car_a, car_b], seed=5)
    SensorProcessor(app).process_measurements(generator.measurements(100))
    return app, web, db, alice, bob, car_a, car_b


class TestIngestPipeline:
    def test_locations_labelled_per_user(self, cartel):
        app, _web, db, alice, _bob, car_a, _car_b = cartel
        table = db.catalog.get_table("Locations")
        expected = app.user_labels(alice)
        labels = {v.label for v in table.all_versions()
                  if v.values[1] == car_a}
        assert labels == {expected}

    def test_drives_derived_with_drives_tag_only(self, cartel):
        app, _web, db, alice, _bob, car_a, _car_b = cartel
        registry = app.authority.tags
        drives_tag = registry.lookup(drives_tag_name(alice)).id
        location_tag = registry.lookup(location_tag_name(alice)).id
        table = db.catalog.get_table("Drives")
        for version in table.all_versions():
            if version.values[1] != car_a:
                continue
            assert drives_tag in version.label
            assert location_tag not in version.label

    def test_ingest_process_ends_clean(self, cartel):
        app, *_ = cartel
        processor = SensorProcessor(app)
        car = next(iter(processor._owner_of.__self__.app.accounts)) \
            if False else None
        assert len(processor.process.label) == 0

    def test_drive_segmentation(self, cartel):
        """Multiple drives appear when traces have parking gaps."""
        _app, _web, db, _alice, _bob, car_a, _car_b = cartel
        probe = db.connect(_probe(cartel))
        count = probe.execute(
            "SELECT COUNT(*) FROM Drives WHERE carid = ?",
            (car_a,)).scalar()
        assert count >= 2


def _probe(cartel):
    app = cartel[0]
    process = IFCProcess(app.authority, app.ingestd.id)
    process.add_secrecy(app.all_drives.id)
    process.add_secrecy(app.all_locations.id)
    return process


class TestPortal:
    def test_owner_sees_own_locations(self, cartel):
        _app, web, *_ = cartel
        token = web.login("alice", "pwa")
        response = web.handle(Request("/get_cars.php", session_token=token))
        assert response.status == 200
        assert len(response.body["cars"]) == 1

    def test_friend_sees_shared_drives(self, cartel):
        app, web, _db, alice, bob, *_ = cartel
        token = web.login("bob", "pwb")
        response = web.handle(Request("/drives.php", session_token=token))
        assert response.status == 200
        users = {d["user"] for d in response.body["drives"]}
        assert users == {alice, bob}

    def test_nonfriend_coerced_url_blocked(self, cartel):
        """Section 6.1's URL-manipulation attack: contaminated with a tag
        it cannot declassify, the script produces no output."""
        _app, web, *_ = cartel
        token = web.login("alice", "pwa")     # bob did NOT share with alice
        response = web.handle(Request("/drives.php",
                                      params={"user": "bob"},
                                      session_token=token))
        assert response.status == 403
        assert response.body is None

    def test_friend_cannot_see_current_location(self, cartel):
        """Only the owner can see the current location (alice-location
        was never delegated)."""
        app, web, db, alice, bob, *_ = cartel
        process = app.runtime.spawn(app.accounts["bob"][1])
        registry = app.authority.tags
        location_tag = registry.lookup(location_tag_name(alice))
        process.add_secrecy(registry.lookup(drives_tag_name(alice)).id)
        process.add_secrecy(location_tag.id)
        session = process.connect(db)
        rows = session.query("SELECT * FROM LocationsLatest")
        assert rows                           # reading is fine, but...
        assert not process.can_release()      # ...bob can't release it
        from repro.errors import AuthorityError
        with pytest.raises(AuthorityError):
            process.declassify(location_tag.id)

    def test_unauthenticated_script_has_no_authority(self, cartel):
        """The twelve unauthenticated CarTel scripts: under IFDB they run
        with no authority and can't release anything sensitive."""
        _app, web, *_ = cartel
        response = web.handle(Request("/get_cars.php"))
        assert response.status == 401

    def test_traffic_stats_closure_aggregates_all_users(self, cartel):
        app, web, *_ = cartel
        token = web.login("alice", "pwa")
        response = web.handle(Request("/drives_top.php",
                                      session_token=token))
        assert response.status == 200
        stats = response.body["stats"]
        assert stats["drivers"] == 2          # aggregate over everyone
        assert stats["drives"] >= 2

    def test_friends_page_delegation(self, cartel):
        app, web, db, alice, bob, *_ = cartel
        token = web.login("bob", "pwb")
        response = web.handle(Request("/friends.php",
                                      params={"add": "alice"},
                                      session_token=token))
        assert response.status == 200
        assert alice in response.body["friends"]
        # Now alice can see bob's drives too.
        token_a = web.login("alice", "pwa")
        response = web.handle(Request("/drives.php",
                                      params={"user": "bob"},
                                      session_token=token_a))
        assert response.status == 200

    def test_edit_account(self, cartel):
        _app, web, *_ = cartel
        token = web.login("alice", "pwa")
        response = web.handle(Request(
            "/edit_account.php",
            params={"fullname": "Alice Q.", "email": "a@x.org"},
            session_token=token))
        assert response.status == 200
        assert response.body["account"]["fullname"] == "Alice Q."

    def test_bad_login(self, cartel):
        _app, web, *_ = cartel
        from repro.errors import AuthenticationError
        with pytest.raises(AuthenticationError):
            web.login("alice", "wrong")
