"""Query by Label (section 4.2): confinement, write rule, exact labels.

Several tests replay the paper's Figure 2 medical-records scenarios
verbatim.
"""

import pytest

from repro.core import IFCProcess, Label
from repro.errors import IFCViolation


class TestLabelConfinement:
    def test_bob_sees_only_bob(self, medical):
        process = medical.process_for(medical.bob, medical.bob_medical)
        session = medical.db.connect(process)
        rows = session.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Bob' "
            "AND patient_dob = '6/26/78'")
        assert len(rows) == 1
        assert rows[0][0] == "Bob"

    def test_empty_label_sees_nothing(self, medical):
        process = medical.process_for(medical.bob)
        session = medical.db.connect(process)
        assert session.query("SELECT * FROM HIVPatients") == []

    def test_wrong_label_sees_nothing(self, medical):
        # A process with {john_medical}-style wrong contamination gets no
        # tuples (the paper's exact example).
        john = medical.authority.create_principal("john")
        john_tag = medical.authority.create_tag("john_medical",
                                                owner=john.id)
        process = medical.process_for(john, john_tag)
        session = medical.db.connect(process)
        rows = session.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Bob'")
        assert rows == []

    def test_compound_label_sees_all(self, medical):
        process = IFCProcess(medical.authority, medical.clinic.id)
        process.add_secrecy(medical.all_medical.id)
        session = medical.db.connect(process)
        assert len(session.query("SELECT * FROM HIVPatients")) == 3

    def test_negative_query_does_not_reveal_hidden_rows(self, medical):
        """The paper's motivating example: 'patients who do not have
        cancer' must not implicitly reveal hidden patients."""
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        rows = session.query(
            "SELECT * FROM HIVPatients WHERE condition <> 'cancer'")
        # Only Alice's row participates at all.
        assert [r[0] for r in rows] == ["Alice"]

    def test_aggregates_confined(self, medical):
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        assert session.execute(
            "SELECT COUNT(*) FROM HIVPatients").scalar() == 1


class TestWriteRule:
    def test_insert_carries_exactly_process_label(self, medical):
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        session.execute(
            "INSERT INTO HIVPatients VALUES ('Alice2', '1/1/90', 'hiv')")
        row = session.execute(
            "SELECT _label FROM HIVPatients WHERE patient_name = 'Alice2'"
        ).first()
        assert row[0] == Label([medical.alice_medical.id])

    def test_update_of_same_label_tuple_ok(self, medical):
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        count = session.execute(
            "UPDATE HIVPatients SET condition = 'in remission' "
            "WHERE patient_name = 'Alice'").rowcount
        assert count == 1

    def test_update_of_lower_labeled_tuple_fails(self, medical):
        """Visible but lower-labelled tuples make the UPDATE fail
        (section 4.2)."""
        public = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        public.execute(
            "INSERT INTO HIVPatients VALUES ('Pub', '1/1/00', 'none')")
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        with pytest.raises(IFCViolation):
            session.execute(
                "UPDATE HIVPatients SET condition = 'x' "
                "WHERE patient_name = 'Pub'")

    def test_update_ignores_invisible_tuples(self, medical):
        """Higher-labelled tuples are invisible and unaffected."""
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        count = session.execute(
            "UPDATE HIVPatients SET condition = 'x' "
            "WHERE patient_name = 'Bob'").rowcount
        assert count == 0
        bob = medical.db.connect(
            medical.process_for(medical.bob, medical.bob_medical))
        assert bob.execute(
            "SELECT condition FROM HIVPatients WHERE patient_name = 'Bob'"
        ).scalar() == "hiv"

    def test_delete_of_lower_labeled_tuple_fails(self, medical):
        public = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        public.execute(
            "INSERT INTO HIVPatients VALUES ('Pub', '1/1/00', 'none')")
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        with pytest.raises(IFCViolation):
            session.execute(
                "DELETE FROM HIVPatients WHERE patient_name = 'Pub'")

    def test_delete_own_label_ok(self, medical):
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        assert session.execute(
            "DELETE FROM HIVPatients WHERE patient_name = 'Alice'"
        ).rowcount == 1


class TestLabelColumn:
    def test_label_column_selectable(self, medical):
        process = medical.process_for(medical.bob, medical.bob_medical)
        session = medical.db.connect(process)
        row = session.execute(
            "SELECT patient_name, _label FROM HIVPatients").first()
        assert row[1] == Label([medical.bob_medical.id])

    def test_exact_label_query(self, medical):
        """Section 4.2 / 5.2.1: an exact-label condition filters out
        polyinstantiated garbage."""
        clinic = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        clinic.execute(
            "INSERT INTO HIVPatients VALUES ('Bob', '6/26/78', 'fake')")
        process = medical.process_for(medical.bob, medical.bob_medical)
        session = medical.db.connect(process)
        all_bobs = session.query(
            "SELECT condition FROM HIVPatients WHERE patient_name = 'Bob'")
        assert len(all_bobs) == 2          # real + polyinstantiated fake
        genuine = session.query(
            "SELECT condition FROM HIVPatients WHERE patient_name = 'Bob' "
            "AND LABEL_CONTAINS(_label, 'bob_medical')")
        assert [r[0] for r in genuine] == ["hiv"]

    def test_label_functions(self, medical):
        process = medical.process_for(medical.bob, medical.bob_medical)
        session = medical.db.connect(process)
        row = session.execute(
            "SELECT LABEL_SIZE(_label), "
            "LABEL_SUBSET(_label, LABEL('bob_medical')), "
            "LABEL_SUBSET(LABEL('alice_medical'), _label) "
            "FROM HIVPatients").first()
        assert list(row) == [1, True, False]


class TestBaselineMode:
    def test_ifc_disabled_sees_everything(self, authority, baseline_db):
        clinic = authority.create_principal("c2")
        session = baseline_db.connect(IFCProcess(authority, clinic.id))
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        other = baseline_db.connect()
        assert len(other.query("SELECT * FROM t")) == 1

    def test_labels_not_stored_in_baseline(self, authority, baseline_db):
        session = baseline_db.connect()
        session.execute("CREATE TABLE t (x INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        table = baseline_db.catalog.get_table("t")
        version = next(table.all_versions())
        assert len(version.label) == 0
