"""Durability: WAL logging, group commit, fault injection, recovery.

The centrepiece is the crash matrix: a seeded workload (DML with
labels, DDL, sequences, an abort) runs against a WAL-backed database
while ``db/faultinject.py`` kills the "process" at *every* write
boundary, inside every record (torn and short writes), and at every
fsync.  After each simulated crash a fresh database recovers from the
log and must be dump-identical — rows, labels, ilabels, sequences,
schema — to a reference database that applied exactly the acknowledged
prefix of the workload.  Recovery must also be idempotent (recovering
twice changes nothing).

The same driver backs the CI sweep: ``REPRO_CRASH_POINT=<mode>:<n>``
runs one externally-chosen coordinate (``test_env_crash_point_sweep``),
and on failure the offending WAL file is copied into
``$REPRO_WAL_ARTIFACTS`` for upload.
"""

from __future__ import annotations

import os
import shutil
import threading

import pytest

from repro.core import IFCProcess
from repro.db import Database
from repro.db.dump import dump_database
from repro.db.faultinject import (
    CRASH_MODES,
    ENV_VAR,
    CrashError,
    FaultSpec,
)
from repro.db.wal import WalError, WriteAheadLog, scan_wal


@pytest.fixture(autouse=True)
def _ambient_crash_point(monkeypatch):
    """Capture and clear any externally-set ``REPRO_CRASH_POINT`` so the
    in-process matrix controls its own fault specs; the env-sweep test
    re-reads the captured value to honour the CI coordinate."""
    ambient = os.environ.get(ENV_VAR)
    monkeypatch.delenv(ENV_VAR, raising=False)
    return ambient


# ---------------------------------------------------------------------------
# the seeded workload
# ---------------------------------------------------------------------------
# Each unit performs EXACTLY one WAL record's worth of work (one
# transaction, one DDL statement, or — for the abort — none), so "the
# acknowledged prefix" is well-defined at every crash coordinate.

def _secret_session(db, owner_id, tag_id):
    process = IFCProcess(db.authority, owner_id)
    process.add_secrecy(tag_id)
    return db.connect(process)


def u_create_table(db, o, t):
    db.connect().execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT)")


def u_create_index(db, o, t):
    db.connect().execute("CREATE INDEX items_name ON items (name)")


def u_insert_batch(db, o, t):
    s = db.connect()
    with s.atomic():
        s.execute("INSERT INTO items VALUES (1, 'anvil', 3)")
        s.execute("INSERT INTO items VALUES (2, 'rope', 10)")
        s.execute("INSERT INTO items VALUES (3, 'dynamite', 2)")


def u_secret_insert(db, o, t):
    _secret_session(db, o, t).execute(
        "INSERT INTO items VALUES (4, 'classified', 1)")


def u_update(db, o, t):
    db.connect().execute("UPDATE items SET qty = qty + 5 WHERE id <= 2")


def u_secret_update(db, o, t):
    _secret_session(db, o, t).execute(
        "UPDATE items SET qty = 99 WHERE id = 4")


def u_delete(db, o, t):
    db.connect().execute("DELETE FROM items WHERE id = 3")


def u_seq_insert(db, o, t):
    s = db.connect()
    with s.atomic():
        nid = 100 + db.next_sequence("item_id")
        s.execute("INSERT INTO items VALUES (?, 'serial', 0)", (nid,))


def u_abort(db, o, t):
    # Never logged: recovery must not resurrect it, and its xid must
    # not stall the recovered committed horizon (see the vacuum test).
    s = db.connect()
    s.begin()
    s.execute("INSERT INTO items VALUES (50, 'ghost', 0)")
    s.rollback()


def u_create_view(db, o, t):
    db.connect().execute(
        "CREATE VIEW cheap AS SELECT name FROM items WHERE qty < 5")


def u_drop_index(db, o, t):
    db.connect().execute("DROP INDEX items_name")


def u_final_insert(db, o, t):
    s = db.connect()
    with s.atomic():
        nid = 100 + db.next_sequence("item_id")
        s.execute("INSERT INTO items VALUES (?, 'post-ddl', 7)", (nid,))


UNITS = [u_create_table, u_create_index, u_insert_batch, u_secret_insert,
         u_update, u_secret_update, u_delete, u_seq_insert, u_abort,
         u_create_view, u_drop_index, u_final_insert]


@pytest.fixture
def wal_ids(authority):
    """The principal/tag the labeled units write under (created once so
    every database in a test shares identical tag ids)."""
    owner = authority.create_principal("wal_owner")
    tag = authority.create_tag("wal_secret", owner=owner.id)
    return owner.id, tag.id


# ---------------------------------------------------------------------------
# the crash-matrix driver
# ---------------------------------------------------------------------------

def _run_workload(authority, ids, path, spec):
    """Drive UNITS against a WAL-backed database with fault ``spec``,
    mirroring each unit onto a reference database only *after* the
    WAL database acknowledged it.  Returns ``(ref, db, crashed,
    acked)``; ``db`` is None when the crash hit WAL creation itself."""
    ref = Database(authority)
    try:
        log = WriteAheadLog(path, fault=spec)
    except (CrashError, OSError):
        return ref, None, True, 0
    db = Database(authority, wal=log)
    crashed = False
    acked = 0
    for unit in UNITS:
        try:
            unit(db, *ids)
        except (CrashError, WalError):
            crashed = True
            break
        unit(ref, *ids)
        acked += 1
    return ref, db, crashed, acked


def _check_recovery(authority, path, ref, coordinate):
    """Recover ``path`` into a fresh database and require it to be
    dump-identical to the acknowledged prefix, twice (idempotency).
    On failure, stash the WAL for CI artifact upload."""
    try:
        recovered = Database(authority)
        recovered.recover(path)
        want = dump_database(ref)
        assert dump_database(recovered) == want, (
            "recovered state diverges from acknowledged prefix at %s"
            % coordinate)
        recovered.recover(path)
        assert dump_database(recovered) == want, (
            "second recovery is not a no-op at %s" % coordinate)
        assert recovered._sequences == ref._sequences, coordinate
    except BaseException:
        artifacts = os.environ.get("REPRO_WAL_ARTIFACTS")
        if artifacts and os.path.exists(path):
            os.makedirs(artifacts, exist_ok=True)
            shutil.copy(path, os.path.join(
                artifacts, coordinate.replace(":", "-") + ".wal"))
        raise


class TestCrashMatrix:
    def test_clean_run_recovers_identically(self, authority, wal_ids,
                                            tmp_path):
        path = str(tmp_path / "clean.wal")
        ref, db, crashed, acked = _run_workload(authority, wal_ids, path,
                                                None)
        assert not crashed and acked == len(UNITS)
        _check_recovery(authority, path, ref, "clean")

    def test_every_injection_point(self, authority, wal_ids, tmp_path):
        # Clean run first, to enumerate the write/fsync coordinates.
        probe = str(tmp_path / "probe.wal")
        _ref, db, crashed, _acked = _run_workload(authority, wal_ids,
                                                  probe, None)
        assert not crashed
        writes, fsyncs = db.wal.fault.writes, db.wal.fault.fsyncs
        assert writes > len(UNITS) // 2 and fsyncs == writes
        coords = [(mode, n) for mode in CRASH_MODES
                  for n in range(writes)]
        coords += [("fsync", n) for n in range(fsyncs)]
        for mode, n in coords:
            coordinate = "%s:%d" % (mode, n)
            path = str(tmp_path / ("%s-%d.wal" % (mode, n)))
            ref, _db, crashed, acked = _run_workload(
                authority, wal_ids, path, FaultSpec(mode, n))
            assert crashed, "fault %s never fired" % coordinate
            assert acked < len(UNITS)
            _check_recovery(authority, path, ref, coordinate)

    def test_env_crash_point_sweep(self, authority, wal_ids, tmp_path,
                                   monkeypatch, _ambient_crash_point):
        """The CI sweep entry point: honours an externally-set
        ``REPRO_CRASH_POINT`` coordinate (falls back to a mid-workload
        torn write when run as part of the normal suite)."""
        point = _ambient_crash_point or "torn:5"
        monkeypatch.setenv(ENV_VAR, point)
        path = str(tmp_path / "env.wal")
        # spec=None: WriteAheadLog picks the env coordinate up itself,
        # exactly as a production process would.
        ref, _db, crashed, _acked = _run_workload(authority, wal_ids,
                                                  path, None)
        spec = FaultSpec.parse(point)
        monkeypatch.delenv(ENV_VAR)
        _check_recovery(authority, path, ref, point)
        # The workload issues one write per record plus the magic; a
        # coordinate safely inside that range must actually fire.  A
        # coordinate past the end is still a valid sweep entry — the
        # workload completes and recovery must equal the *full* state.
        if spec.mode in CRASH_MODES and spec.n < 10:
            assert crashed


# ---------------------------------------------------------------------------
# recovery semantics
# ---------------------------------------------------------------------------

class TestRecovery:
    def _recovered(self, authority, wal_ids, tmp_path):
        path = str(tmp_path / "w.wal")
        ref, db, crashed, _ = _run_workload(authority, wal_ids, path, None)
        assert not crashed
        recovered = Database(authority)
        recovered.recover(path)
        return ref, db, recovered, path

    def test_labels_reintern_on_replay(self, authority, wal_ids, tmp_path):
        _ref, _db, recovered, _path = self._recovered(authority, wal_ids,
                                                      tmp_path)
        owner_id, tag_id = wal_ids
        # Query by Label still holds on the recovered heap: the public
        # session cannot see the classified row, the tagged one can.
        public = recovered.connect().query("SELECT id FROM items")
        assert (4,) not in public
        secret = _secret_session(recovered, owner_id, tag_id).query(
            "SELECT id, qty FROM items WHERE id = 4")
        assert secret == [(4, 99)]
        # And the replayed label IS the interned instance, not a copy.
        table = recovered.catalog.get_table("items")
        labels = {v.label for v in table.all_versions() if v.label}
        from repro.core.labels import Label
        assert all(lbl is Label(lbl.tags) for lbl in labels)

    def test_recovered_horizon_unstalled_by_aborts(self, authority,
                                                   wal_ids, tmp_path):
        """Recovery × vacuum: the aborted transaction in the workload
        stalls the crashed database's committed horizon (its dead
        versions linger until a full vacuum), but it was never logged,
        so the recovered database's horizon must be fully advanced —
        the batched-MVCC fast path works immediately."""
        _ref, db, recovered, _path = self._recovered(authority, wal_ids,
                                                     tmp_path)
        tm = db.txn_manager
        assert tm.committed_horizon() < tm.oldest_active_xid()
        rtm = recovered.txn_manager
        assert rtm.committed_horizon() == rtm.oldest_active_xid()
        # Vacuuming the recovered database reclaims the update/delete
        # chaff without changing what queries see.
        before = recovered.connect().query(
            "SELECT id, name, qty FROM items ORDER BY id")
        assert recovered.vacuum() > 0
        assert recovered.connect().query(
            "SELECT id, name, qty FROM items ORDER BY id") == before

    def test_recover_refuses_after_local_writes(self, authority, wal_ids,
                                                tmp_path):
        _ref, _db, recovered, path = self._recovered(authority, wal_ids,
                                                     tmp_path)
        recovered.connect().execute(
            "INSERT INTO items VALUES (300, 'local', 1)")
        with pytest.raises(WalError):
            recovered.recover(path)

    def test_restart_reopens_and_continues_log(self, authority, wal_ids,
                                               tmp_path):
        """The real restart flow: reopen the same log (tail repair),
        recover from it, keep committing into it — a later recovery
        sees the old and new transactions as one history."""
        path = str(tmp_path / "w.wal")
        _ref, db, crashed, _ = _run_workload(authority, wal_ids, path, None)
        assert not crashed
        db.close()
        with open(path, "ab") as handle:
            handle.write(b"\x03garbage-torn-tail")
        restarted = Database(authority, wal=WriteAheadLog(path))
        restarted.recover()
        restarted.connect().execute(
            "INSERT INTO items VALUES (300, 'after-restart', 1)")
        restarted.close()
        records, _bytes, tail = scan_wal(path)
        assert tail is None          # reopen truncated the garbage
        audit = Database(authority)
        audit.recover(path)
        assert dump_database(audit) == dump_database(restarted)


# ---------------------------------------------------------------------------
# the fsync gate
# ---------------------------------------------------------------------------

class TestFsyncGate:
    def test_failed_fsync_refuses_commit_and_truncates(self, authority,
                                                       tmp_path):
        path = str(tmp_path / "w.wal")
        # fsync #0 is the file magic; #2 hits the second commit.
        log = WriteAheadLog(path, fault=FaultSpec("fsync", 2))
        db = Database(authority, wal=log)
        s = db.connect()
        s.execute("CREATE TABLE t (id INT PRIMARY KEY)")   # fsync #1 (DDL)
        with pytest.raises(WalError):
            s.execute("INSERT INTO t VALUES (1)")
        # Not acknowledged → not visible, and the log is failed sticky.
        assert db.connect().query("SELECT * FROM t") == []
        assert log.failed
        with pytest.raises(WalError):
            db.connect().execute("INSERT INTO t VALUES (2)")
        # The unsynced record was truncated away: recovery sees only
        # the DDL, never a commit the client was told failed.
        recovered = Database(authority)
        report = recovered.recover(path)
        assert report["transactions"] == 0 and report["ddl"] == 1
        assert recovered.connect().query("SELECT * FROM t") == []


# ---------------------------------------------------------------------------
# group commit
# ---------------------------------------------------------------------------

class TestGroupCommit:
    def test_concurrent_commits_share_flushes(self, authority, tmp_path):
        db = Database(authority, wal=str(tmp_path / "g.wal"),
                      group_commit_ms=50)
        setup = db.connect()
        setup.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        sessions = []
        for i in range(6):
            s = db.connect()
            s.begin()
            s.execute("INSERT INTO t VALUES (?)", (i,))
            sessions.append(s)
        barrier = threading.Barrier(len(sessions))
        errors = []

        def commit(sess):
            barrier.wait()
            try:
                sess.commit()
            except BaseException as exc:           # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=commit, args=(s,))
                   for s in sessions]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        wal = db.stats()["wal"]
        assert wal["commits"] == len(sessions)
        # The whole point: fewer fsyncs than commits, with at least one
        # flush absorbing several commits inside the 50ms window.
        assert wal["commit_flushes"] < len(sessions)
        assert wal["group_commit_size"] >= 2
        recovered = Database(authority)
        recovered.recover(str(tmp_path / "g.wal"))
        assert len(recovered.connect().query("SELECT * FROM t")) == \
            len(sessions)


# ---------------------------------------------------------------------------
# configuration and metrics surfacing
# ---------------------------------------------------------------------------

class TestConfig:
    def test_repro_wal_env_enables_logging(self, authority, tmp_path,
                                           monkeypatch):
        waldir = str(tmp_path / "wals")
        monkeypatch.setenv("REPRO_WAL", waldir)
        db = Database(authority)
        assert db.wal is not None
        db.connect().execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.connect().execute("INSERT INTO t VALUES (1)")
        assert os.path.getsize(db.wal.path) > 0
        monkeypatch.delenv("REPRO_WAL")
        recovered = Database(authority)
        recovered.recover(db.wal.path)
        assert recovered.connect().query("SELECT * FROM t") == [(1,)]

    def test_wal_counters_in_stats(self, authority, tmp_path):
        db = Database(authority, wal=str(tmp_path / "w.wal"))
        db.connect().execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.connect().execute("INSERT INTO t VALUES (1)")
        wal = db.stats()["wal"]
        assert wal["records"] == 2           # one DDL + one commit
        assert wal["commits"] == 1
        assert wal["bytes"] > 0
        assert wal["flushes"] == 2
        assert wal["group_commit_size"] == 1

    def test_no_wal_means_no_logging(self, authority):
        db = Database(authority)
        db.connect().execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.connect().execute("INSERT INTO t VALUES (1)")
        assert db.wal is None
        assert db.stats()["wal"]["records"] == 0
