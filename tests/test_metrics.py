"""The unified metrics registry (db/metrics.py) and the statement-level
collectors wired through it: per-statement deltas, pg_stat_statements-
style aggregation, the slow-query log, and the IFC audit trail.

These pin the observability contracts the rest of the suite (and the
benchmarks) rely on:

* one registry spans every counter family, and the module singletons
  (``rules.COUNTERS`` & co.) remain the live storage — aliases, not
  copies;
* ``Database.stats()`` reports *all* families (the pre-registry report
  silently omitted the rules and index counters);
* scope/merge round-trips exactly — the API a parallel executor's
  per-worker accumulation will use;
* audit events fire for the paper's three observable security actions:
  suppression under the Label Confinement Rule, declassifying-view
  invocation, and write-rule denial.
"""

from __future__ import annotations

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.core import rules
from repro.db import Database, indexes, metrics, physical, spill
from repro.errors import IFCViolation


def _fresh(**kwargs):
    authority = AuthorityState(idgen=SeededIdGenerator(777))
    db = Database(authority, seed=777, **kwargs)
    owner = authority.create_principal("owner")
    tag = authority.create_tag("secret", owner=owner.id)
    public = db.connect(IFCProcess(authority, owner.id))
    secret_proc = IFCProcess(authority, owner.id)
    secret_proc.add_secrecy(tag.id)
    secret = db.connect(secret_proc)
    return db, public, secret, tag, authority, owner


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_groups_alias_the_module_singletons():
    assert metrics.REGISTRY.group("labels") is rules.COUNTERS
    assert metrics.REGISTRY.group("index") is indexes.COUNTERS
    assert metrics.REGISTRY.group("exec") is physical.EXEC_COUNTERS
    assert metrics.REGISTRY.group("spill") is spill.SPILL_STATS


def test_registry_snapshot_covers_every_family_field():
    snap = metrics.REGISTRY.snapshot()
    assert set(snap) >= {"labels", "index", "exec", "spill", "stats"}
    assert set(snap["labels"]) == {"covers_calls", "strip_calls",
                                   "rows_suppressed"}
    assert set(snap["index"]) == {"lookups", "range_scans"}
    assert set(snap["exec"]) == {"columns_materialized", "rows_widened"}
    assert "bytes_spilled" in snap["spill"]


def test_registry_reset_zeroes_the_live_singletons():
    rules.COUNTERS.covers_calls += 5
    indexes.COUNTERS.lookups += 3
    metrics.REGISTRY.reset()
    assert rules.COUNTERS.covers_calls == 0
    assert indexes.COUNTERS.lookups == 0


def test_scope_captures_named_deltas_and_nothing_else():
    with metrics.REGISTRY.scope() as scope:
        rules.COUNTERS.covers_calls += 2
        physical.EXEC_COUNTERS.rows_widened += 7
    assert scope["labels"]["covers_calls"] == 2
    assert scope["exec"]["rows_widened"] == 7
    assert scope["index"]["lookups"] == 0
    assert scope.elapsed >= 0.0


def test_merge_adds_a_snapshot_into_the_live_counters():
    """The parallel-worker protocol: accumulate privately, snapshot,
    merge at the coordinator — merge(snapshot) after reset() restores
    every counter."""
    rules.COUNTERS.covers_calls = 4
    indexes.COUNTERS.range_scans = 2
    spill.SPILL_STATS.bytes_spilled = 999
    taken = metrics.REGISTRY.snapshot()
    metrics.REGISTRY.reset()
    metrics.REGISTRY.merge(taken)
    metrics.REGISTRY.merge(taken)          # a second worker, same work
    assert rules.COUNTERS.covers_calls == 8
    assert indexes.COUNTERS.range_scans == 4
    assert spill.SPILL_STATS.bytes_spilled == 1998
    assert metrics.REGISTRY.merge({"unknown": {"x": 1}}) is None  # ignored


def test_compiled_reader_tracks_registration_order():
    flat = metrics.REGISTRY.read()
    named = metrics.REGISTRY.snapshot()
    expected = [named[group][field]
                for group, field, _owner in metrics.REGISTRY.cells()]
    assert list(flat) == expected


# ---------------------------------------------------------------------------
# normalization + statement stats
# ---------------------------------------------------------------------------

def test_normalize_sql_fingerprints_literals():
    norm = metrics.normalize_sql
    assert norm("SELECT * FROM t WHERE id = 7") \
        == norm("SELECT * FROM t   WHERE id = 9")
    assert norm("INSERT INTO t VALUES (1, 'a')") \
        == norm("INSERT INTO t VALUES (?, ?)")
    # comments vanish with the lexer
    assert norm("SELECT 1 -- trailing\n") == norm("SELECT 1")
    # identifiers are *not* folded: different shapes stay distinct
    assert norm("SELECT a FROM t") != norm("SELECT b FROM t")


def test_statement_stats_aggregate_under_normalized_keys():
    db, public, _secret, _tag, _a, _o = _fresh()
    public.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(6):
        public.execute("INSERT INTO t VALUES (?, ?)", (i, i * 2))
    public.execute("SELECT * FROM t WHERE v > 3")
    public.execute("SELECT * FROM t WHERE v > 777")
    statements = db.stats()["statements"]
    select_key = "SELECT * FROM t WHERE v > ?"
    assert statements[select_key]["calls"] == 2
    assert statements[select_key]["rows"] > 0
    assert statements["INSERT INTO t VALUES ( ? , ? )"]["calls"] == 6
    assert statements[select_key]["total_ms"] \
        >= statements[select_key]["max_ms"]
    # DDL and EXPLAIN are not tracked
    assert not any(key.startswith("CREATE") for key in statements)


def test_stats_report_includes_all_counter_families():
    """Satellite fix: the old report omitted rules/index counters."""
    db, public, secret, _tag, _a, _o = _fresh()
    public.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    public.execute("INSERT INTO t VALUES (1, 10)")
    secret.execute("SELECT * FROM t")
    report = db.stats()
    for family in ("labels", "index", "exec", "spill", "stats",
                   "statements", "slow_queries"):
        assert family in report, family
    assert report["labels"]["covers_calls"] > 0
    assert report["statements_executed"] > 0


def test_last_statement_metrics_names_every_cell_group():
    db, public, _secret, _tag, _a, _o = _fresh()
    public.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    public.execute("INSERT INTO t VALUES (1, 10)")
    public.execute("SELECT * FROM t")
    delta = db.last_statement_metrics()
    assert delta["rows"] == 1
    assert delta["elapsed_ms"] >= 0.0
    assert delta["exec"]["columns_materialized"] == 2
    assert "buffer" in delta               # per-Database buffer cells


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------

def test_slow_query_log_records_threshold_crossers_with_counters():
    db, public, _secret, _tag, _a, _o = _fresh(slow_query_ms=1e-9)
    public.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    public.execute("INSERT INTO t VALUES (1, 10)")
    public.execute("SELECT * FROM t WHERE v = 10")
    entries = db.stats()["slow_queries"]
    assert entries, "every statement crosses a 1e-9ms threshold"
    last = entries[-1]
    assert last["statement"] == "SELECT * FROM t WHERE v = ?"
    assert last["elapsed_ms"] > 0.0
    assert last["counters"]["exec"]["columns_materialized"] == 2


def test_slow_query_log_disabled_by_default():
    db, public, _secret, _tag, _a, _o = _fresh()
    public.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    public.execute("INSERT INTO t VALUES (1)")
    assert db.stats()["slow_queries"] == []


# ---------------------------------------------------------------------------
# IFC audit trail
# ---------------------------------------------------------------------------

def test_audit_rows_suppressed_for_invisible_secret_rows():
    """A public reader scanning past secret rows triggers the Label
    Confinement Rule per suppressed tuple; with the audit log on, the
    engine records one event per statement with the count."""
    db, public, secret, _tag, _a, _o = _fresh(audit_log=64)
    public.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(10):
        session = secret if i % 2 else public
        session.execute("INSERT INTO t VALUES (?, ?)", (i, i))
    assert len(public.execute("SELECT * FROM t").rows) == 5
    events = db.audit.of_kind("rows_suppressed")
    assert events
    assert events[-1]["statement"] == "SELECT * FROM t"
    assert events[-1]["count"] == 5


def test_audit_declassify_view_records_view_and_tags():
    authority = AuthorityState(idgen=SeededIdGenerator(31))
    db = Database(authority, seed=31, audit_log=64)
    clinic = authority.create_principal("clinic")
    tag = authority.create_tag("patient", owner=clinic.id)
    admin = db.connect(IFCProcess(authority, clinic.id))
    admin.execute("CREATE TABLE p (id INT PRIMARY KEY, v INT)")
    proc = IFCProcess(authority, clinic.id)
    proc.add_secrecy(tag.id)
    db.connect(proc).execute("INSERT INTO p VALUES (1, 10)")
    admin.execute(
        "CREATE VIEW pv AS SELECT v FROM p WITH DECLASSIFYING (patient)")
    reader = db.connect(IFCProcess(authority, clinic.id))
    assert len(reader.execute("SELECT * FROM pv").rows) == 1
    events = db.audit.of_kind("declassify_view")
    assert events
    assert events[-1]["view"] == "pv"
    assert tag.id in events[-1]["tags"]


def test_audit_write_denied_records_the_violation():
    """The section 5.1 covert-channel transaction: write publicly, read
    secretly, try to commit — the commit-label rule denies it, and the
    denial lands in the audit trail."""
    db, public, _secret, tag, authority, _owner = _fresh(audit_log=64)
    public.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    mallory = authority.create_principal("mallory")
    proc = IFCProcess(authority, mallory.id)
    session = db.connect(proc)
    session.execute("BEGIN")
    session.execute("INSERT INTO t VALUES (1, 10)")
    proc.add_secrecy(tag.id)               # raise label above the write
    with pytest.raises(IFCViolation):
        session.execute("COMMIT")
    events = db.audit.of_kind("write_denied")
    assert events
    assert events[-1]["statement"] == "COMMIT"
    assert "error" in events[-1]


def test_audit_off_by_default_and_capacity_bounded():
    db, public, _secret, _tag, _a, _o = _fresh()
    assert db.audit is None
    db2, public2, secret2, _t, _a2, _o2 = _fresh(audit_log=2)
    public2.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    for i in range(5):
        secret2.execute("INSERT INTO t VALUES (?)", (i,))
        public2.execute("SELECT * FROM t")
    assert len(db2.audit.events) == 2          # ring buffer capacity
    assert db2.audit.total == 5                # but every event counted


# ---------------------------------------------------------------------------
# concurrency: per-statement brackets must not cross-contaminate
# ---------------------------------------------------------------------------

def test_statement_metrics_isolated_across_threads():
    """Regression: the per-statement bracket reads the process-wide
    counter singletons — before counters became thread-aware, two
    sessions executing concurrently attributed each other's work to
    the wrong statement (wrong ``last_statement_metrics``, wrong
    StatementStats rows, wrong slow-query counters).

    Two threads run barrier-synced statements with *different*,
    exactly known per-statement covers counts (different batch sizes
    → different chunk counts → different per-batch label-memo probes).
    Every single delta must be exact — any bleed from the other
    thread's concurrent statement shows up as a wrong count.
    """
    import threading

    iterations = 25
    barrier = threading.Barrier(2)
    failures: list = []

    def worker(seed, rows, batch_size, expected_covers):
        try:
            authority = AuthorityState(idgen=SeededIdGenerator(seed))
            db = Database(authority, seed=seed, batch_size=batch_size,
                          slow_query_ms=1e-9)
            owner = authority.create_principal("o%d" % seed)
            session = db.connect(IFCProcess(authority, owner.id))
            session.execute(
                "CREATE TABLE t (id INT PRIMARY KEY, x INT)")
            for i in range(rows):
                session.execute("INSERT INTO t VALUES (?, ?)", (i, i))
            for _ in range(iterations):
                barrier.wait()
                session.execute("SELECT x FROM t")
                delta = db.last_statement_metrics()
                assert delta["rows"] == rows
                # One covers per (batch, distinct label): all rows are
                # public, so exactly one memo probe per chunk.
                assert delta["labels"]["covers_calls"] \
                    == expected_covers, delta["labels"]
                assert delta["labels"]["rows_suppressed"] == 0
            # The slow-query log (threshold 1e-9: every statement
            # records) captured the same exact deltas.
            selects = [e for e in db.stats()["slow_queries"]
                       if e["statement"] == "SELECT x FROM t"]
            assert len(selects) == iterations
            for entry in selects:
                assert entry["counters"]["labels"]["covers_calls"] \
                    == expected_covers
            agg = db.stats()["statements"]["SELECT x FROM t"]
            assert agg["calls"] == iterations
            assert agg["rows"] == rows * iterations
        except BaseException as exc:      # noqa: BLE001 — re-raised
            failures.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(9101, 96, 32, 3)),
        threading.Thread(target=worker, args=(9102, 208, 16, 13)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    if failures:
        raise failures[0]
