"""Smoke-run every Figure benchmark script so the perf suite cannot rot.

Each ``benchmarks/bench_fig*.py`` is executed in a subprocess with
``REPRO_BENCH_SMOKE=1`` (tiny row counts, fixed seeds, shape assertions
off, no ``results.txt`` writes) and must exit cleanly.  This is a
correctness gate, not a measurement: it proves the benchmark code still
imports, builds its stacks, and runs its full code path against the
current engine.
"""

import glob
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")
SCRIPTS = sorted(os.path.basename(p)
                 for pattern in ("bench_fig*.py", "bench_projection.py")
                 for p in glob.glob(os.path.join(BENCH_DIR, pattern)))


def test_scripts_discovered():
    assert len(SCRIPTS) >= 4, SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_bench_smoke(script):
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", os.path.join("benchmarks", script),
         "-q", "--import-mode=importlib", "--benchmark-disable",
         "-p", "no:cacheprovider"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, \
        "%s failed in smoke mode:\n%s\n%s" % (script, proc.stdout,
                                              proc.stderr)
