"""Smoke-run every Figure benchmark script so the perf suite cannot rot.

Each ``benchmarks/bench_fig*.py`` is executed in a subprocess with
``REPRO_BENCH_SMOKE=1`` (tiny row counts, fixed seeds, shape assertions
off, no ``results.txt`` writes) and must exit cleanly.  This is a
correctness gate, not a measurement: it proves the benchmark code still
imports, builds its stacks, and runs its full code path against the
current engine.
"""

import glob
import importlib.util
import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")
SCRIPTS = sorted(os.path.basename(p)
                 for pattern in ("bench_fig*.py", "bench_projection.py",
                                 "bench_sort_spill.py", "bench_wal.py",
                                 "bench_parallel.py")
                 for p in glob.glob(os.path.join(BENCH_DIR, pattern)))


def test_scripts_discovered():
    assert len(SCRIPTS) >= 4, SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_bench_smoke(script):
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", os.path.join("benchmarks", script),
         "-q", "--import-mode=importlib", "--benchmark-disable",
         "-p", "no:cacheprovider"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, \
        "%s failed in smoke mode:\n%s\n%s" % (script, proc.stdout,
                                              proc.stderr)


def _load_bench_common():
    """Import ``benchmarks/common.py`` standalone (no package context)."""
    spec = importlib.util.spec_from_file_location(
        "bench_common_under_test",
        os.path.join(BENCH_DIR, "common.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_smoke_json_never_clobbers_measured_results(tmp_path, monkeypatch):
    """A smoke run must not overwrite a measured BENCH_<figure>.json.

    Smoke timings are meaningless (see benchmarks/common.py), so
    ``write_bench_json`` routes them to a separate, gitignored
    ``BENCH_<figure>.smoke.json`` — the measured (``smoke: false``)
    file committed to the repo stays byte-identical.
    """
    common = _load_bench_common()
    monkeypatch.setattr(common, "BENCH_JSON_ROOT", str(tmp_path))

    measured = tmp_path / "BENCH_fig0.json"
    monkeypatch.setattr(common, "SMOKE", False)
    assert common.write_bench_json("fig0", {"value": 1}) == str(measured)
    before = measured.read_text()
    assert json.loads(before)["smoke"] is False

    monkeypatch.setattr(common, "SMOKE", True)
    path = common.write_bench_json("fig0", {"value": 2})
    assert path == str(tmp_path / "BENCH_fig0.smoke.json")
    smoke_doc = json.loads((tmp_path / "BENCH_fig0.smoke.json").read_text())
    assert smoke_doc["smoke"] is True and smoke_doc["value"] == 2
    assert measured.read_text() == before, \
        "smoke run overwrote a measured benchmark result"
