"""Triggers (section 5.2.3): ordinary, closure, and deferred timing."""

import pytest

from repro.core import IFCProcess, Label
from repro.db.catalog import AFTER, BEFORE, DEFERRED
from repro.errors import CheckViolation, IFCViolation


@pytest.fixture
def world(authority, db):
    alice = authority.create_principal("alice")
    tag = authority.create_tag("alice_tag", owner=alice.id)
    admin = db.connect(IFCProcess(authority, alice.id))
    admin.execute("CREATE TABLE Audit (n INT PRIMARY KEY, what TEXT)")
    admin.execute("CREATE TABLE Data (x INT PRIMARY KEY, y INT)")
    return authority, db, alice, tag


class TestBeforeTriggers:
    def test_before_trigger_can_modify_row(self, world):
        _authority, db, _alice, _tag = world

        def double(ctx):
            return {"y": ctx.new["y"] * 2}

        db.create_trigger("double_y", "Data", "insert", BEFORE, double)
        session = db.connect()
        session.execute("INSERT INTO Data VALUES (1, 21)")
        assert session.execute(
            "SELECT y FROM Data WHERE x = 1").scalar() == 42

    def test_before_trigger_can_veto(self, world):
        _authority, db, *_ = world

        def veto(ctx):
            if ctx.new["y"] < 0:
                raise CheckViolation("negative y")

        db.create_trigger("no_negative", "Data", "insert", BEFORE, veto)
        session = db.connect()
        with pytest.raises(CheckViolation):
            session.execute("INSERT INTO Data VALUES (1, -1)")


class TestOrdinaryTriggers:
    def test_ordinary_trigger_runs_with_caller_label(self, world):
        """An ordinary trigger's writes carry the firing statement's
        label — it cannot leak what the caller couldn't."""
        authority, db, alice, tag = world
        fired = []

        def audit(ctx):
            fired.append(ctx.acting.label)
            ctx.session.insert("Audit", n=len(fired), what="insert")

        db.create_trigger("audit_ins", "Data", "insert", AFTER, audit)
        process = IFCProcess(authority, alice.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO Data VALUES (1, 1)")
        assert fired == [Label([tag.id])]
        # The audit row was written under the same label.
        audit_row = next(db.catalog.get_table("Audit").all_versions())
        assert audit_row.label == Label([tag.id])

    def test_trigger_sees_old_and_new(self, world):
        _authority, db, *_ = world
        seen = []

        def watch(ctx):
            seen.append((ctx.old["y"], ctx.new["y"]))

        db.create_trigger("watch_upd", "Data", "update", AFTER, watch)
        session = db.connect()
        session.execute("INSERT INTO Data VALUES (1, 10)")
        session.execute("UPDATE Data SET y = 20 WHERE x = 1")
        assert seen == [(10, 20)]

    def test_delete_trigger(self, world):
        _authority, db, *_ = world
        deleted = []

        def on_delete(ctx):
            deleted.append(ctx.old["x"])

        db.create_trigger("on_del", "Data", "delete", AFTER, on_delete)
        session = db.connect()
        session.execute("INSERT INTO Data VALUES (7, 0)")
        session.execute("DELETE FROM Data WHERE x = 7")
        assert deleted == [7]


class TestClosureTriggers:
    def test_closure_contamination_is_isolated(self, world):
        """Section 8.2.2: closure triggers read sensitive data 'without
        contaminating the process performing the insert'."""
        authority, db, alice, tag = world
        closure_principal = authority.create_principal("closure")
        authority.delegate(tag.id, alice.id, closure_principal.id)

        def snoop(ctx):
            ctx.add_secrecy(tag.id)      # contaminate the trigger context
            assert tag.id in ctx.acting.label

        db.create_trigger("snoop", "Data", "insert", AFTER, snoop,
                          closure_principal=closure_principal.id)
        process = IFCProcess(authority, alice.id)
        session = db.connect(process)
        session.execute("INSERT INTO Data VALUES (1, 1)")
        assert len(process.label) == 0          # firing process untouched

    def test_closure_can_declassify_with_bound_authority(self, world):
        authority, db, alice, tag = world
        closure_principal = authority.create_principal("closure")
        authority.delegate(tag.id, alice.id, closure_principal.id)
        wrote = []

        def launder(ctx):
            # Statement label is {alice_tag}; the closure declassifies it
            # and writes a public audit record.
            ctx.declassify(tag.id)
            ctx.session.insert("Audit", n=1, what="summary")
            wrote.append(True)

        db.create_trigger("launder", "Data", "insert", AFTER, launder,
                          closure_principal=closure_principal.id)
        process = IFCProcess(authority, alice.id)
        session = db.connect(process)
        # The commit-label rule applies to the closure's public write
        # too, so the process must lower its label before COMMIT —
        # exactly how CarTel's ingest daemon behaves (section 8.2.2).
        session.execute("BEGIN")
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO Data VALUES (1, 1)")
        process.declassify(tag.id)
        session.commit()
        assert wrote
        audit_row = next(db.catalog.get_table("Audit").all_versions())
        assert len(audit_row.label) == 0

    def test_closure_without_authority_cannot_declassify(self, world):
        authority, db, alice, tag = world
        closure_principal = authority.create_principal("weak-closure")

        def try_declassify(ctx):
            ctx.declassify(tag.id)

        db.create_trigger("weak", "Data", "insert", AFTER, try_declassify,
                          closure_principal=closure_principal.id)
        process = IFCProcess(authority, alice.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        from repro.errors import AuthorityError
        with pytest.raises(AuthorityError):
            session.execute("INSERT INTO Data VALUES (1, 1)")


class TestDeferredTriggers:
    def test_deferred_runs_at_commit_with_statement_label(self, world):
        """Section 5.2.3: deferred triggers run with the label of the
        *query*, not the commit label."""
        authority, db, alice, tag = world
        observed = []

        def deferred(ctx):
            observed.append(ctx.acting.label)

        db.create_trigger("dfr", "Data", "insert", DEFERRED, deferred)
        process = IFCProcess(authority, alice.id)
        session = db.connect(process)
        session.execute("BEGIN")
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO Data VALUES (1, 1)")
        process.declassify(tag.id)          # commit label will be {}
        assert observed == []                # not yet fired
        session.commit()
        assert observed == [Label([tag.id])]   # statement label preserved

    def test_deferred_failure_aborts_transaction(self, world):
        _authority, db, *_ = world

        def explode(ctx):
            raise CheckViolation("deferred check failed")

        db.create_trigger("boom", "Data", "insert", DEFERRED, explode)
        session = db.connect()
        session.execute("BEGIN")
        session.execute("INSERT INTO Data VALUES (1, 1)")
        with pytest.raises(CheckViolation):
            session.commit()
        assert session.execute("SELECT COUNT(*) FROM Data").scalar() == 0
