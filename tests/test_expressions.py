"""Expression evaluation semantics: SQL NULL logic, LIKE, CASE, and the
compiler's name resolution."""

import pytest

from repro.db import expressions as ex
from repro.errors import CatalogError, DatabaseError
from repro.sql.parser import parse_expression


class _Ctx:
    """Minimal execution context for standalone expression evaluation."""

    def __init__(self, params=()):
        self.params = tuple(params)
        self.outer_stack = []
        self.registry = None

    def now(self):
        return 123.0


def evaluate(sql, row=None, columns=(), params=()):
    scope = ex.Scope()
    if columns:
        scope.add_table("t", list(columns))
    compiler = ex.ExprCompiler(scope)
    fn = compiler.compile(parse_expression(sql))
    values = list(row or [])
    if columns:
        values = values + [None]       # the _label pseudo-column slot
    return fn(values, _Ctx(params))


class TestArithmetic:
    def test_basic_math(self):
        assert evaluate("1 + 2 * 3 - 4") == 3
        assert evaluate("(1 + 2) * 3") == 9
        assert evaluate("7 / 2") == 3.5
        assert evaluate("7 % 3") == 1
        assert evaluate("-(2 + 3)") == -5

    def test_string_concat(self):
        assert evaluate("'a' || 'b' || 'c'") == "abc"
        assert evaluate("'n=' || 5") == "n=5"

    def test_comparisons(self):
        assert evaluate("3 > 2") is True
        assert evaluate("3 <> 3") is False
        assert evaluate("'abc' < 'abd'") is True


class TestNullLogic:
    def test_null_propagates_through_operators(self):
        assert evaluate("NULL + 1") is None
        assert evaluate("NULL = NULL") is None
        assert evaluate("1 < NULL") is None
        assert evaluate("-(NULL)") is None

    def test_three_valued_and_or(self):
        assert evaluate("TRUE AND NULL") is None
        assert evaluate("FALSE AND NULL") is False
        assert evaluate("TRUE OR NULL") is True
        assert evaluate("FALSE OR NULL") is None
        assert evaluate("NOT NULL") is None

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NULL") is False
        assert evaluate("1 IS NOT NULL") is True

    def test_in_list_with_nulls(self):
        assert evaluate("1 IN (1, NULL)") is True
        assert evaluate("2 IN (1, NULL)") is None     # unknown
        assert evaluate("2 NOT IN (1, 3)") is True
        assert evaluate("NULL IN (1)") is None

    def test_between_null(self):
        assert evaluate("NULL BETWEEN 1 AND 2") is None
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("5 NOT BETWEEN 1 AND 10") is False

    def test_coalesce(self):
        assert evaluate("COALESCE(NULL, NULL, 7, 9)") == 7
        assert evaluate("COALESCE(NULL, NULL)") is None


class TestLike:
    @pytest.mark.parametrize("value,pattern,expected", [
        ("hello", "hello", True),
        ("hello", "h%", True),
        ("hello", "%llo", True),
        ("hello", "h_llo", True),
        ("hello", "h_l", False),
        ("h.llo", "h.llo", True),       # dots are literal
        ("xyz", "%", True),
        ("", "%", True),
        ("abc", "a%c", True),
    ])
    def test_like(self, value, pattern, expected):
        assert evaluate("'%s' LIKE '%s'" % (value, pattern)) is expected

    def test_not_like_and_null(self):
        assert evaluate("'abc' NOT LIKE 'a%'") is False
        assert evaluate("NULL LIKE 'a'") is None


class TestCase:
    def test_first_match_wins(self):
        assert evaluate(
            "CASE WHEN 1 = 2 THEN 'a' WHEN 2 = 2 THEN 'b' "
            "ELSE 'c' END") == "b"

    def test_no_match_no_else_is_null(self):
        assert evaluate("CASE WHEN FALSE THEN 1 END") is None


class TestColumnsAndParams:
    def test_column_resolution(self):
        assert evaluate("a + b", row=[3, 4], columns=("a", "b")) == 7
        assert evaluate("t.a * 2", row=[3, 4], columns=("a", "b")) == 6

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            evaluate("zz", row=[1], columns=("a",))

    def test_params_positional(self):
        assert evaluate("? + ?", params=(10, 20)) == 30

    def test_missing_param_raises(self):
        with pytest.raises(DatabaseError):
            evaluate("? + 1", params=())

    def test_builtins(self):
        assert evaluate("MOD(10, 3)") == 1
        assert evaluate("FLOOR(2.7)") == 2.0
        assert evaluate("CEIL(2.1)") == 3.0
        assert evaluate("TRIM('  x  ')") == "x"
        assert evaluate("NOW()") == 123.0

    def test_unknown_function_raises(self):
        with pytest.raises(CatalogError):
            evaluate("NO_SUCH_FN(1)")


class TestRewriteAndCollect:
    def test_structural_equality_for_group_by(self):
        a = parse_expression("x + 1")
        b = parse_expression("x + 1")
        c = parse_expression("x + 2")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_collect_aggregates_dedupes(self):
        expr = parse_expression("SUM(x) + SUM(x) + COUNT(*)")
        out = []
        ex.collect_aggregates(expr, out)
        assert len(out) == 2

    def test_rewrite_replaces_subtrees(self):
        expr = parse_expression("SUM(x) * 2")
        aggregates = []
        ex.collect_aggregates(expr, aggregates)
        rewritten = ex.rewrite(expr, {aggregates[0]: ex.SlotRef(0)})
        scope = ex.Scope()
        fn = ex.ExprCompiler(scope).compile(rewritten)
        assert fn([21], _Ctx()) == 42

    def test_rewrite_rejects_stray_aggregate(self):
        expr = parse_expression("SUM(x)")
        with pytest.raises(DatabaseError):
            ex.rewrite(expr, {})
