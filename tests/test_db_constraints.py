"""Constraints under IFC (section 5.2): polyinstantiation, the Foreign
Key Rule, label constraints, and plain CHECKs."""

import pytest

from repro.core import IFCProcess, Label
from repro.errors import (
    AuthorityError,
    CheckViolation,
    ForeignKeyViolation,
    IFCViolation,
    LabelConstraintViolation,
    UniqueViolation,
)


class TestUniquenessAndPolyinstantiation:
    """The three inserts of section 5.2.1, exactly."""

    def test_insert_new_key_succeeds_any_label(self, medical):
        dan = medical.authority.create_principal("dan")
        dan_tag = medical.authority.create_tag("dan_medical", owner=dan.id)
        session = medical.db.connect(medical.process_for(dan, dan_tag))
        session.execute(
            "INSERT INTO HIVPatients VALUES ('Dan', '8/12/69', 'hiv')")

    def test_visible_conflict_fails(self, medical):
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = medical.db.connect(process)
        with pytest.raises(UniqueViolation):
            session.execute(
                "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'dup')")

    def test_invisible_conflict_polyinstantiates(self, medical):
        """Insert 3: empty label, conflicting with Alice's hidden row —
        must NOT fail (failing would leak her presence)."""
        table = medical.db.catalog.get_table("HIVPatients")
        before = table.polyinstantiation_count
        session = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        session.execute(
            "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'none')")
        assert table.polyinstantiation_count == before + 1
        # The empty-label writer still sees a consistent single row.
        assert len(session.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'")) == 1
        # A high-labelled reader sees the mistake: two rows, differing
        # only in label.
        high = medical.db.connect(
            medical.process_for(medical.alice, medical.alice_medical))
        assert len(high.query(
            "SELECT * FROM HIVPatients WHERE patient_name = 'Alice'")) == 2

    def test_same_label_duplicate_still_fails(self, medical):
        session = medical.db.connect(
            IFCProcess(medical.authority, medical.clinic.id))
        session.execute(
            "INSERT INTO HIVPatients VALUES ('Eve', '3/3/93', 'x')")
        with pytest.raises(UniqueViolation):
            session.execute(
                "INSERT INTO HIVPatients VALUES ('Eve', '3/3/93', 'y')")

    def test_nulls_never_conflict(self, db):
        session = db.connect()
        session.execute("CREATE TABLE u (a INT, b INT, UNIQUE (a, b))")
        session.execute("INSERT INTO u VALUES (1, NULL)")
        session.execute("INSERT INTO u VALUES (1, NULL)")   # ok: SQL nulls


@pytest.fixture
def fk_world(authority, db):
    """Cars/Drives with per-label FKs, as in section 5.2.2's example."""
    alice = authority.create_principal("alice")
    t_cars = authority.create_tag("alice_cars", owner=alice.id)
    t_drives = authority.create_tag("alice_drives", owner=alice.id)
    admin = db.connect(IFCProcess(authority, alice.id))
    admin.execute("CREATE TABLE Cars (carid INT PRIMARY KEY, o TEXT)")
    admin.execute("CREATE TABLE Drives (driveid INT PRIMARY KEY, "
                  "carid INT REFERENCES Cars(carid))")
    process = IFCProcess(authority, alice.id)
    session = db.connect(process)
    process.add_secrecy(t_cars.id)
    session.execute("INSERT INTO Cars VALUES (1, 'alice')")
    process.declassify(t_cars.id)
    return authority, db, alice, t_cars, t_drives, process, session


class TestForeignKeyRule:
    def test_missing_parent_fails(self, fk_world):
        *_, session = fk_world
        with pytest.raises(ForeignKeyViolation):
            session.execute("INSERT INTO Drives VALUES (1, 99)")

    def test_cross_label_insert_requires_declassifying_clause(self, fk_world):
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_drives.id)
        with pytest.raises(IFCViolation):
            session.execute("INSERT INTO Drives VALUES (1, 1)")

    def test_declassifying_clause_with_authority_succeeds(self, fk_world):
        """The exact clause from section 5.2.2."""
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_drives.id)
        session.execute(
            "INSERT INTO Drives VALUES (1, 1) "
            "DECLASSIFYING (alice_drives, alice_cars)")
        assert session.execute("SELECT COUNT(*) FROM Drives").scalar() == 1

    def test_declassifying_without_authority_fails(self, fk_world):
        authority, db, alice, t_cars, t_drives, _p, _s = fk_world
        mallory = authority.create_principal("mallory")
        process = IFCProcess(authority, mallory.id)
        process.add_secrecy(t_drives.id)
        session = db.connect(process)
        with pytest.raises(AuthorityError):
            session.execute(
                "INSERT INTO Drives VALUES (2, 1) "
                "DECLASSIFYING (alice_drives, alice_cars)")

    def test_clause_must_cover_symmetric_difference(self, fk_world):
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_drives.id)
        with pytest.raises(IFCViolation):
            session.execute(
                "INSERT INTO Drives VALUES (1, 1) "
                "DECLASSIFYING (alice_drives)")   # missing alice_cars

    def test_same_label_needs_no_clause(self, fk_world):
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_cars.id)
        session.execute("INSERT INTO Cars VALUES (2, 'alice')")
        session.execute("INSERT INTO Drives VALUES (5, 2)")   # same label

    def test_delete_restricted_even_across_labels(self, fk_world):
        """The deleter learns about the referencing tuple; the Foreign
        Key Rule made that acceptable at insert time (section 5.2.2)."""
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_drives.id)
        session.execute(
            "INSERT INTO Drives VALUES (1, 1) "
            "DECLASSIFYING (alice_drives, alice_cars)")
        process.declassify(t_drives.id)
        process.add_secrecy(t_cars.id)
        with pytest.raises(ForeignKeyViolation):
            session.execute("DELETE FROM Cars WHERE carid = 1")

    def test_delete_unreferenced_parent_ok(self, fk_world):
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_cars.id)
        session.execute("INSERT INTO Cars VALUES (3, 'alice')")
        session.execute("DELETE FROM Cars WHERE carid = 3")

    def test_update_of_referenced_key_restricted(self, fk_world):
        authority, db, alice, t_cars, t_drives, process, session = fk_world
        process.add_secrecy(t_drives.id)
        session.execute(
            "INSERT INTO Drives VALUES (1, 1) "
            "DECLASSIFYING (alice_drives, alice_cars)")
        process.declassify(t_drives.id)
        process.add_secrecy(t_cars.id)
        with pytest.raises(ForeignKeyViolation):
            session.execute("UPDATE Cars SET carid = 9 WHERE carid = 1")


class TestLabelConstraints:
    def test_match_label_fk_enforced(self, authority, db):
        """Section 5.2.4: MATCH LABEL pins the child's label to the
        parent's, preventing polyinstantiation."""
        alice = authority.create_principal("alice")
        tag = authority.create_tag("alice_medical", owner=alice.id)
        admin = db.connect(IFCProcess(authority, alice.id))
        admin.execute("CREATE TABLE Registry (name TEXT PRIMARY KEY)")
        admin.execute(
            "CREATE TABLE Records (rid INT PRIMARY KEY, "
            "name TEXT REFERENCES Registry(name) MATCH LABEL)")
        process = IFCProcess(authority, alice.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO Registry VALUES ('Alice')")
        session.execute("INSERT INTO Records VALUES (1, 'Alice')")   # same
        process.declassify(tag.id)
        with pytest.raises((LabelConstraintViolation, ForeignKeyViolation)):
            # Empty label does not match {alice_medical}: rejected, so no
            # polyinstantiated record can exist.
            session.execute("INSERT INTO Records VALUES (2, 'Alice')")

    def test_label_check_constraint(self, authority, db):
        alice = authority.create_principal("alice")
        tag = authority.create_tag("alice_medical", owner=alice.id)
        admin = db.connect(IFCProcess(authority, alice.id))
        admin.execute(
            "CREATE TABLE Sealed (x INT PRIMARY KEY, "
            "LABEL CHECK (LABEL_CONTAINS(_label, 'alice_medical')))")
        session = db.connect(IFCProcess(authority, alice.id))
        with pytest.raises(LabelConstraintViolation):
            session.execute("INSERT INTO Sealed VALUES (1)")
        process = IFCProcess(authority, alice.id)
        labelled = db.connect(process)
        process.add_secrecy(tag.id)
        labelled.execute("INSERT INTO Sealed VALUES (1)")


class TestCheckConstraints:
    def test_check_enforced_on_insert_and_update(self, db):
        session = db.connect()
        session.execute(
            "CREATE TABLE c (x INT PRIMARY KEY, CHECK (x > 0))")
        session.execute("INSERT INTO c VALUES (1)")
        with pytest.raises(CheckViolation):
            session.execute("INSERT INTO c VALUES (0)")
        with pytest.raises(CheckViolation):
            session.execute("UPDATE c SET x = -5 WHERE x = 1")

    def test_check_null_passes(self, db):
        session = db.connect()
        session.execute("CREATE TABLE c (x INT, CHECK (x > 0))")
        session.execute("INSERT INTO c VALUES (NULL)")   # unknown passes
