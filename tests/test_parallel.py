"""Parallel execution (db/parallel.py + the Gather exchange operator).

The contract under test: turning workers on may only change *where*
work runs, never what a statement returns, raises, or counts —

* a gathered scan returns exactly the serial rows **in the serial
  order** (contiguous chunk ranges drained in worker order);
* the label-check counters (``covers``/``strip``/suppressions) merged
  back from the workers equal the serial counts exactly: chunk
  boundaries are plan-determined, not worker-count-determined;
* a spilled hash join / hash aggregate fans its key-disjoint grace
  partitions out to the gang and still produces the serial output
  (and byte-identical spill counters);
* a worker exception re-raises in the coordinator with the same type
  the serial execution would raise;
* the planner only parallelizes what it can prove safe: plain full
  scans with column-only predicates — never index scans,
  declassifying views, or subquery predicates — and EXPLAIN shows the
  fan-out (``workers=N``).
"""

from __future__ import annotations

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.db.parallel import FORK_AVAILABLE, split_ranges

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="no fork on this platform")

N_ROWS = 5000


@pytest.fixture(autouse=True)
def _low_fanout_floor(monkeypatch):
    """Plan-time cost gate low enough for test-sized tables."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "64")


def _stack(workers, *, work_mem=0, batch_size=None, rows=N_ROWS,
           secret_every=0):
    authority = AuthorityState(idgen=SeededIdGenerator(41))
    db = Database(authority, seed=41, workers=workers,
                  work_mem=work_mem, batch_size=batch_size)
    owner = authority.create_principal("owner")
    tag = authority.create_tag("secret", owner=owner.id)
    writer_proc = IFCProcess(authority, owner.id)
    writer = db.connect(writer_proc)
    writer.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, g INT, x INT, note TEXT)")
    secret_writer_proc = IFCProcess(authority, owner.id)
    secret_writer_proc.add_secrecy(tag.id)
    secret_writer = db.connect(secret_writer_proc)
    for i in range(rows):
        target = (secret_writer
                  if secret_every and i % secret_every == 0 else writer)
        target.execute("INSERT INTO t VALUES (?, ?, ?, ?)",
                       (i, i % 23, i * 3, "n%d" % i))
    writer.execute("ANALYZE")
    return db, writer, tag


def _rows(session, sql):
    return [tuple(r) for r in session.execute(sql).rows]


def _select_delta(db, session, sql):
    session.execute(sql)
    return db.last_statement_metrics()


# ---------------------------------------------------------------------------
# range splitting
# ---------------------------------------------------------------------------

def test_split_ranges_tile_contiguously():
    for start, stop, workers in ((0, 10, 3), (1, 8, 4), (0, 2, 8),
                                 (3, 3, 2), (0, 100, 7)):
        ranges = split_ranges(start, stop, workers)
        # Tiles [start, stop) exactly: contiguous, ordered, no overlap.
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(start, stop))
        assert len(ranges) <= max(workers, 0)
        assert all(lo < hi for lo, hi in ranges)


# ---------------------------------------------------------------------------
# gathered scans
# ---------------------------------------------------------------------------

def test_parallel_scan_matches_serial_rows_and_order():
    db0, s0, _ = _stack(0, secret_every=7)
    db2, s2, _ = _stack(2, secret_every=7)
    for sql in ("SELECT id, x FROM t",
                "SELECT id, x FROM t WHERE g = 5",
                "SELECT id FROM t WHERE x > 7000 ORDER BY id DESC"):
        assert _rows(s0, sql) == _rows(s2, sql), sql


def test_parallel_scan_label_counters_equal_serial():
    """Merged worker counters land in the statement bracket with zero
    slack, and the label-check totals are plan-determined: the same
    chunk boundaries produce the same per-batch memo probes no matter
    how many workers split the scan."""
    db0, s0, _ = _stack(0, secret_every=7)
    db2, s2, _ = _stack(2, secret_every=7)
    db3, s3, _ = _stack(3, secret_every=7)
    sql = "SELECT id, x FROM t WHERE g = 5"
    serial = _select_delta(db0, s0, sql)
    for db, session in ((db2, s2), (db3, s3)):
        parallel = _select_delta(db, session, sql)
        assert parallel["labels"] == serial["labels"]
        assert parallel["rows"] == serial["rows"]


def test_parallel_scan_suppression_counts_equal_serial():
    """Query-by-Label suppression happens inside the workers; the
    merged ``rows_suppressed`` must equal the serial count."""
    db0, s0, _ = _stack(0, secret_every=5)
    db2, s2, _ = _stack(2, secret_every=5)
    sql = "SELECT id FROM t"
    serial = _select_delta(db0, s0, sql)
    parallel = _select_delta(db2, s2, sql)
    assert serial["labels"]["rows_suppressed"] == N_ROWS // 5
    assert parallel["labels"] == serial["labels"]
    assert _rows(s0, sql) == _rows(s2, sql)


def test_worker_error_reraises_with_serial_type():
    db0, s0, _ = _stack(0)
    db2, s2, _ = _stack(2)
    for sql in ("SELECT id FROM t WHERE 100 / (x - 150) > 0",
                "SELECT id FROM t WHERE x < note"):
        with pytest.raises(Exception) as serial_exc:
            s0.execute(sql)
        with pytest.raises(Exception) as parallel_exc:
            s2.execute(sql)
        assert type(parallel_exc.value) is type(serial_exc.value), sql


# ---------------------------------------------------------------------------
# planner safety proof + EXPLAIN
# ---------------------------------------------------------------------------

def _plan_lines(session, sql):
    return [r[0] for r in session.execute("EXPLAIN " + sql)]


def test_explain_renders_gather_workers():
    _db, session, _ = _stack(2)
    lines = _plan_lines(session, "SELECT id, x FROM t WHERE g = 5")
    gather = next(line for line in lines if "Gather" in line)
    assert "workers=2" in gather
    # The scan is the Gather's child (indented one level deeper).
    gi = lines.index(gather)
    assert "Scan t" in lines[gi + 1]


def test_index_scans_are_not_gathered():
    _db, session, _ = _stack(2)
    lines = _plan_lines(session, "SELECT x FROM t WHERE id = 17")
    assert any("IndexScan" in line for line in lines)
    assert not any("Gather" in line for line in lines)


def test_subquery_predicates_stay_above_the_gather():
    """A subquery predicate executes nested statements, so it may not
    run inside a worker.  The planner strips it out of the scan into a
    coordinator-side Filter; only the columns-only residue is
    gathered."""
    _db, session, _ = _stack(2)
    lines = _plan_lines(
        session,
        "SELECT id FROM t WHERE x > (SELECT MIN(x) FROM t) AND id < 5")
    filter_at = next(i for i, line in enumerate(lines)
                     if "subquery" in line)
    gather_at = next(i for i, line in enumerate(lines)
                     if "Gather" in line)
    assert filter_at < gather_at
    # Nothing below the Gather mentions the subquery.
    assert all("subquery" not in line for line in lines[gather_at:])


def test_declassifying_views_are_not_gathered():
    """View-authority audit records must be written by the
    coordinator; a worker's audit rows would die with its process."""
    db, session, tag = _stack(2, secret_every=3)
    session.execute(
        "CREATE VIEW leaky AS SELECT id, x FROM t "
        "WITH DECLASSIFYING (secret)")
    lines = _plan_lines(session, "SELECT id FROM leaky")
    assert not any("Gather" in line for line in lines)


def test_small_tables_stay_serial(monkeypatch):
    """The optimizer's fan-out cost gate: under the row floor the
    exchange does not pay for its fork."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "1000000")
    _db, session, _ = _stack(2)
    lines = _plan_lines(session, "SELECT id, x FROM t")
    assert not any("Gather" in line for line in lines)


def test_naive_plans_stay_serial():
    authority = AuthorityState(idgen=SeededIdGenerator(41))
    db = Database(authority, seed=41, workers=4, naive_plans=True)
    assert db.planner.workers == 0


def test_workers_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    authority = AuthorityState(idgen=SeededIdGenerator(41))
    db = Database(authority, seed=41)
    assert db.workers == 3
    assert db.planner.workers == 3


# ---------------------------------------------------------------------------
# spilled join / aggregate partition gangs
# ---------------------------------------------------------------------------

JOIN_SQL = ("SELECT a.id, b.id FROM t a JOIN t b ON a.g = b.g "
            "WHERE a.id < 40")
AGG_SQL = "SELECT g, COUNT(*), MIN(x), MAX(note) FROM t GROUP BY g"


def test_parallel_spilled_join_matches_serial():
    db0, s0, _ = _stack(0, work_mem=4096, rows=900)
    db2, s2, _ = _stack(2, work_mem=4096, rows=900)
    serial = _rows(s0, JOIN_SQL)
    parallel = _rows(s2, JOIN_SQL)
    assert db0.last_statement_metrics()["spill"]["spills"] >= 1
    assert serial == parallel                     # rows AND order
    # Byte-identical spill work: same partitions, same spooled rows.
    assert db2.last_statement_metrics()["spill"] \
        == db0.last_statement_metrics()["spill"]


def test_parallel_spilled_aggregate_matches_serial():
    db0, s0, _ = _stack(0, work_mem=1024, rows=900)
    db2, s2, _ = _stack(2, work_mem=1024, rows=900)
    serial = _rows(s0, AGG_SQL)
    parallel = _rows(s2, AGG_SQL)
    assert db0.last_statement_metrics()["spill"]["agg_spills"] >= 1
    assert serial == parallel
    assert db2.last_statement_metrics()["spill"] \
        == db0.last_statement_metrics()["spill"]


def test_explain_renders_join_and_aggregate_workers():
    _db, session, _ = _stack(2, work_mem=4096, rows=900)
    join_lines = _plan_lines(session, JOIN_SQL)
    join = next(line for line in join_lines if "HashJoin" in line)
    assert "workers=2" in join
    agg_lines = _plan_lines(session, AGG_SQL)
    agg = next(line for line in agg_lines if "Aggregate" in line)
    assert "workers=2" in agg


def test_gather_passthrough_without_fork(monkeypatch):
    """With the gang unavailable at run time the exchange degrades to
    a transparent pass-through — same rows, same order."""
    from repro.db import parallel
    db2, s2, _ = _stack(2)
    sql = "SELECT id, x FROM t WHERE g = 5"
    expected = _rows(s2, sql)
    monkeypatch.setattr(parallel, "FORK_AVAILABLE", False)
    assert _rows(s2, sql) == expected
