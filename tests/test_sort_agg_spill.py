"""Memory-bounded Sort, Aggregate, and Distinct (external merge sort,
grace hash aggregation, Top-N) plus the IFC label-union fix in
duplicate-collapsing operators.

Covers the PR-8 operator family end-to-end through the session layer:

* an ORDER BY whose input exceeds ``work_mem`` spools sorted runs and
  k-way merges them — the ordered output is *identical* to the
  unbounded sort, and ``sort_spills``/``sort_runs`` prove the external
  path actually ran;
* GROUP BY and DISTINCT grace-partition overflowing group state and
  recursively re-aggregate it, with ``agg_spills``/``agg_partitions``
  accounting and EXPLAIN ``spill_partitions=``/``mem=`` annotations;
* ORDER BY … LIMIT plans as a TopN bounded heap (no Limit node, no
  full sort, no spill for small limits) that falls back to the
  external sort when the heap itself could not fit the budget;
* DISTINCT unions the labels and ilabels of *all* collapsed
  duplicates — the regression where two equal rows under different
  secrecy labels used to keep only the first row's label;
* mixed-type sort keys (INT/TEXT from a CASE expression) fall back to
  the type-tagged total order instead of raising, in memory and
  across spilled runs;
* LIMIT/OFFSET edges (LIMIT 0, OFFSET beyond the input, a limit
  exactly on a batch boundary) agree across the row and batch
  executors.
"""

from __future__ import annotations

import random

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.db.spill import SPILL_STATS


def _stack(work_mem, batch_size=None, naive=False, n_rows=600, seed=5):
    """One database + session over a populated ``m`` table whose full
    contents weigh ~40KB — comfortably over the tight budgets below."""
    authority = AuthorityState(idgen=SeededIdGenerator(31))
    db = Database(authority, seed=31, work_mem=work_mem,
                  batch_size=batch_size, naive_plans=naive)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("p").id))
    session.execute("CREATE TABLE m (id INT PRIMARY KEY, k TEXT,"
                    " grp INT, v FLOAT)")
    rng = random.Random(seed)
    for i in range(n_rows):
        session.execute("INSERT INTO m VALUES (?, ?, ?, ?)",
                        (i, "key-%04d" % rng.randint(0, 199),
                         rng.randint(0, 49), round(rng.uniform(0, 100), 3)))
    session.execute("ANALYZE")
    return session


def _ordered(session, sql, params=()):
    """Order-sensitive result rows with labels."""
    return [(tuple(r), tuple(sorted(r.label)))
            for r in session.execute(sql, params).rows]


def _explain(session, sql):
    return [r[0] for r in session.execute("EXPLAIN " + sql).rows]


# ---------------------------------------------------------------------------
# external merge sort
# ---------------------------------------------------------------------------

def test_external_sort_matches_unbounded_and_counts():
    sql = "SELECT * FROM m ORDER BY v DESC, id"
    expected = _ordered(_stack(0), sql)
    session = _stack(1024)
    before = SPILL_STATS.snapshot()
    got = _ordered(session, sql)
    after = SPILL_STATS.snapshot()
    assert got == expected                     # ordered, labels included
    assert after["sort_spills"] > before["sort_spills"]
    assert after["sort_runs"] >= before["sort_runs"] + 2
    assert after["rows_spilled"] > before["rows_spilled"]


def test_external_sort_explain_shows_runs_and_budget_mem():
    session = _stack(1024)
    sort_line = next(line for line in
                     _explain(session, "SELECT * FROM m ORDER BY v")
                     if "Sort" in line)
    assert "runs=" in sort_line, sort_line
    runs = int(sort_line.split("runs=")[1].split()[0])
    assert runs >= 2
    # Peak resident estimate is one budget-sized chunk, not the input.
    est_mem = int(sort_line.split("mem=")[1].split("B")[0])
    assert est_mem <= 1024
    # Unbounded: no run annotation, the estimate is the materialized
    # input.
    free_line = next(line for line in
                     _explain(_stack(0), "SELECT * FROM m ORDER BY v")
                     if "Sort" in line)
    assert "runs=" not in free_line


def test_external_sort_batch_and_row_modes_agree():
    sql = "SELECT id, v FROM m ORDER BY k, id"
    by_mode = [_ordered(_stack(1024, batch_size=size), sql)
               for size in (None, 1, 7)]
    assert by_mode[0] == by_mode[1] == by_mode[2]


# ---------------------------------------------------------------------------
# grace hash aggregation
# ---------------------------------------------------------------------------

def test_grace_aggregation_matches_unbounded_and_counts():
    sql = ("SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM m "
           "GROUP BY k ORDER BY k")
    expected = _ordered(_stack(0), sql)
    session = _stack(1024)
    before = SPILL_STATS.snapshot()
    got = _ordered(session, sql)
    after = SPILL_STATS.snapshot()
    assert got == expected
    assert after["agg_spills"] > before["agg_spills"]
    assert after["agg_partitions"] > before["agg_partitions"]


def test_grace_aggregation_explain_annotations():
    session = _stack(1024)
    agg_line = next(line for line in
                    _explain(session, "SELECT k, COUNT(*) FROM m GROUP BY k")
                    if "Aggregate" in line)
    assert "spill_partitions=" in agg_line, agg_line
    assert "mem=" in agg_line
    # A global aggregate holds one group: never predicted to spill.
    global_line = next(line for line in
                       _explain(session, "SELECT COUNT(*) FROM m")
                       if "Aggregate" in line)
    assert "spill_partitions=" not in global_line


def test_grace_aggregation_with_distinct_aggs_and_recursion():
    """COUNT(DISTINCT …) state survives the spool round trip, and an
    adversarial 1KB budget forces recursive re-partitioning."""
    sql = ("SELECT grp, COUNT(DISTINCT k), AVG(v) FROM m "
           "GROUP BY grp ORDER BY grp")
    expected = _ordered(_stack(0), sql)
    assert _ordered(_stack(1024), sql) == expected
    assert _ordered(_stack(1024, batch_size=1), sql) == expected


# ---------------------------------------------------------------------------
# Top-N
# ---------------------------------------------------------------------------

def test_topn_rewrite_plan_shape_and_parity():
    session = _stack(1024)
    sql = "SELECT id, v FROM m ORDER BY v DESC, id LIMIT 7 OFFSET 3"
    lines = _explain(session, sql)
    assert any("TopN" in line for line in lines), lines
    assert not any(line.strip().startswith(("Sort", "Limit"))
                   for line in lines), lines
    # Naive/reference plans keep the literal Sort + Limit pair.
    naive_lines = _explain(_stack(0, naive=True), sql)
    assert any("Sort" in line for line in naive_lines)
    assert any("Limit" in line for line in naive_lines)
    assert not any("TopN" in line for line in naive_lines)
    assert _ordered(session, sql) == _ordered(_stack(0, naive=True), sql)


def test_topn_small_limit_never_spills():
    """A 5-row heap fits a 2KB budget even though the 600-row input
    (~40KB) never could: the bounded heap must not touch disk."""
    session = _stack(2048)
    before = SPILL_STATS.sort_spills
    got = _ordered(session, "SELECT * FROM m ORDER BY v, id LIMIT 5")
    assert len(got) == 5
    assert SPILL_STATS.sort_spills == before  # bounded heap, no runs
    assert got == _ordered(_stack(0),
                           "SELECT * FROM m ORDER BY v, id LIMIT 5")


def test_topn_falls_back_to_external_sort_for_huge_limits():
    """A limit within a constant of the input would need an over-budget
    heap; the operator must external-sort instead — and still match."""
    sql = "SELECT * FROM m ORDER BY v, id LIMIT 590"
    expected = _ordered(_stack(0), sql)
    session = _stack(1024)
    before = SPILL_STATS.sort_spills
    assert _ordered(session, sql) == expected
    assert SPILL_STATS.sort_spills > before


def test_topn_parameterized_limit():
    sql = "SELECT id FROM m ORDER BY id LIMIT ?"
    session = _stack(1024)
    assert [r[0][0] for r in _ordered(session, sql, (4,))] == [0, 1, 2, 3]
    assert _ordered(session, sql, (0,)) == []


# ---------------------------------------------------------------------------
# DISTINCT: label union + spill
# ---------------------------------------------------------------------------

def _labeled_duplicates():
    """Two sessions insert the *same* tuple values under different
    secrecy labels; a reader tagged with both sees both rows."""
    authority = AuthorityState(idgen=SeededIdGenerator(77))
    db = Database(authority, seed=77)
    owner = authority.create_principal("owner")
    tag_a = authority.create_tag("dup-a", owner=owner.id)
    tag_b = authority.create_tag("dup-b", owner=owner.id)
    proc_a = IFCProcess(authority, owner.id)
    proc_a.add_secrecy(tag_a.id)
    proc_b = IFCProcess(authority, owner.id)
    proc_b.add_secrecy(tag_b.id)
    reader_proc = IFCProcess(authority, owner.id)
    reader_proc.add_secrecy(tag_a.id)
    reader_proc.add_secrecy(tag_b.id)
    public = db.connect(IFCProcess(authority, owner.id))
    session_a = db.connect(proc_a)
    session_b = db.connect(proc_b)
    reader = db.connect(reader_proc)
    public.execute("CREATE TABLE d (k TEXT, v INT)")
    session_a.execute("INSERT INTO d VALUES (?, ?)", ("dup", 1))
    session_b.execute("INSERT INTO d VALUES (?, ?)", ("dup", 1))
    session_a.execute("INSERT INTO d VALUES (?, ?)", ("only-a", 2))
    return reader, tag_a.id, tag_b.id


def test_distinct_unions_labels_of_collapsed_duplicates():
    """Regression: DISTINCT used to keep the first-seen row's label,
    silently declassifying the collapsed duplicates.  A result row must
    be labeled with the union of every tuple that influenced it —
    exactly AggregateNode's group semantics (section 4.2)."""
    reader, tag_a, tag_b = _labeled_duplicates()
    rows = reader.execute("SELECT DISTINCT k, v FROM d").rows
    by_key = {tuple(r): set(r.label) for r in rows}
    assert by_key[("dup", 1)] == {tag_a, tag_b}
    assert by_key[("only-a", 2)] == {tag_a}


def test_distinct_label_union_matches_group_by():
    """DISTINCT and the equivalent GROUP BY must label rows alike."""
    reader, _tag_a, _tag_b = _labeled_duplicates()
    distinct = sorted((tuple(r), tuple(sorted(r.label))) for r in
                      reader.execute("SELECT DISTINCT k, v FROM d").rows)
    grouped = sorted((tuple(r), tuple(sorted(r.label))) for r in
                     reader.execute("SELECT k, v FROM d GROUP BY k, v").rows)
    assert distinct == grouped


def test_distinct_spills_and_preserves_sorted_order():
    """``SELECT DISTINCT … ORDER BY`` places the Sort *below* the
    Distinct, so a spilling Distinct must preserve its input order —
    the arrival-sequence merge guarantees first-seen (= sorted) order
    even when state grace-partitions to disk."""
    sql = "SELECT DISTINCT k, grp FROM m ORDER BY k, grp"
    expected = _ordered(_stack(0), sql)
    session = _stack(1024)
    before = SPILL_STATS.snapshot()
    got = _ordered(session, sql)
    after = SPILL_STATS.snapshot()
    assert got == expected                     # ordered comparison
    assert after["agg_spills"] > before["agg_spills"]


# ---------------------------------------------------------------------------
# mixed-type sort keys
# ---------------------------------------------------------------------------

MIXED_SQL = ("SELECT id, CASE WHEN grp < 25 THEN grp ELSE k END FROM m "
             "ORDER BY CASE WHEN grp < 25 THEN grp ELSE k END, id")


def test_mixed_type_order_by_does_not_raise():
    """The natural per-column key raises TypeError on INT/TEXT mixes
    that DeterministicOrder handles fine; Sort must fall back to the
    type-tagged total order — numbers before strings, natural order
    within each class — identically in memory and across spilled runs
    (different runs may hold mutually incomparable types)."""
    in_memory = _ordered(_stack(0), MIXED_SQL)
    assert len(in_memory) == 600
    mixed_values = [row[0][1] for row in in_memory]
    ints = [v for v in mixed_values if isinstance(v, int)]
    strs = [v for v in mixed_values if isinstance(v, str)]
    assert ints and strs
    # Numbers first (sorted), then strings (sorted): the tagged order.
    assert mixed_values[:len(ints)] == sorted(ints)
    assert mixed_values[len(ints):] == sorted(strs)


def test_mixed_type_order_by_spilled_matches_in_memory():
    expected = _ordered(_stack(0), MIXED_SQL)
    session = _stack(1024)
    before = SPILL_STATS.sort_spills
    assert _ordered(session, MIXED_SQL) == expected
    assert SPILL_STATS.sort_spills > before
    assert _ordered(_stack(1024, batch_size=1), MIXED_SQL) == expected


def test_mixed_type_topn():
    sql = MIXED_SQL + " LIMIT 8"
    expected = _ordered(_stack(0, naive=True), sql)
    assert _ordered(_stack(1024), sql) == expected


# ---------------------------------------------------------------------------
# LIMIT/OFFSET edges: row/batch executor parity
# ---------------------------------------------------------------------------

EDGE_QUERIES = (
    # Plain Limit node (no ORDER BY: heap order is deterministic and
    # identical across executors on identically-populated databases).
    ("SELECT id FROM m LIMIT 0", ()),
    ("SELECT id FROM m LIMIT ? OFFSET ?", (5, 10_000)),   # offset past end
    ("SELECT id FROM m LIMIT 8", ()),                     # = batch boundary
    ("SELECT id FROM m LIMIT 7 OFFSET 1", ()),            # spans boundary
    # TopN edges.
    ("SELECT id FROM m ORDER BY v, id LIMIT 0", ()),
    ("SELECT id FROM m ORDER BY v, id LIMIT 5 OFFSET 10000", ()),
    ("SELECT id FROM m ORDER BY v, id LIMIT 8 OFFSET 8", ()),
    # Sort + Limit without a limit: OFFSET alone.
    ("SELECT id FROM m ORDER BY v, id OFFSET 595", ()),
)


def test_limit_offset_edges_row_batch_parity():
    sessions = [_stack(0, naive=True),        # row-at-a-time reference
                _stack(0),                    # default batches
                _stack(0, batch_size=1),      # every boundary exists
                _stack(0, batch_size=8)]      # limits land on boundaries
    for sql, params in EDGE_QUERIES:
        results = [_ordered(s, sql, params) for s in sessions]
        assert results.count(results[0]) == len(results), \
            (sql, [len(r) for r in results])


def test_limit_zero_and_far_offset_return_nothing():
    session = _stack(0)
    assert session.execute("SELECT * FROM m LIMIT 0").rows == []
    assert session.execute(
        "SELECT * FROM m ORDER BY id LIMIT 3 OFFSET 10000").rows == []


# ---------------------------------------------------------------------------
# metrics wiring
# ---------------------------------------------------------------------------

def test_explain_analyze_reports_sort_and_agg_counters():
    session = _stack(1024)
    text = "\n".join(r[0] for r in session.execute(
        "EXPLAIN ANALYZE SELECT k, COUNT(*) FROM m GROUP BY k ORDER BY k"))
    assert "sort_runs=" in text, text
    assert "agg_spills=" in text, text


def test_snapshot_has_sort_and_agg_fields():
    snap = SPILL_STATS.snapshot()
    for field in ("sort_spills", "sort_runs", "agg_spills",
                  "agg_partitions"):
        assert field in snap
