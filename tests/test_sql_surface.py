"""Remaining SQL surface: INSERT…SELECT, CALL, VACUUM, scripts, and
the protocol-level conveniences."""

import pytest

from repro.core import IFCProcess
from repro.errors import CatalogError, DatabaseError


class TestInsertSelect:
    def test_insert_from_select(self, db):
        session = db.connect()
        session.execute("CREATE TABLE src (a INT PRIMARY KEY, b INT)")
        session.execute("CREATE TABLE dst (a INT PRIMARY KEY, b INT)")
        for i in range(5):
            session.execute("INSERT INTO src VALUES (?, ?)", (i, i * i))
        count = session.execute(
            "INSERT INTO dst SELECT a, b FROM src WHERE a >= 2").rowcount
        assert count == 3
        assert session.execute("SELECT SUM(b) FROM dst").scalar() == 29

    def test_insert_select_respects_labels(self, medical):
        """Copied tuples carry the *copier's* label, not the source's —
        writes always carry exactly LP (section 4.2)."""
        from repro.core import Label
        db = medical.db
        admin = db.connect(IFCProcess(medical.authority, medical.clinic.id))
        admin.execute("CREATE TABLE Copy (patient_name TEXT PRIMARY KEY)")
        process = medical.process_for(medical.alice, medical.alice_medical)
        session = db.connect(process)
        session.execute(
            "INSERT INTO Copy SELECT patient_name FROM HIVPatients")
        table = db.catalog.get_table("Copy")
        versions = list(table.all_versions())
        assert len(versions) == 1         # only Alice's row was visible
        assert versions[0].label == Label([medical.alice_medical.id])


class TestCallStatement:
    def test_call_procedure_via_sql(self, db):
        def double(session, x):
            return x * 2

        db.create_procedure("double_it", double)
        session = db.connect()
        result = session.execute("CALL double_it(21)")
        assert result.rows[0]["result"] == 42

    def test_call_missing_procedure(self, db):
        with pytest.raises(CatalogError):
            db.connect().execute("CALL nope()")


class TestVacuumStatement:
    def test_vacuum_via_sql(self, db):
        session = db.connect()
        session.execute("CREATE TABLE v (x INT PRIMARY KEY)")
        session.execute("INSERT INTO v VALUES (1)")
        session.execute("UPDATE v SET x = 2 WHERE x = 1")
        session.execute("VACUUM v")
        assert db.catalog.get_table("v").version_count == 1

    def test_vacuum_all(self, db):
        session = db.connect()
        session.execute("CREATE TABLE v1 (x INT PRIMARY KEY)")
        session.execute("CREATE TABLE v2 (x INT PRIMARY KEY)")
        session.execute("INSERT INTO v1 VALUES (1)")
        session.execute("DELETE FROM v1")
        session.execute("VACUUM")
        assert db.catalog.get_table("v1").version_count == 0


class TestScripts:
    def test_execute_script(self, db):
        session = db.connect()
        session.execute_script("""
            CREATE TABLE a (x INT PRIMARY KEY);
            CREATE TABLE b (y INT PRIMARY KEY);
            INSERT INTO a VALUES (1);
            INSERT INTO b VALUES (2);
        """)
        assert session.execute("SELECT x FROM a").scalar() == 1
        assert session.execute("SELECT y FROM b").scalar() == 2


class TestResultConveniences:
    def test_row_access_patterns(self, db):
        session = db.connect()
        session.execute("CREATE TABLE r (a INT PRIMARY KEY, b TEXT)")
        session.execute("INSERT INTO r VALUES (1, 'x')")
        row = session.execute("SELECT a, b FROM r").first()
        assert row[0] == 1 and row["b"] == "x"
        assert row.get("missing", "dflt") == "dflt"
        assert row.as_dict() == {"a": 1, "b": "x"}
        assert list(row.keys()) == ["a", "b"]
        assert len(row) == 2

    def test_scalar_of_empty_result(self, db):
        session = db.connect()
        session.execute("CREATE TABLE r (a INT PRIMARY KEY)")
        assert session.execute("SELECT a FROM r").scalar() is None

    def test_parse_cache_reuses_statements(self, db):
        session = db.connect()
        session.execute("CREATE TABLE pc (a INT PRIMARY KEY)")
        sql = "SELECT a FROM pc WHERE a = ?"
        first = db.parse(sql)
        session.execute(sql, (1,))
        assert db.parse(sql) is first      # cached AST object


class TestFunctionsRegisteredByApps:
    def test_scalar_udf_in_where_and_select(self, db):
        db.create_function("ADD3", lambda x: x + 3)
        session = db.connect()
        session.execute("CREATE TABLE u (x INT PRIMARY KEY)")
        for i in range(4):
            session.execute("INSERT INTO u VALUES (?)", (i,))
        rows = session.query(
            "SELECT ADD3(x) FROM u WHERE ADD3(x) > 4 ORDER BY x")
        assert [r[0] for r in rows] == [5, 6]

    def test_context_udf_gets_ctx(self, db):
        db.create_function("CLOCKED", lambda ctx: ctx.now(),
                           needs_context=True)
        db.clock = lambda: 42.0
        session = db.connect()
        assert session.execute("SELECT CLOCKED()").scalar() == 42.0

    def test_duplicate_function_rejected(self, db):
        db.create_function("F", lambda: 1)
        with pytest.raises(CatalogError):
            db.create_function("f", lambda: 2)    # case-insensitive
