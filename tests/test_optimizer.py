"""The optimizer layer: access paths, pushdown boundaries, EXPLAIN
fidelity, and prepared-plan cache invalidation under concurrent DDL."""

import pytest

from repro.core import IFCProcess
from repro.db import Database
from repro.db.physical import (
    Filter,
    HashJoin,
    IndexLoopJoin,
    IndexScan,
    Scan,
    ViewPlan,
    explain_plan,
)
from repro.errors import CatalogError


def walk(plan):
    """Every operator in a physical plan tree, preorder."""
    from repro.db.physical import _children
    yield plan
    for child in _children(plan):
        yield from walk(child)


def plan_for(db, sql):
    return db.prepare_select(db.parse(sql), sql).plan


@pytest.fixture
def store():
    db = Database(ifc_enabled=False)
    session = db.connect()
    session.execute_script("""
        CREATE TABLE items (id INT PRIMARY KEY, category TEXT, price FLOAT);
        CREATE TABLE sales (sid INT PRIMARY KEY, item_id INT, qty INT);
    """)
    for i in range(20):
        session.execute("INSERT INTO items VALUES (?, ?, ?)",
                        (i, "cat%d" % (i % 3), float(i)))
        session.execute("INSERT INTO sales VALUES (?, ?, ?)",
                        (100 + i, i % 10, i))
    return db, session


class TestAccessPaths:
    def test_index_scan_for_pk_equality(self, store):
        db, _session = store
        plan = plan_for(db, "SELECT price FROM items WHERE id = 7")
        scans = [n for n in walk(plan) if isinstance(n, Scan)]
        assert len(scans) == 1
        assert isinstance(scans[0], IndexScan)
        assert scans[0].predicate is None        # fully consumed by the key

    def test_full_scan_without_index(self, store):
        db, _session = store
        plan = plan_for(db, "SELECT id FROM items WHERE category = 'cat1'")
        scans = [n for n in walk(plan) if isinstance(n, Scan)]
        assert not isinstance(scans[0], IndexScan)
        assert scans[0].predicate is not None    # pushed-down filter

    def test_index_scan_keeps_residual_predicate(self, store):
        db, session = store
        session.execute("CREATE INDEX items_cat ON items (category)")
        plan = plan_for(
            db, "SELECT id FROM items WHERE category = 'cat1' AND price > 5")
        scans = [n for n in walk(plan) if isinstance(n, IndexScan)]
        assert len(scans) == 1
        assert scans[0].index.name == "items_cat"
        assert scans[0].predicate is not None    # price > 5 stays residual
        rows = session.query(
            "SELECT id FROM items WHERE category = 'cat1' AND price > 5")
        assert sorted(r[0] for r in rows) == [7, 10, 13, 16, 19]

    def test_equality_results_match_full_scan(self, store):
        db, session = store
        with_index = session.query("SELECT price FROM items WHERE id = 7")
        # The same predicate on an unindexed expression goes through a
        # full scan; results must agree.
        no_index = session.query(
            "SELECT price FROM items WHERE id + 0 = 7")
        assert [list(r) for r in with_index] == [list(r) for r in no_index]

    def test_index_join_selected_for_equi_join(self, store):
        db, _session = store
        plan = plan_for(db, "SELECT s.qty FROM sales s "
                            "JOIN items i ON i.id = s.item_id")
        assert any(isinstance(n, IndexLoopJoin) for n in walk(plan))

    def test_hash_join_when_inner_has_no_index(self, store):
        db, _session = store
        plan = plan_for(db, "SELECT s.qty FROM sales s "
                            "JOIN items i ON i.category = s.item_id")
        assert any(isinstance(n, HashJoin) for n in walk(plan))

    def test_transitive_equi_join_keeps_both_conditions(self, store):
        # a.id = b.id AND b.id = c.id funnels two equi-pairs onto the
        # same inner column after join reordering; the probe consumes
        # one, the other must survive as a residual condition.
        db, session = store
        session.execute_script("""
            CREATE TABLE ta (id INT PRIMARY KEY, x INT);
            CREATE TABLE tb (id INT PRIMARY KEY, y INT);
            CREATE TABLE tc (id INT PRIMARY KEY, z INT);
        """)
        for i in range(5):
            session.execute("INSERT INTO ta VALUES (?, ?)", (i, 10 * i))
            session.execute("INSERT INTO tb VALUES (?, ?)", (i, 100 * i))
            session.execute("INSERT INTO tc VALUES (?, ?)", (i, 1000 * i))
        rows = session.query(
            "SELECT a.x, b.y, c.z FROM ta a, tb b, tc c "
            "WHERE a.id = b.id AND b.id = c.id AND c.z = 3000")
        assert [list(r) for r in rows] == [[30, 300, 3000]]

    def test_constant_folding_in_pushed_predicate(self, store):
        db, _session = store
        plan = plan_for(db, "SELECT price FROM items WHERE id = 3 + 4")
        scans = [n for n in walk(plan) if isinstance(n, IndexScan)]
        assert len(scans) == 1
        assert "id = 7" in scans[0].explain


class TestViewBoundary:
    """Pushdown must never move a predicate past a label-stripping view."""

    def _census(self, medical):
        clinic = medical.db.connect(medical.process_for(medical.clinic))
        clinic.execute(
            "CREATE VIEW census AS SELECT patient_name, condition "
            "FROM HIVPatients WITH DECLASSIFYING (all_medical)")
        return clinic

    def test_filter_stays_above_view_plan(self, medical):
        session = self._census(medical)
        sql = ("SELECT patient_name FROM census "
               "WHERE LABEL_SIZE(_label) = 0")
        plan = plan_for(medical.db, sql)
        # Structure: the predicate is a Filter wrapping the ViewPlan,
        # and the scan below the boundary carries no pushed predicate.
        filters = [n for n in walk(plan) if isinstance(n, Filter)]
        assert any(isinstance(f.child, ViewPlan) for f in filters)
        scans = [n for n in walk(plan) if isinstance(n, Scan)]
        assert all(s.predicate is None for s in scans)

    def test_predicate_observes_stripped_labels(self, medical):
        session = self._census(medical)
        # The view strips every patient tag, so the *output* labels are
        # empty; a predicate evaluated above the boundary sees size 0.
        # (Below the boundary each tuple's stored label has one tag.)
        rows = session.query("SELECT patient_name FROM census "
                             "WHERE LABEL_SIZE(_label) = 0")
        assert len(rows) == 3
        assert session.query("SELECT patient_name FROM census "
                             "WHERE LABEL_SIZE(_label) > 0") == []


class TestExplain:
    def test_explain_matches_executed_plan(self, store):
        db, session = store
        sql = ("SELECT s.qty, i.price FROM sales s "
               "JOIN items i ON i.id = s.item_id "
               "WHERE s.qty > 3 ORDER BY i.price LIMIT 4")
        explain_rows = [r[0] for r in session.execute("EXPLAIN " + sql)]
        prepared = db.prepare_select(db.parse(sql), sql)
        assert explain_rows == explain_plan(prepared.plan)
        # And the plan executes: EXPLAIN described a runnable tree.
        assert len(session.query(sql)) == 4

    def test_explain_shows_index_access_path(self, store):
        _db, session = store
        rows = [r[0] for r in session.execute(
            "EXPLAIN SELECT price FROM items WHERE id = ? AND price > 1")]
        index_lines = [line for line in rows if "IndexScan" in line]
        assert len(index_lines) == 1
        assert "id = ?" in index_lines[0]
        assert "filter (price > 1)" in index_lines[0]

    def test_explain_dml(self, store):
        _db, session = store
        rows = [r[0] for r in session.execute(
            "EXPLAIN UPDATE items SET price = 0 WHERE id = 3")]
        assert rows[0] == "Update items"
        assert "IndexScan items using" in rows[1]
        assert "id = 3" in rows[1]

    def test_explain_dml_shows_range_access_path(self, store):
        # The acceptance shape for unified DML planning: a range
        # predicate on an ordered-indexed column plans as an
        # IndexRangeScan, with the optimizer's cost/row annotations.
        _db, session = store
        session.execute(
            "CREATE ORDERED INDEX items_cat_price ON items "
            "(category, price)")
        rows = [r[0] for r in session.execute(
            "EXPLAIN UPDATE items SET price = 0 WHERE "
            "category = 'cat1' AND price BETWEEN 4 AND 9")]
        assert rows[0] == "Update items"
        assert "IndexRangeScan items using items_cat_price" in rows[1]
        assert "price >= 4" in rows[1] and "price <= 9" in rows[1]
        assert "(cost=" in rows[1] and "rows=" in rows[1]
        rows = [r[0] for r in session.execute(
            "EXPLAIN DELETE FROM items WHERE category = 'cat2' "
            "AND price > 10")]
        assert rows[0] == "Delete items"
        assert "IndexRangeScan items using items_cat_price" in rows[1]
        assert "price > 10" in rows[1]
        assert "(cost=" in rows[1]

    def test_explain_matches_executed_dml_plan(self, store):
        db, session = store
        sql = "UPDATE items SET price = price + 1 WHERE id = 3"
        explain_rows = [r[0] for r in session.execute("EXPLAIN " + sql)]
        prepared = db.prepare_dml(db.parse(sql), sql)
        assert explain_rows == ["Update items"] \
            + explain_plan(prepared.plan, indent=1)

    def test_explain_does_not_execute(self, store):
        db, session = store
        before = db.rows_updated
        session.execute("EXPLAIN UPDATE items SET price = 0")
        assert db.rows_updated == before
        assert session.query("SELECT COUNT(*) FROM items "
                             "WHERE price = 0")[0][0] == 1   # only id 0

    def test_explain_delete_does_not_execute(self, store):
        db, session = store
        before_deleted = db.rows_deleted
        before_count = session.query(
            "SELECT COUNT(*) FROM items")[0][0]
        session.execute("EXPLAIN DELETE FROM items WHERE id >= 0")
        assert db.rows_deleted == before_deleted
        assert session.query(
            "SELECT COUNT(*) FROM items")[0][0] == before_count


class TestPlanCache:
    def test_cached_plan_matches_fresh_plan_under_ddl(self, store):
        db, session = store
        sql = "SELECT price FROM items WHERE category = 'cat2'"
        before = session.query(sql)
        assert not isinstance(
            next(n for n in walk(plan_for(db, sql)) if isinstance(n, Scan)),
            IndexScan)
        # Concurrent DDL: an index appears between two executions.
        session.execute("CREATE INDEX items_cat ON items (category)")
        after = session.query(sql)
        assert [list(r) for r in before] == [list(r) for r in after]
        # The cache replanned: the same SQL now runs through the index.
        scans = [n for n in walk(plan_for(db, sql))
                 if isinstance(n, IndexScan)]
        assert scans and scans[0].index.name == "items_cat"
        # ... and DROP INDEX invalidates again.
        session.execute("DROP INDEX items_cat")
        assert not any(isinstance(n, IndexScan)
                       for n in walk(plan_for(db, sql)))
        assert [list(r) for r in session.query(sql)] == \
            [list(r) for r in before]

    def test_dml_plans_replan_on_index_ddl(self, store):
        db, session = store
        sql = "UPDATE items SET price = price WHERE category = 'cat1'"
        session.execute(sql)
        plan = db.prepare_dml(db.parse(sql), sql).plan
        assert not isinstance(plan, IndexScan)
        session.execute("CREATE INDEX items_cat ON items (category)")
        plan = db.prepare_dml(db.parse(sql), sql).plan
        assert isinstance(plan, IndexScan)
        assert plan.index.name == "items_cat"

    def test_stats_refresh_evicts_dml_plans(self, store):
        # DML plans are cost-based now, so a statistics refresh must
        # evict them along with the SELECT plans reading the table.
        db, session = store
        sql = "UPDATE items SET price = price WHERE id = 1"
        session.execute(sql)
        assert sql in db._dml_cache
        db.invalidate_plans_for("items")
        assert sql not in db._dml_cache

    def test_epoch_covers_tag_registry_mutations(self, db, authority):
        session = db.connect()
        session.execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
        sql = "SELECT body FROM notes WHERE id = 1"
        session.execute(sql)
        epoch_before = db.plan_cache_epoch()
        assert db._select_cache
        owner = authority.create_principal("owner")
        authority.create_tag("note_tag", owner=owner.id)
        assert db.plan_cache_epoch() != epoch_before
        session.execute(sql)                     # triggers the epoch check
        assert db._plan_epoch == db.plan_cache_epoch()

    def test_view_changes_invalidate(self, store):
        db, session = store
        session.execute("CREATE VIEW cheap AS "
                        "SELECT id FROM items WHERE price < 3")
        assert len(session.query("SELECT id FROM cheap")) == 3
        epoch = db.plan_cache_epoch()
        session.execute("DROP VIEW cheap")
        assert db.plan_cache_epoch() != epoch

    def test_drop_index_backing_unique_is_refused(self, store):
        db, session = store
        with pytest.raises(CatalogError):
            session.execute("DROP INDEX items_items_pkey_idx")

    def test_drop_index_with_ambiguous_name_is_refused(self, store):
        _db, session = store
        session.execute("CREATE INDEX dup ON items (category)")
        session.execute("CREATE INDEX dup ON sales (qty)")
        with pytest.raises(CatalogError, match="ambiguous"):
            session.execute("DROP INDEX dup")
