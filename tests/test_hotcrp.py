"""End-to-end HotCRP tests (section 6.2): the declassifying view, the
decision tags, and the two leak regressions the paper reintroduced."""

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.platform import IFRuntime
from repro.apps.hotcrp import HotCRPApp


@pytest.fixture
def hotcrp():
    authority = AuthorityState(idgen=SeededIdGenerator(88))
    db = Database(authority, seed=88)
    runtime = IFRuntime(authority)
    app = HotCRPApp(db, runtime)
    app.register("chair@c.org", "pw", first="Carol", last="Chair",
                 is_pc=True, is_chair=True)
    app.register("pc@c.org", "pw", first="Pat", last="Member", is_pc=True)
    app.register("alice@u.edu", "pw", first="Alice", last="Author")
    p1 = app.submit_paper("alice@u.edu", "IFDB Reproduction")
    p2 = app.submit_paper("pc@c.org", "Conflicted Paper")
    app.add_review("pc@c.org", p1, 5, "accept it")
    app.add_review("chair@c.org", p2, 2, "meh")
    return app, p1, p2


class TestContactProtection:
    def test_pc_members_view_is_public(self, hotcrp):
        app, *_ = hotcrp
        names = app.pc_members("alice@u.edu")
        assert ("Carol", "Chair") in names
        assert ("Pat", "Member") in names

    def test_raw_contact_info_hidden(self, hotcrp):
        """The original bug: any user could read full contact info.
        Under IFDB the base table yields nothing to other users."""
        app, *_ = hotcrp
        _process, session = app.session_for("alice@u.edu")
        assert session.query("SELECT phone FROM ContactInfo") == []

    def test_own_contact_info_visible_with_own_tag(self, hotcrp):
        app, *_ = hotcrp
        from repro.apps.hotcrp import contact_tag_name
        process, session = app.session_for("alice@u.edu")
        tag = app.authority.tags.lookup(
            contact_tag_name(app.contact_of("alice@u.edu")))
        process.add_secrecy(tag.id)
        rows = session.query("SELECT email FROM ContactInfo")
        assert [r[0] for r in rows] == ["alice@u.edu"]


class TestDecisions:
    def test_sort_by_status_leak_prevented(self, hotcrp):
        """Regression 1 (section 6.2): sorting papers by status must not
        reveal unreleased decisions."""
        app, p1, p2 = hotcrp
        app.record_decision(p1, "accept")
        app.record_decision(p2, "reject")
        listing = app.papers_by_status("alice@u.edu")
        assert all(entry["status"] is None for entry in listing)

    def test_search_leak_prevented(self, hotcrp):
        """Regression 2: the search feature must not match hidden
        decisions."""
        app, p1, _p2 = hotcrp
        app.record_decision(p1, "accept")
        assert app.search_decided("alice@u.edu", "accept") == []
        assert app.search_decided("alice@u.edu", "reject") == []

    def test_release_makes_decision_visible_to_author(self, hotcrp):
        app, p1, _p2 = hotcrp
        app.record_decision(p1, "accept")
        app.release_decision(p1)
        listing = app.papers_by_status("alice@u.edu")
        by_paper = {e["paper"]: e["status"] for e in listing}
        assert by_paper[p1] == "accept"

    def test_release_is_per_paper(self, hotcrp):
        app, p1, p2 = hotcrp
        app.record_decision(p1, "accept")
        app.record_decision(p2, "reject")
        app.release_decision(p1)
        listing = app.papers_by_status("pc@c.org")
        by_paper = {e["paper"]: e["status"] for e in listing}
        assert by_paper.get(p2) is None       # pc's own paper: still hidden

    def test_chair_sees_decisions(self, hotcrp):
        app, p1, _p2 = hotcrp
        app.record_decision(p1, "accept")
        from repro.apps.hotcrp import decision_tag_name
        process, session = app.session_for("chair@c.org")
        tag = app.authority.tags.lookup(decision_tag_name(p1))
        process.add_secrecy(tag.id)
        assert session.execute(
            "SELECT outcome FROM Decisions WHERE paperId = ?",
            (p1,)).scalar() == "accept"


class TestReviews:
    def test_author_cannot_see_reviews(self, hotcrp):
        app, p1, _p2 = hotcrp
        assert app.my_reviews("alice@u.edu", p1) == []

    def test_reviewer_and_chair_see_review(self, hotcrp):
        app, p1, _p2 = hotcrp
        assert len(app.my_reviews("pc@c.org", p1)) == 1
        assert len(app.my_reviews("chair@c.org", p1)) == 1

    def test_delegation_respects_conflicts(self, hotcrp):
        app, p1, p2 = hotcrp
        assert app.my_reviews("pc@c.org", p2) == []      # conflicted
        app.delegate_reviews_to_pc()
        assert len(app.my_reviews("pc@c.org", p1)) == 1  # no conflict
        assert app.my_reviews("pc@c.org", p2) == []      # still conflicted

    def test_email_uniqueness_is_per_label(self, hotcrp):
        """Contact rows carry per-user labels, so email uniqueness can
        only polyinstantiate, never leak (section 5.2.1)."""
        app, *_ = hotcrp
        table = app.db.catalog.get_table("ContactInfo")
        before = table.polyinstantiation_count
        app.register("alice@u.edu", "pw2", first="Fake", last="Alice")
        assert table.polyinstantiation_count > before
