"""Id generation (section 7.3): the allocation channel and its fix."""

from repro.core.idgen import (
    IdGenerator,
    SeededIdGenerator,
    SequentialIdGenerator,
)


class TestCryptoGenerator:
    def test_ids_fresh_and_positive(self):
        gen = IdGenerator()
        used = set()
        for _ in range(200):
            new = gen.next_id(used)
            assert new > 0
            assert new not in used
            used.add(new)

    def test_ids_not_sequential(self):
        """The countermeasure: creation order is not recoverable from
        id values (unlike the sequential allocator below)."""
        gen = IdGenerator()
        used = set()
        ids = [gen.next_id(used) or used.add(_) for _ in range(50)]
        ids = []
        used = set()
        for _ in range(50):
            new = gen.next_id(used)
            used.add(new)
            ids.append(new)
        assert ids != sorted(ids)


class TestSeededGenerator:
    def test_deterministic(self):
        a = SeededIdGenerator(5)
        b = SeededIdGenerator(5)
        used_a, used_b = set(), set()
        for _ in range(20):
            ida = a.next_id(used_a)
            idb = b.next_id(used_b)
            assert ida == idb
            used_a.add(ida)
            used_b.add(idb)

    def test_still_non_sequential(self):
        gen = SeededIdGenerator(6)
        used = set()
        ids = []
        for _ in range(50):
            new = gen.next_id(used)
            used.add(new)
            ids.append(new)
        assert ids != sorted(ids)


class TestSequentialChannel:
    def test_sequential_ids_leak_creation_order(self):
        """Demonstrates the allocation channel the paper closes: with a
        sequential allocator, id values reveal the order in which
        objects (e.g. HotCRP papers) were created."""
        gen = SequentialIdGenerator()
        used = set()
        ids = []
        for _ in range(10):
            new = gen.next_id(used)
            used.add(new)
            ids.append(new)
        assert ids == sorted(ids)      # order fully recoverable

    def test_sequential_skips_used(self):
        gen = SequentialIdGenerator()
        assert gen.next_id({1, 2, 3}) == 4
