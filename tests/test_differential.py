"""Differential-execution harness for the unified query/DML planner.

Two identical databases execute one seeded random stream of
SELECT/UPDATE/DELETE/INSERT statements over small labeled tables:

* the **optimized** universe plans normally — cost-based access paths
  (equality probes, ``IndexRangeScan`` range scans), join strategies,
  pushdown, and stats-driven replanning all enabled;
* the **reference** universe runs with ``Database(naive_plans=True)``:
  forced full heap scans, nested-loop joins, no pushdown — the
  slowest, most obviously correct interpretation of every statement.

After every statement both universes must agree on the outcome (result
rows *and their labels* for SELECT, rowcount for DML, exception type on
failure) and, after every write, on the complete table state including
per-row labels.  None of the optimizer's choices may change *what* a
statement sees or touches — that is the paper's section 7.1 invariant
(visibility is decided below every optimization decision), and this
harness is its executable form.

The statement stream is adversarial about **joins**: besides
single-table DML it generates multi-join SELECTs over 2–4 tables with
mixed equality/range join predicates and duplicate-heavy join keys
(self-joins on a 10-value foreign key, equality on an unindexed
column so the optimizer must hash-join).  Every such plan shape —
index-nested-loop with batched probe dedup, hash join, nested loop,
LEFT JOIN NULL extension — must agree with the naive executor; the
``work_mem`` parametrization additionally re-runs the stream under
64KB and 1KB budgets so grace-spilled hash joins are cross-checked
row-for-row (rows, labels, rowcounts, error types) against both the
in-memory optimized and the naive execution.

Seeds come from the environment so CI can rotate them
(``REPRO_DIFF_SEED``; on failure every assertion message carries the
seed for reproduction).  ``REPRO_DIFF_STATEMENTS`` scales the run.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.db.physical import IndexRangeScan, IndexScan, Scan
from repro.db.spill import SPILL_STATS
from repro.errors import ReproError

FIXED_SEED = 0x1FDB
SEED = int(os.environ.get("REPRO_DIFF_SEED", str(FIXED_SEED)), 0)
N_STATEMENTS = int(os.environ.get("REPRO_DIFF_STATEMENTS", "600"))

SCHEMA = """
CREATE TABLE readings (id INT PRIMARY KEY, device INT, ts INT,
                       kind TEXT, value FLOAT);
CREATE ORDERED INDEX readings_dev_ts ON readings (device, ts);
CREATE INDEX readings_kind ON readings (kind);
CREATE TABLE devices (device INT PRIMARY KEY, owner TEXT, zone INT);
CREATE ORDERED INDEX devices_zone ON devices (zone);
CREATE TABLE zones (zone INT PRIMARY KEY, region TEXT);
"""

KINDS = ("temp", "gps", "speed", "fuel")


class Universe:
    """One database plus a public (empty-label) and a secret session.

    ``batch_size`` (optimized universe only; the naive reference always
    runs row-at-a-time) exercises the batched executor at arbitrary
    batch boundaries — ``None`` means the engine default / the
    ``REPRO_BATCH_SIZE`` environment override.
    """

    def __init__(self, *, naive: bool, batch_size=None, work_mem=None,
                 workers=None):
        authority = AuthorityState(idgen=SeededIdGenerator(777))
        self.db = Database(authority, naive_plans=naive, seed=777,
                           batch_size=batch_size, work_mem=work_mem,
                           workers=workers)
        owner = authority.create_principal("owner")
        self.tag = authority.create_tag("diff-secret", owner=owner.id)
        secret = IFCProcess(authority, owner.id)
        secret.add_secrecy(self.tag.id)
        self.sessions = {
            "public": self.db.connect(IFCProcess(authority, owner.id)),
            "secret": self.db.connect(secret),
        }
        self.sessions["public"].execute_script(SCHEMA)

    def state(self):
        """Full contents of every table — values *and* labels — as seen
        by the secret session (whose label covers every row)."""
        reader = self.sessions["secret"]
        out = {}
        for table in ("readings", "devices", "zones"):
            rows = reader.execute("SELECT * FROM " + table).rows
            out[table] = sorted(
                ((tuple(r), tuple(sorted(r.label))) for r in rows),
                key=repr)
        return out


def run_one(universe: Universe, op: dict):
    """Execute one generated statement; normalize the outcome."""
    session = universe.sessions[op["session"]]
    try:
        result = session.execute(op["sql"], op.get("params", ()))
    except ReproError as exc:
        return ("error", type(exc).__name__)
    if op["kind"] == "select":
        rows = sorted(((tuple(r), tuple(sorted(r.label)))
                       for r in result.rows), key=repr)
        return ("rows", rows)
    return ("rowcount", result.rowcount)


class StatementGenerator:
    """Seeded random SELECT/UPDATE/DELETE/INSERT statements over the
    harness schema, weighted so tables stay populated and the write
    rule fires sometimes (cross-label DML raising IFCViolation is an
    outcome both universes must agree on too)."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.next_id = 0

    def session_kind(self) -> str:
        return "secret" if self.rng.random() < 0.3 else "public"

    def insert_reading(self) -> dict:
        rng = self.rng
        self.next_id += 1
        params = (self.next_id, rng.randint(0, 9), rng.randint(0, 999),
                  rng.choice(KINDS), round(rng.uniform(0, 100), 3))
        return {"kind": "insert", "session": self.session_kind(),
                "sql": "INSERT INTO readings VALUES (?, ?, ?, ?, ?)",
                "params": params}

    def _conjunct(self, alias: str = ""):
        rng = self.rng
        prefix = alias + "." if alias else ""
        col = rng.choice(("id", "device", "ts", "kind", "value"))
        if col == "kind":
            return "%skind = ?" % prefix, [rng.choice(KINDS)]
        if col == "id":
            value = rng.randint(0, max(self.next_id, 1))
        elif col == "device":
            value = rng.randint(0, 9)
        elif col == "ts":
            value = rng.randint(0, 999)
        else:
            value = round(rng.uniform(0, 100), 3)
        if rng.random() < 0.25:
            span = {"id": 40, "device": 3, "ts": 150}.get(col, 20.0)
            return ("%s%s BETWEEN ? AND ?" % (prefix, col),
                    [value, value + rng.uniform(0, span)
                     if col == "value" else value + rng.randint(0, span)])
        op = rng.choice(("=", "<", "<=", ">", ">="))
        return "%s%s %s ?" % (prefix, col, op), [value]

    def predicate(self, alias: str = ""):
        parts, params = [], []
        for _ in range(self.rng.randint(1, 3)):
            text, values = self._conjunct(alias)
            parts.append(text)
            params.extend(values)
        return " AND ".join(parts), params

    def statement(self) -> dict:
        rng = self.rng
        roll = rng.random()
        if roll < 0.40:
            return self.select()
        if roll < 0.62:
            return self.update()
        if roll < 0.76:
            return self.delete()
        if roll < 0.96:
            return self.insert_reading()
        return {"kind": "analyze", "session": "public",
                "sql": "ANALYZE readings"}

    def select(self) -> dict:
        rng = self.rng
        roll = rng.random()
        if roll < 0.40:
            return self.select_join()
        if roll < 0.70:
            return self.select_sorted()
        where, params = self.predicate()
        if rng.random() < 0.5:
            sql = ("SELECT device, COUNT(*), MAX(value) FROM readings "
                   "WHERE %s GROUP BY device" % where)
        else:
            sql = "SELECT * FROM readings WHERE " + where
        return {"kind": "select", "session": self.session_kind(),
                "sql": sql, "params": params}

    #: Multi-join SELECT templates (2–4 tables).  Join keys are chosen
    #: adversarially: ``r.device`` has only 10 distinct values over
    #: hundreds of readings (duplicate-heavy index-loop probes),
    #: ``ts`` and ``owner`` have no usable index (forced hash joins —
    #: the ones that spill under a work_mem budget), and the templates
    #: mix equality joins with range/inequality residuals and LEFT
    #: JOIN NULL extension.  ``{w}`` receives a seeded predicate on the
    #: ``r`` alias to keep outputs bounded.
    JOIN_TEMPLATES = (
        # 2 tables, indexed FK: batched IndexLoopJoin probe dedup.
        ("SELECT r.id, r.ts, r.value, d.owner FROM readings r "
         "JOIN devices d ON d.device = r.device WHERE {w}"),
        # 2 tables, unindexed equality key: HashJoin (spills when
        # work_mem is tight), duplicate-heavy on purpose.
        ("SELECT r.id, r2.id, r2.value FROM readings r "
         "JOIN readings r2 ON r2.ts = r.ts WHERE {w}"),
        # Mixed eq + range join condition: hash join with residual.
        ("SELECT r.id, r2.id FROM readings r "
         "JOIN readings r2 ON r2.ts = r.ts AND r2.value >= r.value "
         "WHERE {w}"),
        # LEFT JOIN over the unindexed key: NULL-extended spill probes.
        ("SELECT r.id, r2.id FROM readings r "
         "LEFT JOIN readings r2 ON r2.ts = r.ts AND r2.kind = r.kind "
         "WHERE {w}"),
        # 3 tables: index loop + index loop over tiny zones.
        ("SELECT r.id, d.owner, z.region FROM readings r "
         "JOIN devices d ON d.device = r.device "
         "JOIN zones z ON z.zone = d.zone WHERE {w}"),
        # 3 tables with a pure non-equi join: nested loop (batched
        # predicate over the inner side) above an index loop.
        ("SELECT r.id, d.owner, z.region FROM readings r "
         "JOIN devices d ON d.device = r.device "
         "JOIN zones z ON z.zone < d.zone WHERE {w}"),
        # 4 tables, duplicate-heavy self-join + dimension chain.
        ("SELECT r.id, r2.id, d.owner, z.region FROM readings r "
         "JOIN readings r2 ON r2.device = r.device "
         "JOIN devices d ON d.device = r.device "
         "JOIN zones z ON z.zone = d.zone "
         "WHERE {w} AND r2.value <= r.value"),
        # Aggregation over a hash join (labels union across tables).
        ("SELECT r2.kind, COUNT(*), MAX(r2.value) FROM readings r "
         "JOIN readings r2 ON r2.ts = r.ts WHERE {w} "
         "GROUP BY r2.kind"),
        # Narrow projection over a join: pushdown strips every column
        # the plan does not read from both scans — the one-column
        # output (and its joined labels) must not notice.
        ("SELECT d.zone FROM readings r "
         "JOIN devices d ON d.device = r.device WHERE {w}"),
        # Aggregation over the duplicate-heavy self-join with nothing
        # projected but the join key: both scans run at minimum width.
        ("SELECT COUNT(*) FROM readings r "
         "JOIN readings r2 ON r2.device = r.device WHERE {w}"),
    )

    def select_join(self) -> dict:
        where, params = self.predicate("r")
        sql = self.rng.choice(self.JOIN_TEMPLATES).format(w=where)
        return {"kind": "select", "session": self.session_kind(),
                "sql": sql, "params": params}

    #: Memory-bounded Sort/Aggregate/Distinct/Top-N templates.  The
    #: harness compares result *sets*, so every LIMIT template orders
    #: by a chain ending in the unique ``id`` (or the full group key):
    #: a tie at the cut boundary would otherwise let both universes
    #: legally return different-but-correct rows.  Under the 1KB
    #: work_mem leg these are the statements that force external merge
    #: sort runs and grace-partitioned aggregation (readings holds
    #: ~250 rows ≈ 25KB).
    SORT_TEMPLATES = (
        # Full external sort (runs spooled + k-way merged at 1KB).
        "SELECT r.id, r.value FROM readings r WHERE {w} "
        "ORDER BY r.value DESC, r.id",
        # Top-N bounded heap, unique tail key.
        "SELECT r.id, r.kind, r.value FROM readings r WHERE {w} "
        "ORDER BY r.kind, r.value, r.id LIMIT 7",
        # Top-N with offset; heap bound is limit+offset.
        "SELECT r.id FROM readings r WHERE {w} "
        "ORDER BY r.ts, r.id LIMIT 5 OFFSET 3",
        # Heap-busting limit: TopN falls back to the external sort.
        "SELECT r.id, r.device, r.ts FROM readings r WHERE {w} "
        "ORDER BY r.device, r.ts, r.id LIMIT 200 OFFSET 2",
        # Grace-partitioned DISTINCT (duplicate-heavy key pair).
        "SELECT DISTINCT r.device, r.kind FROM readings r WHERE {w}",
        # DISTINCT above a Sort: spilled Distinct must keep the order.
        "SELECT DISTINCT r.kind FROM readings r WHERE {w} "
        "ORDER BY r.kind",
        # Grace aggregation, then Top-N over the group rows.
        "SELECT r.device, COUNT(*), MIN(r.value), MAX(r.value) "
        "FROM readings r WHERE {w} GROUP BY r.device "
        "ORDER BY r.device LIMIT 4",
        # Wide aggregate state over the high-cardinality group key.
        # SUM stays on an INT column: float summation is
        # order-sensitive, and the access path legally reorders rows.
        "SELECT r.ts, COUNT(*), SUM(r.device) FROM readings r WHERE {w} "
        "GROUP BY r.ts ORDER BY COUNT(*) DESC, r.ts LIMIT 6",
    )

    def select_sorted(self) -> dict:
        rng = self.rng
        if rng.random() < 0.5:
            where, params = self.predicate("r")
        else:
            # Single-table sorts don't explode like joins, so half the
            # time keep most of the table: a handful of filtered rows
            # fits any budget, and the 1KB leg must genuinely spool
            # sort runs and grace-partition aggregate state.
            where, params = "r.value >= ?", [round(rng.uniform(0, 25), 3)]
        sql = rng.choice(self.SORT_TEMPLATES).format(w=where)
        return {"kind": "select", "session": self.session_kind(),
                "sql": sql, "params": params}

    def update(self) -> dict:
        rng = self.rng
        where, params = self.predicate()
        assignment = rng.choice((
            ("value = value + ?", [round(rng.uniform(-5, 5), 3)]),
            ("kind = ?", [rng.choice(KINDS)]),
            ("ts = ?", [rng.randint(0, 999)]),          # indexed column
            ("device = ?, value = ?",
             [rng.randint(0, 9), round(rng.uniform(0, 100), 3)]),
        ))
        return {"kind": "update", "session": self.session_kind(),
                "sql": "UPDATE readings SET %s WHERE %s"
                       % (assignment[0], where),
                "params": assignment[1] + params}

    def delete(self) -> dict:
        where, params = self.predicate()
        return {"kind": "delete", "session": self.session_kind(),
                "sql": "DELETE FROM readings WHERE " + where,
                "params": params}


def _populate(universes, gen: StatementGenerator) -> None:
    rng = gen.rng
    device_rows = [(d, "owner%d" % (d % 4), d % 3) for d in range(10)]
    zone_rows = [(z, "region%d" % (z % 2)) for z in range(3)]
    inserts = [gen.insert_reading() for _ in range(250)]
    for universe in universes:
        for device, owner, zone in device_rows:
            universe.sessions["public"].execute(
                "INSERT INTO devices VALUES (?, ?, ?)",
                (device, owner, zone))
        for zone, region in zone_rows:
            universe.sessions["public"].execute(
                "INSERT INTO zones VALUES (?, ?)", (zone, region))
    for op in inserts:
        for universe in universes:
            status = run_one(universe, op)
            assert status[0] == "rowcount", status
    for universe in universes:
        universe.sessions["public"].execute("ANALYZE")


def _plan_shapes(db) -> set:
    shapes = set()
    for _stmt, prepared, _tables in db._dml_cache.values():
        shapes.add(type(prepared.plan))
    return shapes


def _run_differential(seed: int, n_statements: int,
                      batch_size=None, work_mem=None,
                      require_spill: bool = False,
                      workers=None) -> None:
    tag = "[REPRO_DIFF_SEED=%d]" % seed
    rng = random.Random(seed)
    gen = StatementGenerator(rng)
    optimized = Universe(naive=False, batch_size=batch_size,
                         work_mem=work_mem, workers=workers)
    reference = Universe(naive=True, work_mem=0)
    universes = (optimized, reference)
    _populate(universes, gen)
    assert optimized.state() == reference.state(), \
        "%s populated state diverged" % tag
    spilled_before = SPILL_STATS.snapshot()

    executed = 0
    optimized_shapes, reference_shapes = set(), set()
    for i in range(n_statements):
        op = gen.statement()
        got = run_one(optimized, op)
        want = run_one(reference, op)
        assert got == want, (
            "%s statement %d diverged\n  op: %r\n  optimized: %r\n"
            "  reference: %r" % (tag, i, op, got, want))
        if op["kind"] in ("update", "delete", "insert"):
            assert optimized.state() == reference.state(), (
                "%s table state diverged after statement %d: %r"
                % (tag, i, op))
        # Sample the DML plan caches each round (ANALYZE evicts them).
        optimized_shapes |= _plan_shapes(optimized.db)
        reference_shapes |= _plan_shapes(reference.db)
        executed += 1

    # Sanity: the optimized side must actually have exercised indexed
    # DML plans — otherwise this was full-scan vs full-scan and proved
    # nothing about the unified planner — while the reference side must
    # never have strayed from full scans.
    assert optimized_shapes & {IndexScan, IndexRangeScan}, optimized_shapes
    assert reference_shapes <= {Scan}, reference_shapes
    # The workers legs must genuinely have planned parallel scans, or
    # the matrix quietly degraded to serial-vs-naive and proved
    # nothing about the gang.
    if workers and workers >= 2:
        plan = optimized.sessions["public"].execute(
            "EXPLAIN SELECT * FROM readings")
        assert any("Gather" in row[0] for row in plan), \
            "%s workers=%d planned no Gather" % (tag, workers)
    # Under a tight budget the run must actually have exercised the
    # grace-spill machinery — hash joins, external sorts, AND grace
    # aggregation/distinct — or the work_mem matrix proves nothing.
    if require_spill:
        spilled_after = SPILL_STATS.snapshot()
        for counter in ("spills", "sort_spills", "agg_spills"):
            assert spilled_after[counter] > spilled_before[counter], (
                "%s no %s under work_mem=%r" % (tag, counter, work_mem))


def test_differential_seeded():
    """The headline run: 500+ statements under the configured seed
    (the floor holds even when REPRO_DIFF_STATEMENTS is set lower)."""
    _run_differential(SEED, max(N_STATEMENTS, 500))


def test_differential_shifted_seed():
    """A short independent run on a derived seed, so a single lucky
    seed cannot hide a divergence class entirely."""
    _run_differential(SEED ^ 0x5EED, 150)


def test_differential_batch_size_one():
    """Degenerate one-row batches: every batch boundary that can exist
    does exist, so any result that depends on where a batch ends (the
    label-run memo, the MVCC fast path, limit/offset slicing) diverges
    from the row-at-a-time reference here."""
    _run_differential(SEED ^ 0xBA7C1, 150, batch_size=1)


def test_differential_batch_size_two():
    """Two-row batches: the smallest size where a batch can actually
    mix labels, visibilities, and predicate outcomes."""
    _run_differential(SEED ^ 0xBA7C2, 150, batch_size=2)


@pytest.mark.parametrize("workers", [0, 2])
def test_differential_workers(workers, monkeypatch):
    """The parallel-execution matrix leg: the same adversarial stream
    with multi-core scans and per-partition join/aggregate gangs
    enabled.  ``batch_size=32`` keeps the ~250-row tables wide enough
    (several chunks) that the Gather really forks rather than
    degrading to pass-through, and the low ``REPRO_PARALLEL_MIN_ROWS``
    floor lets the optimizer parallelize test-sized tables.  Workers
    may move label checks and suppression decisions into child
    processes; rows, labels, rowcounts, and error types must still
    match the naive serial reference statement-for-statement."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "32")
    _run_differential(SEED ^ 0x70C5 ^ workers, 150,
                      batch_size=32, workers=workers)


def test_differential_workers_spilled(monkeypatch):
    """Parallel grace partitions under a tight budget: spilled hash
    joins and aggregates fan their partitions out to the gang while
    the naive reference replays everything serially in memory."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "32")
    _run_differential(SEED ^ 0x70C5 ^ 0x53A1, 120, batch_size=32,
                      work_mem=1024, workers=2, require_spill=True)


@pytest.mark.parametrize("work_mem,batch_size", [
    (64 * 1024, None),
    (64 * 1024, 1),
    (1024, None),
    (1024, 1),
])
def test_differential_work_mem(work_mem, batch_size):
    """The spill matrix: the same adversarial join stream under 64KB
    and 1KB budgets, at the default and degenerate batch sizes.  A 1KB
    budget forces every hash-join build over a few rows through the
    grace partitioner (recursively), so spilled and in-memory
    executions are cross-checked row-for-row against the naive
    executor — including labels, rowcounts, and error types."""
    _run_differential(SEED ^ 0x53A1 ^ work_mem ^ (batch_size or 0), 120,
                      batch_size=batch_size, work_mem=work_mem,
                      require_spill=(work_mem <= 1024))
