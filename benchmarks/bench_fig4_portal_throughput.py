"""Figure 4: CarTel website throughput (WIPS), TPC-W methodology.

Two configurations, as in the paper:

* **database-bound** — three web servers in front of a slow (disk-bound)
  database (paper: 229.3 vs 230.4 WIPS — no significant difference);
* **web-server-bound** — one web server, database easily keeping up
  (paper: 132.0 vs 103.5 WIPS — IFDB 22% lower, platform overhead).

Per-request service demands (web-tier time and database time) are
*measured* from the real handler code of each system — the baseline
runs the same handlers with all platform label operations compiled out
(plain PHP has none) against the IFC-disabled engine.  The measured
demands are then scaled by two constants modelling the paper's hardware
(weak hyper-threaded P4 web servers; a database server that is fast on
CPU but bound by its disks): ``WEB_CPU_SCALE`` multiplies web time for
both systems, ``DB_SCALE`` multiplies database time for both systems in
the database-bound configuration.  Because both constants apply
identically to IFDB and baseline, the *relative* differences — the
paper's claim — come entirely from measured code.

The closed-loop queueing simulation then finds peak WIPS subject to the
TPC-W p90 < 3 s constraint, in deterministic virtual time.
"""

import pytest

from repro.bench import (
    ReportTable,
    build_cartel_stack,
    measure_service_demands,
    relative,
)
from repro.workloads import ClosedLoopSimulator, ServiceDemand

from .common import SMOKE, report, smoke

WEB_CPU_SCALE = 150.0     # web boxes much weaker than the DB server
DB_SCALE = 40.0           # disk-bound DB in the database-bound config
DB_CONCURRENCY = 4

PAPER = {
    "database-bound": (229.3, 230.4),
    "web-server-bound": (132.0, 103.5),
}


@pytest.fixture(scope="module")
def demands():
    """Measured per-request (web, db) demands for both systems."""
    measured = {}
    for label, ifc in (("baseline", False), ("ifdb", True)):
        stack = build_cartel_stack(ifc_enabled=ifc, n_users=6,
                                   cars_per_user=2,
                                   measurements=smoke(1200, 150),
                                   seed=31)
        measured[label] = measure_service_demands(
            stack, repeats=smoke(40, 3), web_cpu_scale=WEB_CPU_SCALE)
    return measured


def _peak(demand_map, *, n_web, db_scale):
    scaled = {path: ServiceDemand(web=d.web, db=d.db * db_scale)
              for path, d in demand_map.items()}
    simulator = ClosedLoopSimulator(scaled, n_web_servers=n_web,
                                    db_concurrency=DB_CONCURRENCY, seed=5)
    return simulator.peak_throughput(
        duration=smoke(1200.0, 150.0),
        max_clients=smoke(20000, 2000)).throughput


@pytest.fixture(scope="module")
def results(demands):
    rows = {}
    rows["database-bound"] = {
        label: _peak(demands[label], n_web=3, db_scale=DB_SCALE)
        for label in ("baseline", "ifdb")}
    rows["web-server-bound"] = {
        label: _peak(demands[label], n_web=1, db_scale=1.0)
        for label in ("baseline", "ifdb")}
    return rows


def test_fig4_throughput(benchmark, results):
    # Benchmark the simulator itself (one fixed-load run).
    sim_demands = {path: ServiceDemand(0.02, 0.01)
                   for path in ("/get_cars.php", "/cars.php",
                                "/drives.php", "/drives_top.php",
                                "/friends.php", "/edit_account.php")}
    sim = ClosedLoopSimulator(sim_demands, n_web_servers=2, seed=1)
    benchmark(lambda: sim.run(50, 200.0))

    table = ReportTable(
        "Figure 4 — CarTel portal peak WIPS (p90 < 3 s)",
        ["configuration", "paper pg", "paper ifdb", "meas base",
         "meas ifdb", "delta"])
    for config, wips in results.items():
        paper_base, paper_ifdb = PAPER[config]
        table.add(config, paper_base, paper_ifdb,
                  "%.1f" % wips["baseline"], "%.1f" % wips["ifdb"],
                  relative(wips["ifdb"], wips["baseline"]))
    report(table)

    if SMOKE:
        # Smoke mode only proves the script still runs end to end; the
        # tiny population makes the shape statistically meaningless.
        return
    db_bound = results["database-bound"]
    web_bound = results["web-server-bound"]
    db_gap = abs(db_bound["ifdb"] - db_bound["baseline"]) / \
        db_bound["baseline"]
    web_gap = (web_bound["baseline"] - web_bound["ifdb"]) / \
        web_bound["baseline"]
    # Shape: database-bound difference small (paper: none); web-bound
    # clearly penalizes IFDB, and by more than the database-bound case.
    assert db_gap < 0.15
    assert web_gap > 0.05
    assert web_gap > db_gap
