"""WAL commit-path microbenchmark: durability off vs fsync-per-commit
vs group commit, plus recovery replay throughput.

Three configurations run the same seeded insert/update workload:

* **no WAL** — the seed behaviour: commits mutate the heap only;
* **WAL, fsync per commit** — every commit is one record + one fsync
  (``group_commit_ms=0``, single session: nothing to batch);
* **WAL, group commit** — the same number of commits issued from
  concurrent sessions with a commit-delay window, so one fsync covers
  many commits.

Two logic-driven gates (asserted in smoke mode too, so the CI smoke
step enforces them):

* group commit must actually group — fewer commit flushes than
  commits, with at least one flush absorbing ≥ 2 commits;
* recovery must reproduce the workload exactly — the replayed
  database's live row count equals the writer's, and a second replay
  is a no-op.

``BENCH_wal.json`` records commit throughput, per-commit latency,
flush counts, WAL byte volume, and recovery replay rate.
"""

import os
import tempfile
import threading
import time

from repro.bench import ReportTable, relative
from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.db import Database
from repro.db.wal import WAL_STATS

from .common import report, smoke, write_bench_json

N_COMMITS = smoke(2_000, 60)
GROUP_SESSIONS = smoke(8, 4)
GROUP_COMMIT_MS = 2.0

RESULTS = {}


def _stack(wal_path, group_commit_ms=0.0):
    authority = AuthorityState(idgen=SeededIdGenerator(99))
    db = Database(authority, seed=99, wal=wal_path,
                  group_commit_ms=group_commit_ms)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("b").id))
    session.execute("CREATE TABLE ledger (id INT PRIMARY KEY, "
                    "account INT, amount INT)")
    return db, session


def _wal_delta(before, after):
    return {k: after[k] - before[k] for k in after}


def _serial_commits(session, n):
    """One transaction (insert + update) per commit, single session."""
    start = time.perf_counter()
    for i in range(n):
        with session.atomic():
            session.execute("INSERT INTO ledger VALUES (?, ?, ?)",
                            (i, i % 10, 100))
            if i % 4 == 3:
                session.execute(
                    "UPDATE ledger SET amount = amount + 1 WHERE id = ?",
                    (i - 1,))
    return time.perf_counter() - start


def _grouped_commits(db, n, sessions):
    """The same commit count, issued from concurrent sessions in waves
    so the commit-delay window has stragglers to absorb."""
    pool = []
    for s in range(sessions):
        sess = db.connect()
        pool.append(sess)
    done = 0
    start = time.perf_counter()
    wave_id = 0
    while done < n:
        wave = min(sessions, n - done)
        for k in range(wave):
            sess = pool[k]
            sess.begin()
            i = done + k
            sess.execute("INSERT INTO ledger VALUES (?, ?, ?)",
                         (1_000_000 + i, i % 10, 100))
        barrier = threading.Barrier(wave)

        def commit(sess):
            barrier.wait()
            sess.commit()

        threads = [threading.Thread(target=commit, args=(pool[k],))
                   for k in range(wave)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        done += wave
        wave_id += 1
    return time.perf_counter() - start


def test_wal_commit_throughput_and_recovery():
    tmpdir = tempfile.mkdtemp(prefix="bench-wal-")
    outcomes = {}

    # -- no WAL ------------------------------------------------------------
    _db, session = _stack(None)
    seconds = _serial_commits(session, N_COMMITS)
    outcomes["no WAL"] = {"seconds": seconds, "commits": N_COMMITS,
                          "wal": {}}

    # -- WAL, fsync per commit --------------------------------------------
    fsync_path = os.path.join(tmpdir, "fsync.wal")
    db_fsync, session = _stack(fsync_path)
    before = WAL_STATS.snapshot()
    seconds = _serial_commits(session, N_COMMITS)
    outcomes["WAL fsync/commit"] = {
        "seconds": seconds, "commits": N_COMMITS,
        "wal": _wal_delta(before, WAL_STATS.snapshot())}
    # Single session, no delay window: one flush per commit.
    delta = outcomes["WAL fsync/commit"]["wal"]
    assert delta["commits"] == N_COMMITS
    assert delta["commit_flushes"] == N_COMMITS

    # -- WAL, group commit -------------------------------------------------
    group_path = os.path.join(tmpdir, "group.wal")
    db_group, session = _stack(group_path,
                               group_commit_ms=GROUP_COMMIT_MS)
    before = WAL_STATS.snapshot()
    seconds = _grouped_commits(db_group, N_COMMITS, GROUP_SESSIONS)
    after = WAL_STATS.snapshot()
    outcomes["WAL group commit"] = {
        "seconds": seconds, "commits": N_COMMITS,
        "wal": _wal_delta(before, after)}
    delta = outcomes["WAL group commit"]["wal"]
    assert delta["commits"] == N_COMMITS
    # Gate: grouping actually happened.
    assert delta["commit_flushes"] < N_COMMITS, delta
    assert after["group_commit_size"] >= 2, after

    # -- recovery ----------------------------------------------------------
    writer_rows = len(db_group.connect().query("SELECT id FROM ledger"))
    authority = db_group.authority
    recovered = Database(authority)
    start = time.perf_counter()
    replay = recovered.recover(group_path)
    recover_seconds = time.perf_counter() - start
    recovered_rows = len(recovered.connect().query("SELECT id FROM ledger"))
    # Gate: recovery reproduces the workload and replays idempotently.
    assert recovered_rows == writer_rows, (recovered_rows, writer_rows)
    again = recovered.recover(group_path)
    assert again["applied"] == 0, again
    RESULTS["recovery"] = {
        "seconds": recover_seconds,
        "transactions": replay["transactions"],
        "txn_per_second": (replay["transactions"] / recover_seconds
                           if recover_seconds else None),
        "rows": recovered_rows,
    }

    # -- report ------------------------------------------------------------
    table = ReportTable(
        "WAL commit path — %d commits (group: %d sessions, %.1fms window)"
        % (N_COMMITS, GROUP_SESSIONS, GROUP_COMMIT_MS),
        ["configuration", "commits/s", "ms/commit", "flushes",
         "max batch", "wal KB", "vs no WAL"])
    base = outcomes["no WAL"]["seconds"]
    for mode in ("no WAL", "WAL fsync/commit", "WAL group commit"):
        entry = outcomes[mode]
        wal = entry["wal"]
        table.add(mode,
                  "%.0f" % (entry["commits"] / entry["seconds"]),
                  "%.3f" % (1000.0 * entry["seconds"] / entry["commits"]),
                  wal.get("commit_flushes", "-"),
                  wal.get("group_commit_size", "-") if wal else "-",
                  "%.0f" % (wal.get("bytes", 0) / 1024.0) if wal else "-",
                  relative(entry["seconds"], base))
        RESULTS[mode] = {"seconds": entry["seconds"],
                         "commits": entry["commits"], "wal": wal}
    report(table)
    table2 = ReportTable("WAL recovery replay", ["transactions", "seconds",
                                                 "txn/s"])
    table2.add(replay["transactions"], "%.4f" % recover_seconds,
               "%.0f" % (replay["transactions"] / recover_seconds)
               if recover_seconds else "-")
    report(table2)
    write_bench_json("wal", RESULTS)
