"""Registers the ``--smoke`` flag so pytest accepts it.

``benchmarks/common.py`` reads the flag straight from ``sys.argv`` at
import time (it must work outside pytest too); this hook only keeps
pytest's argument parser from rejecting it.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run benchmarks with tiny row counts and fixed seeds "
             "(see benchmarks/common.py)")
