"""Sort/aggregate spill microbenchmarks: memory-bounded ORDER BY,
GROUP BY, and Top-N.

Three logic-driven gates (they assert in smoke mode too, so the CI
smoke step enforces them like the join-spill gates):

* **External merge sort** — a 100k-row ORDER BY under a 64KB
  ``work_mem`` must spool sorted runs (EXPLAIN shows ``runs >= 2``
  with estimated peak memory within the budget), complete, and return
  *exactly* the unbounded ordering;
* **Grace hash aggregation** — a GROUP BY whose group state exceeds
  the budget must grace-partition (EXPLAIN ``spill_partitions >= 1``)
  and produce group rows and aggregates identical to the in-memory
  aggregation;
* **Top-N** — ORDER BY … LIMIT under the same budget must run its
  bounded heap without touching disk and match the full sort's
  prefix.

``BENCH_sort_spill.json`` records timings and spill statistics at the
repo root; CI uploads it with the other BENCH_* artifacts.
"""

import time

from repro.bench import ReportTable, relative
from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.core.labels import EMPTY_LABEL
from repro.db import Database
from repro.db.spill import SPILL_STATS

from .common import report, smoke, write_bench_json

BIG_ROWS = smoke(100_000, 5_000)
N_GROUPS = smoke(4000, 1000)
WORK_MEM = 64 * 1024

RESULTS = {}

SORT_SQL = "SELECT id, v FROM big ORDER BY v DESC, id"
AGG_SQL = "SELECT grp, COUNT(*), MAX(v), SUM(id) FROM big GROUP BY grp"
TOPN_SQL = "SELECT id, v FROM big ORDER BY v, id LIMIT 100"


def _stack(work_mem):
    authority = AuthorityState(idgen=SeededIdGenerator(88))
    db = Database(authority, seed=88, batch_size=1024, work_mem=work_mem)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("b").id))
    session.execute("CREATE TABLE big (id INT PRIMARY KEY, grp INT, "
                    "v FLOAT, pad TEXT)")
    # Load through the heap directly (the benchmark measures the sort
    # and the aggregation, not INSERT statement dispatch).
    table = db.catalog.get_table("big")
    txn = db.txn_manager.begin()
    for i in range(BIG_ROWS):
        values = (i, (i * 7919) % N_GROUPS, (i * 37 % 9973) / 10.0,
                  "pad-%04d" % (i % 1000))
        table.append(values, EMPTY_LABEL, EMPTY_LABEL, txn.xid)
    db.txn_manager.commit(txn)
    session.execute("ANALYZE")
    return db, session


def _timed(session, sql):
    before = SPILL_STATS.snapshot()
    start = time.perf_counter()
    rows = [tuple(r) for r in session.execute(sql).rows]
    elapsed = time.perf_counter() - start
    after = SPILL_STATS.snapshot()
    return {"rows": rows, "seconds": elapsed,
            "spill": {k: after[k] - before[k] for k in after}}


def test_external_sort_spills_under_budget():
    outcomes = {}
    for mode, work_mem in (("unbounded", 0), ("64KB budget", WORK_MEM)):
        _db, session = _stack(work_mem)
        outcomes[mode] = _timed(session, SORT_SQL)
        if work_mem:
            plan = [r[0] for r in session.execute("EXPLAIN " + SORT_SQL)]
            sort_line = next(line for line in plan if "Sort" in line)
            assert "runs=" in sort_line, sort_line
            runs = int(sort_line.split("runs=")[1].split()[0])
            est_mem = int(sort_line.split("mem=")[1].split("B")[0])
            assert runs >= 2
            assert est_mem <= work_mem, sort_line
            assert outcomes[mode]["spill"]["sort_spills"] >= 1
            assert outcomes[mode]["spill"]["sort_runs"] >= 2
            RESULTS["sort_explain"] = {"runs": runs,
                                       "est_mem_bytes": est_mem}
    # Identical *ordering*, not just the same set: the k-way merge must
    # reproduce the in-memory sort exactly.
    assert outcomes["64KB budget"]["rows"] == outcomes["unbounded"]["rows"]

    table = ReportTable(
        "External merge sort — %d rows, work_mem=64KB" % BIG_ROWS,
        ["configuration", "out rows", "seconds", "runs", "rows spilled",
         "vs unbounded"])
    for mode in ("unbounded", "64KB budget"):
        entry = outcomes[mode]
        table.add(mode, len(entry["rows"]), "%.4f" % entry["seconds"],
                  entry["spill"]["sort_runs"],
                  entry["spill"]["rows_spilled"],
                  relative(entry["seconds"],
                           outcomes["unbounded"]["seconds"]))
    report(table)
    RESULTS["sort"] = {
        mode: {"out_rows": len(entry["rows"]),
               "seconds": entry["seconds"], "stats": entry["spill"]}
        for mode, entry in outcomes.items()}


def test_grace_aggregation_spills_under_budget():
    outcomes = {}
    for mode, work_mem in (("unbounded", 0), ("64KB budget", WORK_MEM)):
        _db, session = _stack(work_mem)
        outcomes[mode] = _timed(session, AGG_SQL)
        if work_mem:
            plan = [r[0] for r in session.execute("EXPLAIN " + AGG_SQL)]
            agg_line = next(line for line in plan if "Aggregate" in line)
            assert "spill_partitions=" in agg_line, agg_line
            partitions = int(agg_line.split("spill_partitions=")[1]
                             .split()[0])
            est_mem = int(agg_line.split("mem=")[1].split("B")[0])
            assert partitions >= 1
            assert est_mem <= work_mem, agg_line
            assert outcomes[mode]["spill"]["agg_spills"] >= 1
            assert outcomes[mode]["spill"]["agg_partitions"] >= 1
            RESULTS["agg_explain"] = {"partitions": partitions,
                                      "est_mem_bytes": est_mem}
    # Grace partitioning may emit groups in a different order; the
    # group *contents* must be identical.
    assert (sorted(outcomes["64KB budget"]["rows"])
            == sorted(outcomes["unbounded"]["rows"]))
    assert len(outcomes["unbounded"]["rows"]) == N_GROUPS

    table = ReportTable(
        "Grace hash aggregation — %d rows, %d groups, work_mem=64KB"
        % (BIG_ROWS, N_GROUPS),
        ["configuration", "groups", "seconds", "partitions",
         "rows spilled", "vs unbounded"])
    for mode in ("unbounded", "64KB budget"):
        entry = outcomes[mode]
        table.add(mode, len(entry["rows"]), "%.4f" % entry["seconds"],
                  entry["spill"]["agg_partitions"],
                  entry["spill"]["rows_spilled"],
                  relative(entry["seconds"],
                           outcomes["unbounded"]["seconds"]))
    report(table)
    RESULTS["agg"] = {
        mode: {"groups": len(entry["rows"]),
               "seconds": entry["seconds"], "stats": entry["spill"]}
        for mode, entry in outcomes.items()}


def test_topn_heap_stays_in_memory():
    outcomes = {}
    for mode, work_mem in (("unbounded", 0), ("64KB budget", WORK_MEM)):
        _db, session = _stack(work_mem)
        outcomes[mode] = _timed(session, TOPN_SQL)
        if work_mem:
            # The 100-row heap fits the budget: no runs, no disk.
            assert outcomes[mode]["spill"]["sort_spills"] == 0, \
                outcomes[mode]["spill"]
            assert outcomes[mode]["spill"]["rows_spilled"] == 0
    assert outcomes["64KB budget"]["rows"] == outcomes["unbounded"]["rows"]
    assert len(outcomes["unbounded"]["rows"]) == 100

    table = ReportTable(
        "Top-N bounded heap — %d rows, LIMIT 100, work_mem=64KB"
        % BIG_ROWS,
        ["configuration", "out rows", "seconds", "rows spilled",
         "vs unbounded"])
    for mode in ("unbounded", "64KB budget"):
        entry = outcomes[mode]
        table.add(mode, len(entry["rows"]), "%.4f" % entry["seconds"],
                  entry["spill"]["rows_spilled"],
                  relative(entry["seconds"],
                           outcomes["unbounded"]["seconds"]))
    report(table)
    RESULTS["topn"] = {
        mode: {"out_rows": len(entry["rows"]),
               "seconds": entry["seconds"], "stats": entry["spill"]}
        for mode, entry in outcomes.items()}
    write_bench_json("sort_spill", RESULTS)
