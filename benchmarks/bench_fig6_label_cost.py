"""Figure 6: DBT-2 (TPC-C) throughput vs tags per label.

The paper ran an in-memory database (10 warehouses, right axis) and an
on-disk database (150 warehouses, left axis), with every tuple carrying
0-10 tags.  Each tag cost ~0.6% of throughput in memory and ~1% on
disk, because labels add 4 bytes/tag to every tuple, shrinking
tuples-per-page and increasing I/O and cache pressure (section 8.3).

Here the same mechanism is exercised at laptop scale: the in-memory
configuration uses an unbounded buffer cache, the on-disk configuration
a small cache with a per-miss I/O penalty.  NOTPM is computed against
wall time plus simulated I/O time.  Expected shape: NOTPM falls roughly
linearly with tags/label, with a steeper relative slope on disk, and a
flat baseline.
"""

import time

import pytest

from repro.core import rules
from repro.db import Database, metrics
from repro.db.physical import DEFAULT_BATCH_SIZE
from repro.bench import ReportTable
from repro.workloads import TPCCConfig, TPCCWorkload

from .common import SMOKE, report, smoke, write_bench_json

TAG_POINTS = (0, 2, 4, 6, 8, 10) if not SMOKE else (0, 10)
TXNS = 400 if not SMOKE else 30
MEM = {"buffer_pages": None, "io_penalty": 0.0}
DISK = {"buffer_pages": 96, "io_penalty": 0.0005, "page_size": 2048}


def _notpm(*, ifc_enabled: bool, tags: int, storage: dict) -> float:
    """Best-of-two NOTPM (minimizes GC/scheduler interference)."""
    import gc
    db = Database(ifc_enabled=ifc_enabled, seed=13, **storage)
    config = TPCCConfig(warehouses=smoke(2, 1),
                        districts_per_warehouse=smoke(3, 2),
                        customers_per_district=smoke(20, 10),
                        items=smoke(100, 50),
                        initial_orders_per_district=smoke(10, 5),
                        tags_per_label=tags, seed=13)
    workload = TPCCWorkload(db, config)
    workload.load()
    workload.run(smoke(50, 5))                    # warm plan/parse caches
    best = 0.0
    for _round in range(smoke(2, 1)):
        db.buffer_cache.reset()
        commits_before = workload.stats.new_order_commits
        gc.collect()
        start = time.perf_counter()
        workload.run(TXNS)
        wall = time.perf_counter() - start
        effective = wall + db.buffer_cache.stats.io_time
        commits = workload.stats.new_order_commits - commits_before
        best = max(best, commits / (effective / 60.0))
    return best


@pytest.fixture(scope="module")
def sweep():
    results = {"memory": {}, "disk": {}}
    results["memory"]["baseline"] = _notpm(ifc_enabled=False, tags=0,
                                           storage=MEM)
    results["disk"]["baseline"] = _notpm(ifc_enabled=False, tags=0,
                                         storage=DISK)
    for tags in TAG_POINTS:
        results["memory"][tags] = _notpm(ifc_enabled=True, tags=tags,
                                         storage=MEM)
        results["disk"][tags] = _notpm(ifc_enabled=True, tags=tags,
                                       storage=DISK)
    return results


def test_fig6_label_cost(benchmark, sweep):
    table = ReportTable(
        "Figure 6 — DBT-2 NOTPM vs tags/label "
        "(paper slope: ~-0.6%/tag memory, ~-1%/tag disk)",
        ["tags/label", "in-memory NOTPM", "rel", "on-disk NOTPM", "rel"])
    mem0 = sweep["memory"][0]
    disk0 = sweep["disk"][0]
    table.add("baseline (no IFC)",
              "%.0f" % sweep["memory"]["baseline"],
              "%.3f" % (sweep["memory"]["baseline"] / mem0),
              "%.0f" % sweep["disk"]["baseline"],
              "%.3f" % (sweep["disk"]["baseline"] / disk0))
    for tags in TAG_POINTS:
        table.add(tags, "%.0f" % sweep["memory"][tags],
                  "%.3f" % (sweep["memory"][tags] / mem0),
                  "%.0f" % sweep["disk"][tags],
                  "%.3f" % (sweep["disk"][tags] / disk0))
    mem_slope = _fit_per_tag_cost({t: sweep["memory"][t]
                                   for t in TAG_POINTS})
    disk_slope = _fit_per_tag_cost({t: sweep["disk"][t]
                                    for t in TAG_POINTS})
    table.add("per-tag cost (fit)", "%.2f%%" % (100 * mem_slope), "",
              "%.2f%%" % (100 * disk_slope), "")
    report(table)

    if SMOKE:
        # Smoke mode: the run proves the script executes; 30 tiny
        # transactions say nothing about slopes.
        return
    # Shape assertions.  The disk configuration's per-tag cost is driven
    # by the deterministic page model and must be clearly positive and
    # larger than the in-memory cost; the in-memory per-tag cost is well
    # under 2% per tag (paper: 0.6%) and may sit inside CPU-timing noise,
    # so it is only required not to be a material *improvement*.
    assert sweep["disk"][10] < sweep["disk"][0] * 0.95
    assert disk_slope > 0.01
    assert disk_slope > mem_slope
    assert mem_slope > -0.01


def _tpcc_stack(*, batch_size, naive=False):
    db = Database(ifc_enabled=True, seed=13, batch_size=batch_size,
                  naive_plans=naive)
    config = TPCCConfig(warehouses=smoke(2, 1),
                        districts_per_warehouse=smoke(3, 2),
                        customers_per_district=smoke(20, 10),
                        items=smoke(100, 50),
                        initial_orders_per_district=smoke(10, 5),
                        tags_per_label=4, seed=13)
    workload = TPCCWorkload(db, config)
    workload.load()
    return db, workload


def _measure_label_checks(*, batch_size, naive=False):
    """covers()/strip() invocations over two seeded DBT-2 phases.

    Identical seeds produce identical statement streams, so executors
    are compared on exactly the same work; only the loop shape (and,
    for naive, the plans) differ.  Two phases because they stress
    opposite ends of the batching policy:

    * **transactions** — the TPC-C mix: index probes touching 1-15
      tuples each, which the estimate-driven stamping deliberately
      keeps on the row path (below ``BATCH_MIN_INDEX_ROWS`` the batch
      machinery costs more than it saves), so the count must simply
      never regress;
    * **scan** — labeled full-table aggregations over the same
      database (``order_line``/``stock``), where label-run batching
      collapses one ``covers`` per tuple to one per distinct label per
      batch.
    """
    db, workload = _tpcc_stack(batch_size=batch_size, naive=naive)
    session = workload.session       # carries every tpcc tag: sees all
    workload.run(smoke(50, 5))                    # warm plan caches
    transactions = smoke(200, 20)
    before = _labels_snapshot()
    workload.run(transactions)
    mid = _labels_snapshot()
    scan_queries = smoke(10, 2)
    for _ in range(scan_queries):
        session.execute("SELECT COUNT(*), SUM(ol_amount) FROM OrderLine")
        session.execute("SELECT COUNT(*) FROM Stock WHERE s_quantity >= 0")
    after = _labels_snapshot()
    return {
        "transactions": {
            "covers_calls": mid["covers_calls"] - before["covers_calls"],
            "count": transactions,
        },
        "scan": {
            "covers_calls": after["covers_calls"] - mid["covers_calls"],
            "count": scan_queries * 2,
        },
    }


def _labels_snapshot():
    """Read the rules counters *through* the unified registry, checking
    byte-for-byte agreement with the module singleton — the two views
    must be aliases, never copies (db/metrics.py)."""
    through_registry = metrics.REGISTRY.snapshot()["labels"]
    direct = rules.COUNTERS.snapshot()
    assert through_registry == direct, (through_registry, direct)
    return through_registry


@pytest.fixture(scope="module")
def label_checks():
    # Batch sizes are pinned explicitly (not via REPRO_BATCH_SIZE) so
    # this comparison measures the same thing in every environment —
    # including the degenerate-batch CI job.
    return {
        "batched": _measure_label_checks(batch_size=DEFAULT_BATCH_SIZE),
        "row": _measure_label_checks(batch_size=0),
        "naive": _measure_label_checks(batch_size=0, naive=True),
    }


def test_fig6_label_check_amortization(label_checks, sweep):
    """The tentpole's headline: batching must never regress the
    Query-by-Label check count versus the row-at-a-time executors, and
    must collapse it on scan-shaped work.  These assertions run in
    smoke mode too (the counts are logic-driven, not timing-driven), so
    CI's smoke step is the regression gate; the JSON lands at the repo
    root for the artifact upload and the cross-PR perf trail.
    """
    table = ReportTable(
        "Figure 6 companion — Query-by-Label checks, same seeded DBT-2 "
        "streams (rules-cache instrumentation)",
        ["executor", "txn-mix covers", "per txn", "scan covers",
         "per scan query"])
    for name in ("batched", "row", "naive"):
        entry = label_checks[name]
        table.add(name, entry["transactions"]["covers_calls"],
                  "%.1f" % (entry["transactions"]["covers_calls"]
                            / entry["transactions"]["count"]),
                  entry["scan"]["covers_calls"],
                  "%.1f" % (entry["scan"]["covers_calls"]
                            / entry["scan"]["count"]))
    report(table)
    write_bench_json("fig6", {
        "notpm": {str(k): v for k, v in sweep["memory"].items()},
        "notpm_disk": {str(k): v for k, v in sweep["disk"].items()},
        "label_checks": label_checks,
    })
    batched = label_checks["batched"]
    row = label_checks["row"]
    naive = label_checks["naive"]
    # Gate 1: the probe-heavy transaction mix must never regress
    # against either row-at-a-time baseline (the estimate-driven
    # stamping keeps sub-floor probes on the row path, so equality is
    # expected — and far below the naive full-scan executor).
    assert batched["transactions"]["covers_calls"] \
        <= row["transactions"]["covers_calls"]
    assert batched["transactions"]["covers_calls"] \
        <= naive["transactions"]["covers_calls"]
    # Gate 2: scan-shaped work must show the label-run collapse — one
    # covers per distinct label per batch instead of one per tuple.
    assert batched["scan"]["covers_calls"] \
        <= row["scan"]["covers_calls"]
    if not SMOKE:
        assert batched["scan"]["covers_calls"] \
            < row["scan"]["covers_calls"] * 0.1, \
            (batched["scan"], row["scan"])
        # Gate 3: the seeded streams are deterministic, so the batched
        # counts are exact pins (they match the committed
        # BENCH_fig6.json) — any drift means the executor's label-check
        # behaviour changed, registry refactors included.
        assert batched["transactions"]["covers_calls"] == 8633, \
            batched["transactions"]
        assert batched["scan"]["covers_calls"] == 40, batched["scan"]


def _fit_per_tag_cost(points) -> float:
    """Least-squares slope of relative NOTPM per tag (sign-flipped so a
    positive value means 'each tag costs this fraction')."""
    xs = sorted(points)
    base = points[xs[0]]
    ys = [points[x] / base for x in xs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return -(cov / var)

    # pytest-benchmark: one labelled new-order transaction.
    db = Database(seed=14)
    workload = TPCCWorkload(db, TPCCConfig(
        warehouses=1, districts_per_warehouse=2, customers_per_district=10,
        items=50, initial_orders_per_district=5, tags_per_label=2, seed=14))
    workload.load()
    benchmark(workload.txn_new_order)
