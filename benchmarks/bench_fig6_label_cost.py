"""Figure 6: DBT-2 (TPC-C) throughput vs tags per label.

The paper ran an in-memory database (10 warehouses, right axis) and an
on-disk database (150 warehouses, left axis), with every tuple carrying
0-10 tags.  Each tag cost ~0.6% of throughput in memory and ~1% on
disk, because labels add 4 bytes/tag to every tuple, shrinking
tuples-per-page and increasing I/O and cache pressure (section 8.3).

Here the same mechanism is exercised at laptop scale: the in-memory
configuration uses an unbounded buffer cache, the on-disk configuration
a small cache with a per-miss I/O penalty.  NOTPM is computed against
wall time plus simulated I/O time.  Expected shape: NOTPM falls roughly
linearly with tags/label, with a steeper relative slope on disk, and a
flat baseline.
"""

import time

import pytest

from repro.db import Database
from repro.bench import ReportTable
from repro.workloads import TPCCConfig, TPCCWorkload

from .common import SMOKE, report, smoke

TAG_POINTS = (0, 2, 4, 6, 8, 10) if not SMOKE else (0, 10)
TXNS = 400 if not SMOKE else 30
MEM = {"buffer_pages": None, "io_penalty": 0.0}
DISK = {"buffer_pages": 96, "io_penalty": 0.0005, "page_size": 2048}


def _notpm(*, ifc_enabled: bool, tags: int, storage: dict) -> float:
    """Best-of-two NOTPM (minimizes GC/scheduler interference)."""
    import gc
    db = Database(ifc_enabled=ifc_enabled, seed=13, **storage)
    config = TPCCConfig(warehouses=smoke(2, 1),
                        districts_per_warehouse=smoke(3, 2),
                        customers_per_district=smoke(20, 10),
                        items=smoke(100, 50),
                        initial_orders_per_district=smoke(10, 5),
                        tags_per_label=tags, seed=13)
    workload = TPCCWorkload(db, config)
    workload.load()
    workload.run(smoke(50, 5))                    # warm plan/parse caches
    best = 0.0
    for _round in range(smoke(2, 1)):
        db.buffer_cache.reset()
        commits_before = workload.stats.new_order_commits
        gc.collect()
        start = time.perf_counter()
        workload.run(TXNS)
        wall = time.perf_counter() - start
        effective = wall + db.buffer_cache.stats.io_time
        commits = workload.stats.new_order_commits - commits_before
        best = max(best, commits / (effective / 60.0))
    return best


@pytest.fixture(scope="module")
def sweep():
    results = {"memory": {}, "disk": {}}
    results["memory"]["baseline"] = _notpm(ifc_enabled=False, tags=0,
                                           storage=MEM)
    results["disk"]["baseline"] = _notpm(ifc_enabled=False, tags=0,
                                         storage=DISK)
    for tags in TAG_POINTS:
        results["memory"][tags] = _notpm(ifc_enabled=True, tags=tags,
                                         storage=MEM)
        results["disk"][tags] = _notpm(ifc_enabled=True, tags=tags,
                                       storage=DISK)
    return results


def test_fig6_label_cost(benchmark, sweep):
    table = ReportTable(
        "Figure 6 — DBT-2 NOTPM vs tags/label "
        "(paper slope: ~-0.6%/tag memory, ~-1%/tag disk)",
        ["tags/label", "in-memory NOTPM", "rel", "on-disk NOTPM", "rel"])
    mem0 = sweep["memory"][0]
    disk0 = sweep["disk"][0]
    table.add("baseline (no IFC)",
              "%.0f" % sweep["memory"]["baseline"],
              "%.3f" % (sweep["memory"]["baseline"] / mem0),
              "%.0f" % sweep["disk"]["baseline"],
              "%.3f" % (sweep["disk"]["baseline"] / disk0))
    for tags in TAG_POINTS:
        table.add(tags, "%.0f" % sweep["memory"][tags],
                  "%.3f" % (sweep["memory"][tags] / mem0),
                  "%.0f" % sweep["disk"][tags],
                  "%.3f" % (sweep["disk"][tags] / disk0))
    mem_slope = _fit_per_tag_cost({t: sweep["memory"][t]
                                   for t in TAG_POINTS})
    disk_slope = _fit_per_tag_cost({t: sweep["disk"][t]
                                    for t in TAG_POINTS})
    table.add("per-tag cost (fit)", "%.2f%%" % (100 * mem_slope), "",
              "%.2f%%" % (100 * disk_slope), "")
    report(table)

    if SMOKE:
        # Smoke mode: the run proves the script executes; 30 tiny
        # transactions say nothing about slopes.
        return
    # Shape assertions.  The disk configuration's per-tag cost is driven
    # by the deterministic page model and must be clearly positive and
    # larger than the in-memory cost; the in-memory per-tag cost is well
    # under 2% per tag (paper: 0.6%) and may sit inside CPU-timing noise,
    # so it is only required not to be a material *improvement*.
    assert sweep["disk"][10] < sweep["disk"][0] * 0.95
    assert disk_slope > 0.01
    assert disk_slope > mem_slope
    assert mem_slope > -0.01


def _fit_per_tag_cost(points) -> float:
    """Least-squares slope of relative NOTPM per tag (sign-flipped so a
    positive value means 'each tag costs this fraction')."""
    xs = sorted(points)
    base = points[xs[0]]
    ys = [points[x] / base for x in xs]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return -(cov / var)

    # pytest-benchmark: one labelled new-order transaction.
    db = Database(seed=14)
    workload = TPCCWorkload(db, TPCCConfig(
        warehouses=1, districts_per_warehouse=2, customers_per_district=10,
        items=50, initial_orders_per_district=5, tags_per_label=2, seed=14))
    workload.load()
    benchmark(workload.txn_new_order)
