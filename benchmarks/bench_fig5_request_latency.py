"""Figure 5: CarTel web request latency on an idle system.

A single client issues requests serially against IFDB+platform-IF and
against the baseline (same engine and platform, IFC disabled).  The
paper reports a weighted-mean latency increase of ~24%, dominated by
``drives.php`` (per-friend label work); the expected *shape* here is an
IFDB latency increase on every script with ``drives.php`` showing the
largest absolute delta.
"""

import pytest

from repro.bench import (
    ReportTable,
    build_cartel_stack,
    measure_request_latency,
    relative,
)
from repro.workloads import REQUEST_MIX

from .common import SMOKE, report, smoke, write_bench_json

SCRIPTS = [path for path, _w in REQUEST_MIX]
#: Figure 5's approximate bar heights (ms), for the comparison column.
PAPER_MS = {
    "/get_cars.php": (17, 22),
    "/cars.php": (18, 22),
    "/drives.php": (44, 65),
    "/drives_top.php": (30, 36),
    "/friends.php": (17, 21),
    "/edit_account.php": (16, 20),
}


@pytest.fixture(scope="module")
def stacks():
    measurements = smoke(900, 120)
    ifdb = build_cartel_stack(ifc_enabled=True, n_users=6, cars_per_user=2,
                              measurements=measurements, seed=21)
    base = build_cartel_stack(ifc_enabled=False, n_users=6, cars_per_user=2,
                              measurements=measurements, seed=21)
    return ifdb, base


@pytest.mark.parametrize("path", SCRIPTS)
def test_fig5_latency(benchmark, stacks, path):
    """pytest-benchmark timing of each script on the IFDB stack."""
    import random
    ifdb, _base = stacks
    rng = random.Random(3)
    request = ifdb.request(rng, path)
    ifdb.web.handle(request)                     # warm caches
    result = benchmark(lambda: ifdb.web.handle(request))


def test_fig5_report(benchmark, stacks):
    ifdb, base = stacks
    import random
    rng = random.Random(9)
    request = ifdb.request(rng, "/cars.php")
    benchmark(lambda: ifdb.web.handle(request))
    table = ReportTable(
        "Figure 5 — request latency, idle system "
        "(paper: ms on 2008 hardware; measured: ms on this engine)",
        ["script", "paper pg+php", "paper ifdb", "base ms", "ifdb ms",
         "delta"])
    weighted_base = 0.0
    weighted_ifdb = 0.0
    weights = dict(REQUEST_MIX)
    repeats = smoke(60, 8)
    per_script = {}
    for path in SCRIPTS:
        # Interleaved, median-of-60 comparisons: the handlers run in
        # tens of microseconds, where scheduler noise swamps means.
        base_ms = min(measure_request_latency(base, path,
                                              repeats=repeats).median,
                      measure_request_latency(base, path,
                                              repeats=repeats).median) * 1e3
        ifdb_ms = min(measure_request_latency(ifdb, path,
                                              repeats=repeats).median,
                      measure_request_latency(ifdb, path,
                                              repeats=repeats).median) * 1e3
        paper_base, paper_ifdb = PAPER_MS[path]
        table.add(path, paper_base, paper_ifdb, "%.3f" % base_ms,
                  "%.3f" % ifdb_ms, relative(ifdb_ms, base_ms))
        per_script[path] = {"base": base_ms, "ifdb": ifdb_ms}
        weighted_base += weights[path] * base_ms
        weighted_ifdb += weights[path] * ifdb_ms
    table.add("weighted mean", "", "(paper: +24%)",
              "%.3f" % weighted_base, "%.3f" % weighted_ifdb,
              relative(weighted_ifdb, weighted_base))
    report(table)
    write_bench_json("fig5", {
        "per_script_ms": per_script,
        "weighted_mean_ms": {"base": weighted_base, "ifdb": weighted_ifdb},
        "overhead": (weighted_ifdb / weighted_base - 1.0)
        if weighted_base else None,
    })
    # Shape assertions: IFDB costs more overall (skipped in smoke mode,
    # where the handful of repeats is pure noise).
    if not SMOKE:
        assert weighted_ifdb > weighted_base
