"""Figure 3: the CarTel web benchmark request distribution.

Verifies (and prints) that the load generator's empirical mix matches
the paper's table, and benchmarks the sampling hot path.
"""

import random

from repro.bench import ReportTable
from repro.workloads import REQUEST_MIX, empirical_mix, sample_request

from .common import report, smoke

PAPER_MIX = {
    "/get_cars.php": 0.50,
    "/cars.php": 0.30,
    "/drives.php": 0.08,
    "/drives_top.php": 0.08,
    "/friends.php": 0.03,
    "/edit_account.php": 0.01,
}


def test_fig3_request_mix(benchmark):
    rng = random.Random(42)
    benchmark(lambda: sample_request(rng))

    table = ReportTable(
        "Figure 3 — CarTel request mix (paper freq vs generator freq)",
        ["request", "paper", "generated"])
    for path, observed in empirical_mix(smoke(60000, 8000), seed=1):
        table.add(path, "%.2f" % PAPER_MIX[path], "%.3f" % observed)
        assert abs(observed - PAPER_MIX[path]) < smoke(0.01, 0.02)
    report(table)
