"""Section 8.2.2: sensor data processing throughput.

Replays GPS measurements as fast as possible (200 inserts per
transaction, two derived-state triggers per insert).  Paper: PostgreSQL
2479 vs IFDB 2439 measurements/s — a 1.6% penalty for labelling data
and storing labels.  Expected shape: a single-digit-percent penalty.
"""

from repro.bench import ReportTable, measure_ingest_pair, relative

from .common import SMOKE, report, smoke

PAPER_BASE = 2479.0
PAPER_IFDB = 2439.0
N_MEASUREMENTS = smoke(3000, 300)


def test_sensor_ingest_throughput(benchmark):
    base, ifdb = measure_ingest_pair(measurements=N_MEASUREMENTS)

    table = ReportTable(
        "Section 8.2.2 — sensor ingest throughput (measurements/s)",
        ["system", "paper", "measured", "delta vs base"])
    table.add("PostgreSQL / baseline", "%.0f" % PAPER_BASE,
              "%.0f" % base, "")
    table.add("IFDB", "%.0f" % PAPER_IFDB, "%.0f" % ifdb,
              relative(ifdb, base))
    table.add("paper overhead", "-1.6%", "", "")
    report(table)

    # Shape: IFDB within 15% of baseline (paper: 1.6%).  Smoke mode
    # runs a few hundred inserts — pure noise, so no shape claims.
    if not SMOKE:
        assert ifdb < base * 1.02        # labels are never free
        assert ifdb > base * 0.85

    # pytest-benchmark: time one 200-insert batch on the IFDB stack.
    from repro.bench import build_cartel_stack
    from repro.apps.cartel import SensorProcessor, TraceGenerator
    from repro.core.process import IFCProcess
    stack = build_cartel_stack(ifc_enabled=True, n_users=3,
                               cars_per_user=1, measurements=100, seed=55)
    probe = IFCProcess(stack.app.authority, stack.app.ingestd.id)
    probe.add_secrecy(stack.app.all_drives.id)
    car_ids = [r[0] for r in stack.db.connect(probe).query(
        "SELECT carid FROM Cars")]
    generator = TraceGenerator(car_ids, seed=56, start_ts=9_000_000.0)
    processor = SensorProcessor(stack.app)
    batches = iter(lambda: list(generator.measurements(200)), None)

    def one_batch():
        processor.process_measurements(next(batches))

    benchmark.pedantic(one_batch, rounds=5, iterations=1)
