"""Join microbenchmarks: batched probe dedup and grace spilling.

Two logic-driven gates (they assert in smoke mode too, so the CI smoke
step enforces them like the fig6 label-check gate):

* **IndexLoopJoin probe dedup** — a 4k-row outer side with only 10
  distinct join keys must probe the inner index at least 20% fewer
  times batched than row-at-a-time (it is ~100x fewer: one probe per
  distinct key per batch), with identical results;
* **HashJoin spilling** — a 100k-row build side joined under a 64KB
  ``work_mem`` must actually spill (EXPLAIN shows
  ``spill_partitions >= 1`` with estimated peak memory within the
  budget), complete, and return exactly the unbounded result.

``BENCH_join_spill.json`` records the probe counts, spill statistics,
and timings at the repo root; CI uploads it with the other BENCH_*
artifacts, which is where the per-run spill stats land.
"""

import time

import pytest

from repro.bench import ReportTable, relative
from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.core.labels import EMPTY_LABEL
from repro.db import Database
from repro.db import indexes
from repro.db.spill import SPILL_STATS

from .common import SMOKE, report, smoke, write_bench_json

OUTER_ROWS = smoke(4000, 400)
ITEM_ROWS = smoke(50_000, 2_000)
BIG_ROWS = smoke(100_000, 5_000)
PROBE_ROWS = smoke(100, 30)
WORK_MEM = 64 * 1024

RESULTS = {}


def _connect(*, batch_size, work_mem):
    authority = AuthorityState(idgen=SeededIdGenerator(77))
    db = Database(authority, seed=77, batch_size=batch_size,
                  work_mem=work_mem)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("b").id))
    return db, session


def _bulk_load(db, table_name, rows):
    """Load rows through the heap directly (the benchmark measures the
    join, not INSERT statement dispatch); labels stay public."""
    table = db.catalog.get_table(table_name)
    txn = db.txn_manager.begin()
    for values in rows:
        table.append(tuple(values), EMPTY_LABEL, EMPTY_LABEL, txn.xid)
    db.txn_manager.commit(txn)


# ---------------------------------------------------------------------------
# batched IndexLoopJoin: one probe per distinct key per batch
# ---------------------------------------------------------------------------

ORDERS_JOIN = ("SELECT COUNT(*), SUM(o.qty) FROM orders o "
               "JOIN items i ON i.item = o.item")


def _probe_stack(batch_size):
    db, session = _connect(batch_size=batch_size, work_mem=0)
    session.execute("CREATE TABLE items (item INT PRIMARY KEY, "
                    "price FLOAT)")
    session.execute("CREATE TABLE orders (oid INT PRIMARY KEY, "
                    "item INT, qty INT)")
    _bulk_load(db, "items", ((i, i * 0.5) for i in range(ITEM_ROWS)))
    # Duplicate-heavy on purpose: 10 hot items across the whole outer.
    _bulk_load(db, "orders", ((i, i % 10, 1 + i % 7)
                              for i in range(OUTER_ROWS)))
    session.execute("ANALYZE")
    return db, session


def test_index_loop_join_probe_dedup():
    outcomes = {}
    for mode, batch_size in (("row", 0), ("batched", 1024)):
        db, session = _probe_stack(batch_size)
        plan = [r[0] for r in session.execute("EXPLAIN " + ORDERS_JOIN)]
        assert any("IndexLoopJoin" in line for line in plan), plan
        session.execute(ORDERS_JOIN)             # warm plan/parse caches
        before = indexes.COUNTERS.lookups
        start = time.perf_counter()
        row = session.execute(ORDERS_JOIN).rows[0]
        elapsed = time.perf_counter() - start
        outcomes[mode] = {"probes": indexes.COUNTERS.lookups - before,
                          "seconds": elapsed,
                          "result": tuple(row)}
    assert outcomes["batched"]["result"] == outcomes["row"]["result"]
    # The acceptance floor: >= 20% fewer index probes from dedup.  In
    # practice it is one probe per distinct key per batch (~100x).
    assert outcomes["batched"]["probes"] \
        <= outcomes["row"]["probes"] * 0.8, outcomes

    table = ReportTable(
        "Batched IndexLoopJoin — %d outer rows, 10 distinct keys, "
        "%d-row inner" % (OUTER_ROWS, ITEM_ROWS),
        ["executor", "index probes", "seconds", "vs row"])
    for mode in ("row", "batched"):
        entry = outcomes[mode]
        table.add(mode, entry["probes"], "%.4f" % entry["seconds"],
                  relative(entry["seconds"], outcomes["row"]["seconds"]))
    report(table)
    RESULTS["probe_dedup"] = {
        mode: {"probes": entry["probes"], "seconds": entry["seconds"]}
        for mode, entry in outcomes.items()}


# ---------------------------------------------------------------------------
# spilling HashJoin: memory-bounded build under work_mem
# ---------------------------------------------------------------------------

SPILL_JOIN = ("SELECT p.id, b.k FROM probes p "
              "JOIN big b ON b.grp = p.grp")


def _spill_stack(work_mem):
    db, session = _connect(batch_size=1024, work_mem=work_mem)
    session.execute("CREATE TABLE big (k INT PRIMARY KEY, grp INT, "
                    "pad TEXT)")
    session.execute("CREATE TABLE probes (id INT PRIMARY KEY, grp INT)")
    _bulk_load(db, "big", ((i, i % 2000, "pad-%04d" % (i % 1000))
                           for i in range(BIG_ROWS)))
    _bulk_load(db, "probes", ((i, i * 13 % 2500)
                              for i in range(PROBE_ROWS)))
    session.execute("ANALYZE")
    return db, session


def test_hash_join_spills_under_budget():
    outcomes = {}
    for mode, work_mem in (("unbounded", 0), ("64KB budget", WORK_MEM)):
        db, session = _spill_stack(work_mem)
        before = SPILL_STATS.snapshot()
        start = time.perf_counter()
        rows = sorted(tuple(r) for r in session.execute(SPILL_JOIN).rows)
        elapsed = time.perf_counter() - start
        after = SPILL_STATS.snapshot()
        outcomes[mode] = {
            "rows": rows, "seconds": elapsed,
            "spill": {k: after[k] - before[k] for k in after},
        }
        if work_mem:
            plan = [r[0] for r in session.execute("EXPLAIN " + SPILL_JOIN)]
            join_line = next(line for line in plan if "HashJoin" in line)
            assert "spill_partitions=" in join_line, join_line
            partitions = int(join_line.split("spill_partitions=")[1]
                             .split()[0])
            est_mem = int(join_line.split("mem=")[1].split("B")[0])
            assert partitions >= 1
            assert est_mem <= work_mem, join_line
            assert outcomes[mode]["spill"]["spills"] >= 1
            RESULTS["spill_explain"] = {"partitions": partitions,
                                        "est_mem_bytes": est_mem}
    assert outcomes["64KB budget"]["rows"] == outcomes["unbounded"]["rows"]

    table = ReportTable(
        "HashJoin spilling — %d-row build side, %d probes, "
        "work_mem=64KB" % (BIG_ROWS, PROBE_ROWS),
        ["configuration", "out rows", "seconds", "rows spilled",
         "partitions", "vs unbounded"])
    for mode in ("unbounded", "64KB budget"):
        entry = outcomes[mode]
        table.add(mode, len(entry["rows"]), "%.4f" % entry["seconds"],
                  entry["spill"]["rows_spilled"],
                  entry["spill"]["partitions_created"],
                  relative(entry["seconds"],
                           outcomes["unbounded"]["seconds"]))
    report(table)
    RESULTS["spill"] = {
        mode: {"out_rows": len(entry["rows"]),
               "seconds": entry["seconds"], "stats": entry["spill"]}
        for mode, entry in outcomes.items()}
    write_bench_json("join_spill", RESULTS)
