"""Parallel execution: multi-core scans and per-partition spilled joins.

Serial (``workers=0``) versus gang execution on the two shapes the
Gather/exchange machinery accelerates:

* a **selective filtered scan** over a wide table — the predicate runs
  on every stored tuple inside the workers while only the few matching
  rows travel back over the pipe, so the fan-out is almost pure
  speedup;
* a **grace-spilled hash join** under a tight ``work_mem`` — the
  key-disjoint spilled partitions are re-joined by the gang, one
  partition stream per worker.

Both shapes must return exactly the serial rows in the serial order,
and the label-check counters merged back from the workers must equal
the serial counts (the zero-slack merge protocol) — those assertions
run at smoke scale too.  The **speedup gate** (best shape >= 1.5x with
>= 2 cores) is measured-mode only: smoke row counts are IPC-dominated
by design.

``BENCH_parallel.json`` records timings, speedups, and the per-shape
statement counter deltas at the repo root; CI uploads it with the
other BENCH_* artifacts.
"""

import os
import time

from repro.core import AuthorityState, IFCProcess, SeededIdGenerator
from repro.core.labels import EMPTY_LABEL
from repro.db import Database
from repro.db.parallel import FORK_AVAILABLE

from .common import SMOKE, report, smoke, write_bench_json
from repro.bench import ReportTable, relative

SCAN_ROWS = smoke(100_000, 5_000)
FACT_ROWS = smoke(60_000, 3_000)
PROBE_ROWS = smoke(60, 20)
JOIN_WORK_MEM = smoke(256 * 1024, 8 * 1024)
# At least 2 so the gang genuinely forks even on a single-core box
# (time-sliced — no speedup, but the exchange, codec, and counter
# merge all run for real); the speedup gate below only fires with
# >= 2 actual cores.
WORKERS = max(2, min(4, os.cpu_count() or 1))

SCAN_SQL = ("SELECT id, x FROM wide "
            "WHERE x % 997 = 5 AND x * 3 + id > 1000")
JOIN_SQL = ("SELECT p.id, f.k FROM probes p "
            "JOIN fact f ON f.grp = p.grp")

RESULTS = {"workers": WORKERS, "cpus": os.cpu_count(),
           "fork_available": FORK_AVAILABLE}


def _connect(*, workers, work_mem=0):
    authority = AuthorityState(idgen=SeededIdGenerator(91))
    db = Database(authority, seed=91, batch_size=1024,
                  work_mem=work_mem, workers=workers)
    session = db.connect(IFCProcess(authority,
                                    authority.create_principal("b").id))
    return db, session


def _bulk_load(db, table_name, rows):
    table = db.catalog.get_table(table_name)
    txn = db.txn_manager.begin()
    for values in rows:
        table.append(tuple(values), EMPTY_LABEL, EMPTY_LABEL, txn.xid)
    db.txn_manager.commit(txn)


def _scan_stack(workers):
    db, session = _connect(workers=workers)
    session.execute("CREATE TABLE wide (id INT PRIMARY KEY, x INT, "
                    "note TEXT)")
    _bulk_load(db, "wide", ((i, i * 7, "row-%06d" % i)
                            for i in range(SCAN_ROWS)))
    session.execute("ANALYZE")
    return db, session


def _join_stack(workers):
    db, session = _connect(workers=workers, work_mem=JOIN_WORK_MEM)
    session.execute("CREATE TABLE fact (k INT PRIMARY KEY, grp INT, "
                    "pad TEXT)")
    session.execute("CREATE TABLE probes (id INT PRIMARY KEY, grp INT)")
    _bulk_load(db, "fact", ((i, i % 3000, "pad-%05d" % (i % 1500))
                            for i in range(FACT_ROWS)))
    _bulk_load(db, "probes", ((i, i * 13 % 3500)
                              for i in range(PROBE_ROWS)))
    session.execute("ANALYZE")
    return db, session


def _measure(db, session, sql):
    """Warm the plan cache, then time one execution and capture the
    per-statement counter deltas of the timed run."""
    session.execute(sql)
    start = time.perf_counter()
    rows = [tuple(r) for r in session.execute(sql).rows]
    elapsed = time.perf_counter() - start
    return rows, elapsed, db.last_statement_metrics()


def _run_shape(shape, build, sql, explain_token):
    serial_db, serial_session = build(0)
    gang_db, gang_session = build(WORKERS)
    serial_rows, serial_s, serial_delta = _measure(
        serial_db, serial_session, sql)
    gang_rows, gang_s, gang_delta = _measure(gang_db, gang_session, sql)

    # Correctness gates run in smoke mode too: identical rows in
    # identical order, and zero-slack label counters after the merge.
    assert gang_rows == serial_rows
    assert gang_delta["labels"] == serial_delta["labels"]
    if WORKERS >= 2 and FORK_AVAILABLE:
        plan = [r[0] for r in gang_session.execute("EXPLAIN " + sql)]
        line = next(l for l in plan if explain_token in l)
        assert "workers=%d" % WORKERS in line, line

    speedup = serial_s / gang_s if gang_s else 0.0
    RESULTS[shape] = {
        "rows_out": len(serial_rows),
        "serial_seconds": serial_s,
        "parallel_seconds": gang_s,
        "speedup": speedup,
        "serial_counters": serial_delta,
        "parallel_counters": gang_delta,
    }
    return speedup


def test_parallel_scan_and_spilled_join():
    scan_speedup = _run_shape("scan", _scan_stack, SCAN_SQL, "Gather")
    join_speedup = _run_shape("spilled_join", _join_stack, JOIN_SQL,
                              "HashJoin")

    table = ReportTable(
        "Parallel execution — %d workers, %d-row scan, %d-row spilled "
        "join build" % (WORKERS, SCAN_ROWS, FACT_ROWS),
        ["shape", "rows out", "serial s", "parallel s", "speedup"])
    for shape in ("scan", "spilled_join"):
        entry = RESULTS[shape]
        table.add(shape, entry["rows_out"],
                  "%.4f" % entry["serial_seconds"],
                  "%.4f" % entry["parallel_seconds"],
                  relative(entry["parallel_seconds"],
                           entry["serial_seconds"]))
    report(table)

    # The acceptance floor: with >= 2 real cores the better shape must
    # clear 1.5x.  Smoke scale is IPC-dominated, so the gate is
    # measured-mode only.
    best = max(scan_speedup, join_speedup)
    RESULTS["best_speedup"] = best
    if not SMOKE and FORK_AVAILABLE and WORKERS >= 2 \
            and (os.cpu_count() or 1) >= 2:
        assert best >= 1.5, RESULTS
    write_bench_json("parallel", RESULTS)
