"""Shared helpers for the benchmark suite.

``report`` writes each paper-vs-measured table to stdout and, because
pytest's default fd-level capture swallows stdout for passing tests, to
``benchmarks/results.txt`` — the authoritative copy, regenerated on
every benchmark run.

**Smoke mode** (``--smoke`` on the command line or the
``REPRO_BENCH_SMOKE=1`` environment variable) shrinks every benchmark
to tiny row counts and a fixed seed so the whole suite runs in seconds:
no number it produces is meaningful, but every script still executes
its full code path, which is what ``tests/test_bench_smoke.py`` checks
so the perf scripts cannot silently rot.  Smoke runs never touch
``results.txt``.
"""

from __future__ import annotations

import os
import sys

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: True when running in smoke mode (tiny parameters, no results file).
SMOKE = (os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
         or "--smoke" in sys.argv)


def smoke(value, smoke_value):
    """Pick the tiny smoke-mode parameter when smoke mode is active."""
    return smoke_value if SMOKE else value


def report(table) -> None:
    text = table.render() if hasattr(table, "render") else str(table)
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    if SMOKE:
        return
    with open(RESULTS_PATH, "a") as handle:
        handle.write(text + "\n")
