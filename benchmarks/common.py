"""Shared helpers for the benchmark suite.

``report`` writes each paper-vs-measured table to stdout and, because
pytest's default fd-level capture swallows stdout for passing tests, to
``benchmarks/results.txt`` — the authoritative copy, regenerated on
every benchmark run.
"""

from __future__ import annotations

import os
import sys

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def report(table) -> None:
    text = table.render() if hasattr(table, "render") else str(table)
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    with open(RESULTS_PATH, "a") as handle:
        handle.write(text + "\n")
