"""Shared helpers for the benchmark suite.

``report`` writes each paper-vs-measured table to stdout and, because
pytest's default fd-level capture swallows stdout for passing tests, to
``benchmarks/results.txt`` — the authoritative copy, regenerated on
every benchmark run.

**Smoke mode** (``--smoke`` on the command line or the
``REPRO_BENCH_SMOKE=1`` environment variable) shrinks every benchmark
to tiny row counts and a fixed seed so the whole suite runs in seconds:
no number it produces is meaningful, but every script still executes
its full code path, which is what ``tests/test_bench_smoke.py`` checks
so the perf scripts cannot silently rot.  Smoke runs never touch
``results.txt``.
"""

from __future__ import annotations

import json
import os
import sys

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
#: Machine-readable benchmark outputs land at the repo root
#: (``BENCH_<figure>.json``) so the perf trajectory is diffable across
#: PRs and CI can upload them as artifacts.  Smoke runs also write
#: JSON (CI needs the label-check counters even when the timings are
#: meaningless) but to a separate ``BENCH_<figure>.smoke.json`` file —
#: never the measured one — so a local smoke run can never clobber the
#: committed cross-PR perf trail with meaningless numbers.  The
#: ``.smoke.json`` files are gitignored; CI's artifact glob picks up
#: both.
BENCH_JSON_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: One accumulating metrics document (``METRICS.json``, repo root,
#: gitignored): each ``write_bench_json`` call also files its counter
#: snapshot here under the figure name, so a suite run — smoke included
#: — leaves a single artifact CI can upload with every counter family's
#: totals per figure.
METRICS_PATH = os.path.join(BENCH_JSON_ROOT, "METRICS.json")

#: True when running in smoke mode (tiny parameters, no results file).
SMOKE = (os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
         or "--smoke" in sys.argv)


def smoke(value, smoke_value):
    """Pick the tiny smoke-mode parameter when smoke mode is active."""
    return smoke_value if SMOKE else value


def report(table) -> None:
    text = table.render() if hasattr(table, "render") else str(table)
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    if SMOKE:
        return
    with open(RESULTS_PATH, "a") as handle:
        handle.write(text + "\n")


def write_bench_json(figure: str, payload: dict) -> str:
    """Write ``BENCH_<figure>.json`` at the repo root; returns the path.

    Smoke runs write ``BENCH_<figure>.smoke.json`` instead: smoke
    timings are meaningless, so they must never overwrite a measured
    (``smoke: false``) result.
    """
    suffix = ".smoke.json" if SMOKE else ".json"
    path = os.path.join(BENCH_JSON_ROOT, "BENCH_%s%s" % (figure, suffix))
    document = dict(payload)
    document["figure"] = figure
    document["smoke"] = SMOKE
    document["counters"] = _counters_snapshot()
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    _update_metrics_json(figure, document["counters"])
    return path


def _counters_snapshot() -> dict:
    """The unified registry's snapshot (db/metrics.py): cumulative
    process-wide totals at write time, so each figure's JSON records
    how much label/index/exec/spill work the whole run performed."""
    from repro.db import metrics
    return metrics.snapshot()


def _update_metrics_json(figure: str, counters: dict) -> None:
    """Read-modify-write ``METRICS.json``, keyed by figure."""
    try:
        with open(METRICS_PATH) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        document = {}
    if not isinstance(document, dict):
        document = {}
    document[figure] = {"smoke": SMOKE, "counters": counters}
    with open(METRICS_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
