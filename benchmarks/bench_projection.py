"""Projection pushdown: column-at-a-time scans end-to-end.

A seeded 5000-row, 8-column table (4 ints, 4 wide TEXT pads) is scanned
three ways — a 2-column projection, ``SELECT *``, and a narrow
aggregation.  The ``COLUMNS_MATERIALIZED`` counter proves the pushdown
reached the storage layer (a scan projecting 2 of 8 columns copies
exactly ``2 × rows`` cells out of the heap), and the timings show the
win: the narrow scan never pays for the pad columns nobody reads.

The counter assertions are logic-driven, so they run in smoke mode too
— CI's smoke step is the regression gate that keeps pushdown wired all
the way down (the PR-4 covers-count pattern).  The JSON lands at the
repo root for the artifact upload and the cross-PR perf trail.
"""

import time

from repro.db import Database
from repro.db.physical import EXEC_COUNTERS
from repro.bench import ReportTable, relative

from .common import SMOKE, report, smoke, write_bench_json

ROWS = smoke(5000, 200)
N_COLS = 8
NARROW_SQL = "SELECT b, c FROM wide"
STAR_SQL = "SELECT * FROM wide"
AGG_SQL = "SELECT b, COUNT(*), SUM(c) FROM wide GROUP BY b"


def _stack(batch_size=None):
    db = Database(ifc_enabled=False, seed=21, batch_size=batch_size)
    session = db.connect()
    session.execute("CREATE TABLE wide (a INT PRIMARY KEY, b INT, c INT,"
                    " d INT, p1 TEXT, p2 TEXT, p3 TEXT, p4 TEXT)")
    session.begin()
    for i in range(ROWS):
        session.execute(
            "INSERT INTO wide VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (i, i % 97, (i * 13) % 1009, i % 7,
             "pad-one-%04d" % (i % 50), "pad-two-%04d" % (i % 50),
             "pad-three-%04d" % (i % 50), "pad-four-%04d" % (i % 50)))
    session.commit()
    session.execute("ANALYZE")
    return db, session


def _cells(session, sql) -> int:
    EXEC_COUNTERS.reset()
    session.execute(sql)
    return EXEC_COUNTERS.columns_materialized


def _best_time(session, sql, loops=None) -> float:
    loops = loops if loops is not None else smoke(5, 1)
    best = None
    for _round in range(smoke(3, 1)):
        start = time.perf_counter()
        for _ in range(loops):
            session.execute(sql)
        elapsed = (time.perf_counter() - start) / loops
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_projection_pushdown_cells_and_timing():
    _db, session = _stack()
    cells = {
        "narrow": _cells(session, NARROW_SQL),
        "star": _cells(session, STAR_SQL),
        "agg": _cells(session, AGG_SQL),
    }
    # The counter gate (exact, batch-size invariant, smoke-safe): a
    # scan projecting k of 8 columns materializes exactly k cells per
    # visible row — any widening regression breaks the equality.
    assert cells["narrow"] == 2 * ROWS, cells
    assert cells["star"] == N_COLS * ROWS, cells
    assert cells["agg"] == 2 * ROWS, cells

    timings = {
        "narrow": _best_time(session, NARROW_SQL),
        "star": _best_time(session, STAR_SQL),
        "agg": _best_time(session, AGG_SQL),
    }
    # The same narrow query on the row-at-a-time executor pays full
    # width per tuple: the column-at-a-time win in one number.
    _db_row, session_row = _stack(batch_size=0)
    timings["narrow_row_executor"] = _best_time(session_row, NARROW_SQL)

    table = ReportTable(
        "Projection pushdown — %d-row, %d-column scan" % (ROWS, N_COLS),
        ["query", "cells copied", "ms/query", "vs SELECT *"])
    table.add("SELECT b, c (batched)", cells["narrow"],
              "%.2f" % (timings["narrow"] * 1e3),
              relative(timings["narrow"], timings["star"]))
    table.add("SELECT b, c (row executor)", "n/a",
              "%.2f" % (timings["narrow_row_executor"] * 1e3),
              relative(timings["narrow_row_executor"], timings["star"]))
    table.add("SELECT *", cells["star"],
              "%.2f" % (timings["star"] * 1e3), "")
    table.add("GROUP BY b aggregate", cells["agg"],
              "%.2f" % (timings["agg"] * 1e3),
              relative(timings["agg"], timings["star"]))
    report(table)

    write_bench_json("projection", {
        "rows": ROWS,
        "columns": N_COLS,
        "cells_materialized": cells,
        "seconds": timings,
    })

    if SMOKE:
        # 200 rows prove the code path, not the timing claim.
        return
    # The measurable win: never copying 6 unread columns (4 of them
    # wide strings) must beat materializing all 8.
    assert timings["narrow"] < timings["star"] * 0.95, timings
