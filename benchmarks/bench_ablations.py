"""Ablation benchmarks for the design choices DESIGN.md calls out.

* authority cache on/off (section 7.2: "the cache is important");
* label-operation micro-costs, including compound expansion;
* label filtering at the scan layer (the section 7.1 design) vs the
  cost of scanning without labels at all;
* polyinstantiation-permitting unique checks vs MATCH LABEL
  constraints that forbid it;
* projection pushdown: a narrow scan that materializes 2 of 8 columns
  vs the same rows at full width.
"""

import random

import pytest

from repro.core import AuthorityState, IFCProcess, Label, SeededIdGenerator
from repro.core.rules import covers, strip
from repro.db import Database
from repro.platform import AuthorityCache
from repro.bench import ReportTable, relative

from .common import SMOKE, report, smoke


# ---------------------------------------------------------------------------
# authority cache
# ---------------------------------------------------------------------------

def _authority_with_chain(depth=6):
    authority = AuthorityState(idgen=SeededIdGenerator(1))
    principals = [authority.create_principal("p%d" % i)
                  for i in range(depth)]
    tag = authority.create_tag("t", owner=principals[0].id)
    for grantor, grantee in zip(principals, principals[1:]):
        authority.delegate(tag.id, grantor.id, grantee.id)
    return authority, principals[-1].id, tag.id


def test_ablation_authority_cache(benchmark):
    authority, principal, tag = _authority_with_chain()
    cached = AuthorityCache(authority, enabled=True)
    uncached = AuthorityCache(authority, enabled=False)

    def run(cache):
        import time
        start = time.perf_counter()
        for _ in range(20000):
            cache.has_authority(principal, tag)
        return time.perf_counter() - start

    with_cache = run(cached)
    without_cache = run(uncached)
    table = ReportTable(
        "Ablation — platform authority cache (20k release checks)",
        ["configuration", "seconds", "vs uncached"])
    table.add("cache enabled", "%.4f" % with_cache,
              relative(with_cache, without_cache))
    table.add("cache disabled", "%.4f" % without_cache, "")
    report(table)
    assert with_cache < without_cache        # the paper's claim

    benchmark(lambda: cached.has_authority(principal, tag))


# ---------------------------------------------------------------------------
# label operations
# ---------------------------------------------------------------------------

def test_ablation_label_ops(benchmark):
    authority = AuthorityState(idgen=SeededIdGenerator(2))
    owner = authority.create_principal("owner")
    compound = authority.create_compound_tag("all", owner=owner.id)
    members = [authority.create_tag("m%d" % i, owner=owner.id,
                                    compounds=(compound.id,))
               for i in range(64)]
    registry = authority.tags
    small = Label([members[0].id])
    big = Label([m.id for m in members[:10]])
    compound_label = Label([compound.id])

    import time
    table = ReportTable("Ablation — label operation micro-costs (1M ops)",
                        ["operation", "ns/op"])

    def time_op(fn):
        n = 200000
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - start) / n * 1e9

    table.add("covers, plain subset hit",
              "%.0f" % time_op(lambda: covers(registry, small, big)))
    table.add("covers, via compound expansion",
              "%.0f" % time_op(lambda: covers(registry, big,
                                              compound_label)))
    table.add("union (disjoint)",
              "%.0f" % time_op(lambda: small.union(big)))
    table.add("strip compound",
              "%.0f" % time_op(lambda: strip(registry, big,
                                             compound_label)))
    report(table)

    benchmark(lambda: covers(registry, big, compound_label))


# ---------------------------------------------------------------------------
# label filtering at the scan layer
# ---------------------------------------------------------------------------

def _scan_db(ifc_enabled):
    authority = AuthorityState(idgen=SeededIdGenerator(3))
    db = Database(authority, ifc_enabled=ifc_enabled, seed=3)
    owner = authority.create_principal("owner")
    tags = [authority.create_tag("s%d" % i, owner=owner.id)
            for i in range(4)]
    process = IFCProcess(authority, owner.id)
    session = db.connect(process)
    session.execute("CREATE TABLE big (x INT PRIMARY KEY, y INT)")
    rng = random.Random(3)
    for i in range(3000):
        tag = tags[i % len(tags)]
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO big VALUES (?, ?)",
                        (i, rng.randint(0, 100)))
        process.declassify(tag.id)
    for tag in tags:
        process.add_secrecy(tag.id)
    return db, session


def test_ablation_scan_label_filtering(benchmark):
    import time

    def scan_time(session):
        start = time.perf_counter()
        for _ in range(20):
            session.execute("SELECT COUNT(*) FROM big WHERE y < 50")
        return (time.perf_counter() - start) / 20

    _db_ifc, session_ifc = _scan_db(True)
    _db_raw, session_raw = _scan_db(False)
    with_labels = scan_time(session_ifc)
    without_labels = scan_time(session_raw)
    table = ReportTable(
        "Ablation — per-tuple label check in the scan layer "
        "(3000-row seq scan)",
        ["configuration", "ms/scan", "overhead"])
    table.add("IFDB (label filter per tuple)", "%.3f" % (with_labels * 1e3),
              relative(with_labels, without_labels))
    table.add("baseline (no labels)", "%.3f" % (without_labels * 1e3), "")
    report(table)

    benchmark(lambda: session_ifc.execute(
        "SELECT COUNT(*) FROM big WHERE y < 50"))


# ---------------------------------------------------------------------------
# projection pushdown
# ---------------------------------------------------------------------------

def _wide_db():
    db = Database(ifc_enabled=False, seed=5)
    session = db.connect()
    session.execute("CREATE TABLE wide (a INT PRIMARY KEY, b INT, c INT,"
                    " d INT, p1 TEXT, p2 TEXT, p3 TEXT, p4 TEXT)")
    session.begin()
    for i in range(smoke(5000, 200)):
        session.execute(
            "INSERT INTO wide VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (i, i % 97, (i * 13) % 1009, i % 7,
             "pad-one-%04d" % (i % 50), "pad-two-%04d" % (i % 50),
             "pad-three-%04d" % (i % 50), "pad-four-%04d" % (i % 50)))
    session.commit()
    session.execute("ANALYZE")
    return db, session


def test_ablation_projection_pushdown(benchmark):
    """A scan that reads 2 of 8 columns should never pay for the other
    6 (4 of them wide strings): the columnar batches copy exactly the
    cells the plan needs."""
    import time

    from repro.db.physical import EXEC_COUNTERS

    _db, session = _wide_db()

    def scan_time(sql):
        best = None
        for _round in range(smoke(3, 1)):
            start = time.perf_counter()
            for _ in range(smoke(5, 1)):
                session.execute(sql)
            elapsed = (time.perf_counter() - start) / smoke(5, 1)
            best = elapsed if best is None else min(best, elapsed)
        return best

    EXEC_COUNTERS.reset()
    rows = len(session.execute("SELECT b, c FROM wide").rows)
    narrow_cells = EXEC_COUNTERS.columns_materialized
    narrow = scan_time("SELECT b, c FROM wide")
    full = scan_time("SELECT * FROM wide")
    table = ReportTable(
        "Ablation — projection pushdown (%d-row scan, 2 of 8 columns)"
        % rows,
        ["query", "ms/scan", "vs full width"])
    table.add("SELECT b, c", "%.3f" % (narrow * 1e3),
              relative(narrow, full))
    table.add("SELECT *", "%.3f" % (full * 1e3), "")
    report(table)
    assert narrow_cells == 2 * rows
    if not SMOKE:
        assert narrow < full

    benchmark(lambda: session.execute("SELECT b, c FROM wide"))


# ---------------------------------------------------------------------------
# polyinstantiation vs label constraints
# ---------------------------------------------------------------------------

def test_ablation_polyinstantiation(benchmark):
    """Cost of the label-aware unique check, and proof that the MATCH
    LABEL constraint prevents polyinstantiation outright."""
    authority = AuthorityState(idgen=SeededIdGenerator(4))
    db = Database(authority, seed=4)
    owner = authority.create_principal("owner")
    tag = authority.create_tag("secret", owner=owner.id)
    session = db.connect(IFCProcess(authority, owner.id))
    session.execute("CREATE TABLE plain (k INT PRIMARY KEY)")

    labelled = IFCProcess(authority, owner.id)
    labelled_session = db.connect(labelled)
    labelled.add_secrecy(tag.id)
    for i in range(500):
        labelled_session.execute("INSERT INTO plain VALUES (?)", (i,))

    # Unlabelled inserts of the same keys: every one polyinstantiates.
    import time
    start = time.perf_counter()
    for i in range(500):
        session.execute("INSERT INTO plain VALUES (?)", (i,))
    poly_time = time.perf_counter() - start
    poly_count = db.catalog.get_table("plain").polyinstantiation_count

    table = ReportTable(
        "Ablation — polyinstantiating unique checks",
        ["metric", "value"])
    table.add("conflicting inserts", 500)
    table.add("polyinstantiated rows", poly_count)
    table.add("ms per insert (conflict path)",
              "%.3f" % (poly_time / 500 * 1e3))
    report(table)
    assert poly_count == 500

    fresh = iter(range(10_000, 10_000_000))
    benchmark(lambda: session.execute("INSERT INTO plain VALUES (?)",
                                      (next(fresh),)))
