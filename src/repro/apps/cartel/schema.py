"""CarTel schema, tag scheme, and trusted setup (section 6.1).

Tag scheme, following the paper:

* per user ``u``: ``u<id>-drives`` covers historical drives and
  ``u<id>-location`` covers the current location;
* compound tags ``all_drives`` / ``all_locations`` group them so trusted
  services and statistics code can be granted authority wholesale.

Labelling strategy:

* ``Users`` and ``Friends`` rows: empty label (the paper focuses on
  location privacy; account data could get its own tags);
* ``Cars`` rows: ``{u-drives}`` — car identity is only meaningful to
  people who can see the car's drives;
* raw ``Locations`` measurements: ``{u-drives, u-location}`` (a raw GPS
  point reveals both the drive and the current position);
* derived ``Drives``: ``{u-drives}`` — the ``driveupdate`` closure
  trigger declassifies the location tag, which it has authority for,
  but *cannot* remove the drives tag (section 6.1);
* ``LocationsLatest``: ``{u-drives, u-location}``.

The **trusted base** is exactly this module's :class:`CarTelApp` setup
methods (≈50 lines that create tags and label incoming data, matching
section 6.3) plus the closure definitions in :mod:`.ingest`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...core.authority import AuthorityState
from ...core.labels import Label
from ...core.process import IFCProcess
from ...db.engine import Database
from ...platform.runtime import IFRuntime

SCHEMA_SQL = """
CREATE TABLE Users (
    userid INT PRIMARY KEY,
    username TEXT UNIQUE NOT NULL,
    password TEXT NOT NULL,
    fullname TEXT,
    email TEXT
);
CREATE TABLE Cars (
    carid INT PRIMARY KEY,
    userid INT NOT NULL REFERENCES Users(userid),
    make TEXT,
    model TEXT
);
CREATE TABLE Locations (
    locid INT PRIMARY KEY,
    carid INT NOT NULL REFERENCES Cars(carid),
    lat REAL NOT NULL,
    lon REAL NOT NULL,
    speed REAL,
    ts TIMESTAMP NOT NULL
);
CREATE TABLE LocationsLatest (
    carid INT PRIMARY KEY REFERENCES Cars(carid),
    lat REAL NOT NULL,
    lon REAL NOT NULL,
    speed REAL,
    ts TIMESTAMP NOT NULL
);
CREATE TABLE Drives (
    driveid INT PRIMARY KEY,
    carid INT NOT NULL REFERENCES Cars(carid),
    start_ts TIMESTAMP NOT NULL,
    end_ts TIMESTAMP NOT NULL,
    distance REAL NOT NULL,
    npoints INT NOT NULL
);
CREATE TABLE Friends (
    userid INT NOT NULL REFERENCES Users(userid),
    friendid INT NOT NULL REFERENCES Users(userid),
    PRIMARY KEY (userid, friendid)
);
CREATE INDEX cars_by_user ON Cars (userid);
CREATE INDEX locations_by_car ON Locations (carid);
CREATE ORDERED INDEX drives_by_car ON Drives (carid, start_ts);
CREATE INDEX friends_by_friend ON Friends (friendid);
"""


def drives_tag_name(userid: int) -> str:
    return "u%d-drives" % userid


def location_tag_name(userid: int) -> str:
    return "u%d-location" % userid


class CarTelApp:
    """Authority schema + database schema + trusted account management."""

    def __init__(self, db: Database, runtime: IFRuntime):
        self.db = db
        self.runtime = runtime
        self.authority: AuthorityState = db.authority
        # Service principals (the authority schema of section 6.4).
        self.cartel = self.authority.create_principal("cartel-service")
        self.all_drives = self.authority.create_compound_tag(
            "all_drives", owner=self.cartel.id)
        self.all_locations = self.authority.create_compound_tag(
            "all_locations", owner=self.cartel.id)
        # The ingest daemon labels incoming data; it is trusted and holds
        # authority for both compounds (it must lower its label between
        # measurements for different users and at commit).
        self.ingestd = self.authority.create_principal("gps-ingestd")
        self.authority.delegate(self.all_drives.id, self.cartel.id,
                                self.ingestd.id)
        self.authority.delegate(self.all_locations.id, self.cartel.id,
                                self.ingestd.id)
        # username -> (userid, principal id); the web authenticator's map.
        self.accounts: Dict[str, Tuple[int, int]] = {}
        self._next_userid = 1
        self._next_carid = 1
        self._admin_session = db.connect(
            IFCProcess(self.authority, self.cartel.id))
        self._admin_session.execute_script(SCHEMA_SQL)

    # ------------------------------------------------------------------
    # trusted account management (the ~50 trusted lines of section 6.3)
    # ------------------------------------------------------------------
    def signup(self, username: str, password: str,
               fullname: Optional[str] = None) -> int:
        """Create a user: principal, tags (linked into the compounds by
        the cartel service, which owns them), and the Users row."""
        userid = self._next_userid
        self._next_userid += 1
        principal = self.authority.create_principal("user:%s" % username)
        self.authority.create_tag(
            drives_tag_name(userid), owner=principal.id,
            compounds=(self.all_drives.id,), creator=self.cartel.id)
        self.authority.create_tag(
            location_tag_name(userid), owner=principal.id,
            compounds=(self.all_locations.id,), creator=self.cartel.id)
        self._admin_session.execute(
            "INSERT INTO Users (userid, username, password, fullname, email)"
            " VALUES (?, ?, ?, ?, ?)",
            (userid, username, password, fullname or username,
             "%s@cartel.example" % username))
        self.accounts[username] = (userid, principal.id)
        return userid

    def add_car(self, userid: int, make: str = "Saab",
                model: str = "93") -> int:
        """Register a car, labelled with the owner's drives tag."""
        carid = self._next_carid
        self._next_carid += 1
        owner_process = IFCProcess(self.authority, self.ingestd.id)
        session = self.db.connect(owner_process)
        drives_tag = self.authority.tags.lookup(drives_tag_name(userid))
        owner_process.add_secrecy(drives_tag.id)
        session.insert("Cars", declassifying=(drives_tag.name,),
                       carid=carid, userid=userid, make=make, model=model)
        owner_process.declassify(drives_tag.id)
        return carid

    def befriend(self, userid: int, friendid: int) -> None:
        """Record a friendship and delegate the drives tag (section 6.1:
        "the owner can allow friends to see past drives")."""
        user_principal = self._principal_for(userid)
        friend_principal = self._principal_for(friendid)
        process = IFCProcess(self.authority, user_principal)
        session = self.db.connect(process)
        session.insert("Friends", userid=userid, friendid=friendid)
        drives_tag = self.authority.tags.lookup(drives_tag_name(userid))
        process.delegate(drives_tag.id, friend_principal)

    def _principal_for(self, userid: int) -> int:
        for username, (uid, principal) in self.accounts.items():
            if uid == userid:
                return principal
        raise KeyError("no account for userid %d" % userid)

    def authenticate(self, username: str, password: str) -> Optional[int]:
        """The web authenticator (trusted, Figure 1)."""
        entry = self.accounts.get(username)
        if entry is None:
            return None
        userid, principal = entry
        row = self._admin_session.execute(
            "SELECT password FROM Users WHERE username = ?",
            (username,)).first()
        if row is None or row[0] != password:
            return None
        return principal

    def userid_of(self, username: str) -> int:
        return self.accounts[username][0]

    def user_labels(self, userid: int) -> Label:
        """Label of a user's raw location data."""
        return Label((
            self.authority.tags.lookup(drives_tag_name(userid)).id,
            self.authority.tags.lookup(location_tag_name(userid)).id,
        ))
