"""Synthetic GPS trace generation.

The paper replayed 18 GB of real measurements (177 million points over
27 months).  We have no such corpus, so this module generates seeded
random-walk drives per car: a drive starts at a point near the car's
home, moves with plausible speeds for a bounded number of samples, then
parks for a while.  The benchmark code paths (per-measurement labelling,
trigger firing, drive segmentation) are identical regardless of trace
realism, which is what the substitution must preserve (DESIGN.md).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

#: Sampling interval between GPS points, seconds.
SAMPLE_INTERVAL = 20.0
#: Gap (seconds) that splits two measurements into separate drives.
DRIVE_GAP = 300.0


@dataclass(frozen=True)
class Measurement:
    """One GPS sample from a car's transponder."""

    carid: int
    lat: float
    lon: float
    speed: float
    ts: float


def euclid_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Small-area flat-earth distance (adequate for city-scale drives)."""
    dlat = (lat2 - lat1) * 111.0
    dlon = (lon2 - lon1) * 111.0 * math.cos(math.radians(lat1))
    return math.hypot(dlat, dlon)


class TraceGenerator:
    """Seeded generator of interleaved measurements for many cars."""

    def __init__(self, car_ids: Sequence[int], seed: int = 1234,
                 start_ts: float = 1_000_000.0):
        self.car_ids = list(car_ids)
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        # Per-car state: home position and clock.
        self._state = {}
        for carid in self.car_ids:
            self._state[carid] = {
                "lat": 42.36 + self.rng.uniform(-0.1, 0.1),
                "lon": -71.06 + self.rng.uniform(-0.1, 0.1),
                "ts": start_ts + self.rng.uniform(0, 60.0),
            }

    def drive(self, carid: int, n_points: int) -> List[Measurement]:
        """One drive for one car: ``n_points`` consecutive samples."""
        state = self._state[carid]
        rng = self.rng
        heading = rng.uniform(0, 2 * math.pi)
        points: List[Measurement] = []
        for _ in range(n_points):
            speed = max(0.0, rng.gauss(40.0, 15.0))      # km/h
            step_km = speed * SAMPLE_INTERVAL / 3600.0
            heading += rng.gauss(0.0, 0.3)
            state["lat"] += (step_km / 111.0) * math.cos(heading)
            state["lon"] += (step_km / 111.0) * math.sin(heading)
            state["ts"] += SAMPLE_INTERVAL
            points.append(Measurement(carid=carid, lat=state["lat"],
                                      lon=state["lon"], speed=speed,
                                      ts=state["ts"]))
        # Park: leave a gap so the next drive segments separately.
        state["ts"] += DRIVE_GAP + rng.uniform(60.0, 3600.0)
        return points

    def measurements(self, total: int, *,
                     drive_points: int = 12) -> Iterator[Measurement]:
        """Yield ``total`` measurements, round-robin across cars in
        drive-sized bursts (mimicking replayed real traffic)."""
        produced = 0
        while produced < total:
            for carid in self.car_ids:
                if produced >= total:
                    return
                n_points = min(drive_points, total - produced)
                for point in self.drive(carid, n_points):
                    yield point
                    produced += 1
                    if produced >= total:
                        return
