"""CarTel (section 6.1): the mobile sensor network case study.

Construction order::

    app = CarTelApp(db, runtime)          # schema + authority schema
    install_driveupdate_trigger(app)      # the closure trigger
    web = build_portal(app)               # the seven portal scripts

Then create accounts with ``app.signup``/``app.add_car``/``app.befriend``
and feed GPS data through :class:`SensorProcessor`.
"""

from .data import DRIVE_GAP, Measurement, TraceGenerator, euclid_km
from .ingest import BATCH_SIZE, SensorProcessor, install_driveupdate_trigger
from .portal import build_portal
from .schema import CarTelApp, drives_tag_name, location_tag_name

__all__ = [
    "BATCH_SIZE",
    "CarTelApp",
    "DRIVE_GAP",
    "Measurement",
    "SensorProcessor",
    "TraceGenerator",
    "build_portal",
    "drives_tag_name",
    "euclid_km",
    "install_driveupdate_trigger",
    "location_tag_name",
]
