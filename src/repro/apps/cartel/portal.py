"""The CarTel web portal: the scripts of Figure 3.

Each handler mirrors one PHP script from the paper's workload:

========  ==================  =====================================
weight    script              behaviour
========  ==================  =====================================
0.50      get_cars.php        AJAX: latest locations of own cars
0.30      cars.php            page: car list with locations
0.08      drives.php          drive log for self and all friends
0.08      drives_top.php      common driving patterns (closure)
0.03      friends.php         view and set friends
0.01      edit_account.php    edit personal info
========  ==================  =====================================

The handlers demonstrate the untrusted-code property: they freely read
sensitive rows after raising their label, and they can only produce
output because the logged-in user's principal is authoritative (or was
delegated authority) for the tags they picked up.  A coerced request
for a non-friend's drives contaminates the process with a tag it cannot
declassify, and the release gate yields an empty response — the
section 6.1 attack, neutralized.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...platform.web import WebApp, WebContext
from .schema import CarTelApp, drives_tag_name, location_tag_name


def build_portal(app: CarTelApp) -> WebApp:
    """Assemble the web application with all portal routes."""
    web = WebApp(app.runtime, app.db, authenticator=app.authenticate)
    _install_traffic_stats(app)

    def _tags(userid: int):
        registry = app.authority.tags
        return (registry.lookup(drives_tag_name(userid)),
                registry.lookup(location_tag_name(userid)))

    # -- get_cars.php (0.50): AJAX location updates ------------------------
    @web.route("/get_cars.php")
    def get_cars(ctx: WebContext):
        userid = app.userid_of(ctx.user)
        drives_tag, location_tag = _tags(userid)
        ctx.process.add_secrecy(drives_tag.id)
        ctx.process.add_secrecy(location_tag.id)
        rows = ctx.db.query(
            "SELECT c.carid, l.lat, l.lon, l.speed, l.ts "
            "FROM Cars c JOIN LocationsLatest l ON l.carid = c.carid "
            "WHERE c.userid = ?", (userid,))
        payload = [{"carid": r[0], "lat": r[1], "lon": r[2],
                    "speed": r[3], "ts": r[4]} for r in rows]
        ctx.process.declassify(location_tag.id)
        ctx.process.declassify(drives_tag.id)
        return {"cars": payload}

    # -- cars.php (0.30): car list page -----------------------------------
    @web.route("/cars.php")
    def cars(ctx: WebContext):
        userid = app.userid_of(ctx.user)
        drives_tag, location_tag = _tags(userid)
        ctx.process.add_secrecy(drives_tag.id)
        my_cars = ctx.db.query(
            "SELECT carid, make, model FROM Cars WHERE userid = ? "
            "ORDER BY carid", (userid,))
        ctx.process.add_secrecy(location_tag.id)
        page = []
        for car in my_cars:
            latest = ctx.db.execute(
                "SELECT lat, lon, speed, ts FROM LocationsLatest "
                "WHERE carid = ?", (car[0],)).first()
            page.append({
                "carid": car[0],
                "title": "%s %s" % (car[1], car[2]),
                "position": None if latest is None else
                            (round(latest[0], 5), round(latest[1], 5)),
                "speed": None if latest is None else latest[2],
            })
        ctx.process.declassify(location_tag.id)
        ctx.process.declassify(drives_tag.id)
        return {"title": "Your cars", "cars": page}

    # -- drives.php (0.08): drive log, self + friends ----------------------
    @web.route("/drives.php")
    def drives(ctx: WebContext):
        userid = app.userid_of(ctx.user)
        # Which users can I see?  Me, plus everyone who befriended me.
        sharers = [userid]
        for row in ctx.db.query(
                "SELECT userid FROM Friends WHERE friendid = ?", (userid,)):
            sharers.append(row[0])
        requested = ctx.param("user")
        if requested is not None:
            # The section 6.1 attack surface: the URL names any user.
            sharers = [app.userid_of(requested)]
        log: List[Dict] = []
        registry = app.authority.tags
        for sharer in sharers:
            drives_tag = registry.lookup(drives_tag_name(sharer))
            ctx.process.add_secrecy(drives_tag.id)
            rows = ctx.db.query(
                "SELECT d.driveid, d.carid, d.start_ts, d.end_ts, "
                "d.distance, d.npoints FROM Drives d "
                "JOIN Cars c ON c.carid = d.carid WHERE c.userid = ? "
                "ORDER BY d.start_ts DESC LIMIT 20", (sharer,))
            for r in rows:
                log.append({"user": sharer, "drive": r[0], "car": r[1],
                            "km": round(r[4], 2), "points": r[5]})
            # Needs authority: own tag, or a friend's delegation.  For a
            # coerced non-friend this raises and the response is blocked.
            ctx.process.declassify(drives_tag.id)
        return {"title": "Drive log", "drives": log}

    # -- drives_top.php (0.08): common driving patterns --------------------
    @web.route("/drives_top.php")
    def drives_top(ctx: WebContext):
        stats = ctx.db.call("traffic_stats")
        return {"title": "Common driving patterns", "stats": stats}

    # -- friends.php (0.03): view and set friends ---------------------------
    @web.route("/friends.php")
    def friends(ctx: WebContext):
        userid = app.userid_of(ctx.user)
        add = ctx.param("add")
        if add is not None:
            friendid, friend_principal = app.accounts[add]
            ctx.db.execute(
                "INSERT INTO Friends (userid, friendid) VALUES (?, ?)",
                (userid, friendid))
            drives_tag = app.authority.tags.lookup(drives_tag_name(userid))
            # Delegation requires an empty label; the handler has not
            # contaminated itself, so this succeeds.
            ctx.process.delegate(drives_tag.id, friend_principal)
        mine = [r[0] for r in ctx.db.query(
            "SELECT friendid FROM Friends WHERE userid = ? ORDER BY friendid",
            (userid,))]
        listing_me = [r[0] for r in ctx.db.query(
            "SELECT userid FROM Friends WHERE friendid = ? ORDER BY userid",
            (userid,))]
        return {"friends": mine, "friend_of": listing_me}

    # -- edit_account.php (0.01) -----------------------------------------
    @web.route("/edit_account.php")
    def edit_account(ctx: WebContext):
        userid = app.userid_of(ctx.user)
        fullname = ctx.param("fullname")
        email = ctx.param("email")
        if fullname is not None:
            ctx.db.execute("UPDATE Users SET fullname = ? WHERE userid = ?",
                           (fullname, userid))
        if email is not None:
            ctx.db.execute("UPDATE Users SET email = ? WHERE userid = ?",
                           (email, userid))
        row = ctx.db.execute(
            "SELECT username, fullname, email FROM Users WHERE userid = ?",
            (userid,)).first()
        return {"account": None if row is None else row.as_dict()}

    return web


def _install_traffic_stats(app: CarTelApp) -> None:
    """The drives_top aggregation as a stored authority closure.

    The closure's principal is delegated ``all_drives``: it may read
    everyone's drives and declassify the *summary*, the exact pattern of
    section 3.2's "computing the average speed of all CarTel users".
    """
    authority = app.authority
    stats_principal = authority.create_principal("closure:traffic-stats")
    authority.delegate(app.all_drives.id, app.cartel.id, stats_principal.id)
    all_drives_id = app.all_drives.id

    def traffic_stats(session):
        process = session.process
        if process is not None:
            process.add_secrecy(all_drives_id)
        rows = session.query(
            "SELECT c.userid, COUNT(*), AVG(d.distance), SUM(d.npoints) "
            "FROM Drives d JOIN Cars c ON c.carid = d.carid "
            "GROUP BY c.userid")
        # Summarize across users: the released result is an aggregate.
        total_drives = sum(r[1] for r in rows)
        avg_km = (sum((r[2] or 0.0) * r[1] for r in rows) / total_drives
                  if total_drives else 0.0)
        if process is not None:
            process.declassify(all_drives_id)
        return {"drivers": len(rows), "drives": total_drives,
                "avg_km": round(avg_km, 3)}

    app.db.create_procedure("traffic_stats", traffic_stats,
                            closure_principal=stats_principal.id)
