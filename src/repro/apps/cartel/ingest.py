"""GPS ingest: the write path of section 8.2.2.

For each measurement a tuple is inserted into ``Locations`` and two
pieces of derived state are maintained by the ``driveupdate`` closure
trigger: ``LocationsLatest`` (upsert of the car's current position) and
``Drives`` (segment extension or new segment).  CarTel batches 200
inserts per transaction "partly to compensate for the lack of group
commit in PostgreSQL"; the batch size is preserved here.

The trigger runs as a **stored authority closure** bound to a principal
holding authority for ``all_locations`` only: it reads raw locations and
writes drives *without contaminating the inserting process* and without
the ability to declassify anyone's drives tag (section 6.1).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...core.process import IFCProcess
from ...db.catalog import AFTER
from .data import DRIVE_GAP, Measurement, euclid_km
from .schema import CarTelApp, drives_tag_name, location_tag_name

#: Inserts per transaction, as in the paper (section 8.2.2).
BATCH_SIZE = 200


def install_driveupdate_trigger(app: CarTelApp) -> None:
    """Create the closure principal and register the trigger.

    The closure's authority: ``all_locations`` delegated from the cartel
    service.  Notably *not* ``all_drives`` — the trigger can remove
    location tags from its label but can never declassify drive history.
    """
    authority = app.authority
    closure_principal = authority.create_principal("closure:driveupdate")
    authority.delegate(app.all_locations.id, app.cartel.id,
                       closure_principal.id)

    def driveupdate(ctx):
        """AFTER INSERT ON Locations: maintain LocationsLatest and Drives.

        Acting label on entry = the statement label
        ``{u-drives, u-location}``.
        """
        new = ctx.new
        carid = new["carid"]
        session = ctx.session
        # LocationsLatest carries the same label as the raw measurement.
        updated = session.execute(
            "UPDATE LocationsLatest SET lat = ?, lon = ?, speed = ?, ts = ? "
            "WHERE carid = ?",
            (new["lat"], new["lon"], new["speed"], new["ts"], carid))
        if updated.rowcount == 0:
            # The FK to Cars ({u-drives}) differs by the location tag,
            # which the closure may (and must) name explicitly.
            owner = session.execute(
                "SELECT userid FROM Cars WHERE carid = ?", (carid,)).scalar()
            session.insert(
                "LocationsLatest",
                declassifying=(location_tag_name(owner),),
                carid=carid, lat=new["lat"], lon=new["lon"],
                speed=new["speed"], ts=new["ts"])

        # Drives are labelled {u-drives}: drop the location tag, which
        # the closure is authoritative for.
        owner = session.execute(
            "SELECT userid FROM Cars WHERE carid = ?", (carid,)).scalar()
        location_tag = session.db.authority.tags.lookup(
            location_tag_name(owner))
        ctx.declassify(location_tag.id)

        last = session.execute(
            "SELECT driveid, end_ts FROM Drives WHERE carid = ? "
            "ORDER BY end_ts DESC LIMIT 1",
            (carid,)).first()
        if last is not None and new["ts"] - last["end_ts"] <= DRIVE_GAP:
            # Extend the open drive.  The distance increment uses the
            # previous raw point, which the trigger read before
            # declassifying — its own state, not a new read.
            increment = ctx.state.get("last_point_km", 0.5)
            session.execute(
                "UPDATE Drives SET end_ts = ?, distance = distance + ?, "
                "npoints = npoints + 1 WHERE driveid = ?",
                (new["ts"], increment, last["driveid"]))
        else:
            driveid = session.db.next_sequence("drives")
            session.insert(
                "Drives", driveid=driveid, carid=carid,
                start_ts=new["ts"], end_ts=new["ts"], distance=0.0,
                npoints=1)

    app.db.create_trigger(
        "driveupdate", "Locations", "insert", AFTER, _with_state(driveupdate),
        closure_principal=closure_principal.id)
    app.driveupdate_principal = closure_principal


def _with_state(fn):
    """Give the trigger a scratch dict on the context (segment memory)."""
    def wrapper(ctx):
        ctx.state = {}
        key = (id(ctx.session.db), ctx.new["carid"])
        prev = _PREV_POINTS.get(key)
        if prev is not None:
            ctx.state["last_point_km"] = euclid_km(
                prev[0], prev[1], ctx.new["lat"], ctx.new["lon"])
        _PREV_POINTS[key] = (ctx.new["lat"], ctx.new["lon"])
        return fn(ctx)
    return wrapper


#: Previous raw point per (database, car) — the closure's working memory.
_PREV_POINTS = {}


class SensorProcessor:
    """The trusted ingest daemon: labels measurements as they arrive.

    This is part of the ~50 trusted labelling lines (section 6.3): it
    holds authority for both compounds so it can lower its label between
    measurements for different users and commit with an empty label
    (the transaction commit-label rule, section 5.1).
    """

    def __init__(self, app: CarTelApp, *, batch_size: int = BATCH_SIZE):
        self.app = app
        self.batch_size = batch_size
        self.process = IFCProcess(app.authority, app.ingestd.id)
        self.session = app.db.connect(self.process)
        self._car_owner_cache = {}
        self.measurements_processed = 0

    def _owner_of(self, carid: int) -> int:
        owner = self._car_owner_cache.get(carid)
        if owner is None:
            probe = IFCProcess(self.app.authority, self.app.ingestd.id)
            probe_session = self.app.db.connect(probe)
            probe.add_secrecy(self.app.all_drives.id)
            owner = probe_session.execute(
                "SELECT userid FROM Cars WHERE carid = ?", (carid,)).scalar()
            if owner is None:
                raise KeyError("no car %d registered" % carid)
            self._car_owner_cache[carid] = owner
        return owner

    def process_measurements(self, measurements: Iterable[Measurement]) -> int:
        """Replay measurements into the database, 200 per transaction."""
        count = 0
        batch = 0
        session = self.session
        process = self.process
        tags = self.app.authority.tags
        session.begin()
        try:
            for m in measurements:
                owner = self._owner_of(m.carid)
                drives_tag = tags.lookup(drives_tag_name(owner))
                location_tag = tags.lookup(location_tag_name(owner))
                process.add_secrecy(drives_tag.id)
                process.add_secrecy(location_tag.id)
                session.insert(
                    "Locations",
                    declassifying=(location_tag.name,),
                    locid=self.app.db.next_sequence("cartel-locid"),
                    carid=m.carid, lat=m.lat, lon=m.lon, speed=m.speed,
                    ts=m.ts)
                process.declassify(drives_tag.id)
                process.declassify(location_tag.id)
                count += 1
                batch += 1
                if batch >= self.batch_size:
                    session.commit()
                    session.begin()
                    batch = 0
            session.commit()
        except BaseException:
            if session.transaction is not None:
                session.rollback()
            raise
        self.measurements_processed += count
        return count
