"""The paper's case-study applications, ported to the IFC platform:
CarTel (section 6.1) and HotCRP (section 6.2)."""
