"""HotCRP application logic under information flow control.

The original HotCRP protects users with "hundreds of conditionals" in
application code.  Here the queries are ordinary; the *labels* hide what
a user may not see.  The two regression attacks of section 6.2 become
trivially harmless:

* sorting papers by status leaks nothing, because invisible decisions
  arrive as NULLs (outer joins + Query by Label, section 6.3);
* abusing the search feature leaks nothing, because a search predicate
  over ``Decisions`` only ever sees visible tuples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.process import IFCProcess
from ...db.engine import Database
from ...errors import AuthorityError
from ...platform.runtime import IFRuntime
from .schema import (
    PC_MEMBERS_VIEW,
    SCHEMA_SQL,
    contact_tag_name,
    decision_tag_name,
    review_tag_name,
)


class HotCRPApp:
    """Conference management with DIFC.

    The trusted base: this class's account/chair bootstrap methods (tag
    creation and labelling of incoming data) and the review-delegation
    closure — a few dozen lines, mirroring section 6.3.
    """

    def __init__(self, db: Database, runtime: IFRuntime):
        self.db = db
        self.runtime = runtime
        self.authority = db.authority
        self.service = self.authority.create_principal("hotcrp-service")
        self.all_contacts = self.authority.create_compound_tag(
            "all_contacts", owner=self.service.id)
        self.accounts: Dict[str, Tuple[int, int]] = {}  # email -> (cid, pid)
        self.chair_email: Optional[str] = None
        self._next_contact = 1
        self._next_paper = 1
        self._next_review = 1
        self._service_session = db.connect(
            IFCProcess(self.authority, self.service.id))
        self._service_session.execute_script(SCHEMA_SQL)
        # The PCMembers declassifying view is created by the service,
        # which owns all_contacts (the creator must hold the authority
        # being bound in, section 4.3).
        self._service_session.execute(PC_MEMBERS_VIEW)

    # ------------------------------------------------------------------
    # trusted bootstrap (tags + labelling of incoming data)
    # ------------------------------------------------------------------
    def register(self, email: str, password: str, *, first: str = "",
                 last: str = "", affiliation: str = "",
                 is_pc: bool = False, is_chair: bool = False) -> int:
        contact_id = self._next_contact
        self._next_contact += 1
        principal = self.authority.create_principal(
            "contact:%d:%s" % (contact_id, email))
        tag = self.authority.create_tag(
            contact_tag_name(contact_id), owner=principal.id,
            compounds=(self.all_contacts.id,), creator=self.service.id)
        process = IFCProcess(self.authority, principal.id)
        session = self.db.connect(process)
        process.add_secrecy(tag.id)
        session.insert("ContactInfo", contactId=contact_id, email=email,
                       password=password, firstName=first, lastName=last,
                       affiliation=affiliation, phone="555-%04d" % contact_id,
                       isPC=is_pc, isChair=is_chair)
        process.declassify(tag.id)
        self.accounts[email] = (contact_id, principal.id)
        if is_chair:
            self.chair_email = email
        return contact_id

    def principal_of(self, email: str) -> int:
        return self.accounts[email][1]

    def contact_of(self, email: str) -> int:
        return self.accounts[email][0]

    def session_for(self, email: str):
        """An application session acting as the given user."""
        process = self.runtime.spawn(self.principal_of(email))
        return process, self.db.connect(process)

    # ------------------------------------------------------------------
    # papers and conflicts
    # ------------------------------------------------------------------
    def submit_paper(self, author_email: str, title: str) -> int:
        paper_id = self._next_paper
        self._next_paper += 1
        _process, session = self.session_for(author_email)
        contact_id = self.contact_of(author_email)
        # The FK into ContactInfo crosses labels ({} vs {c-contact});
        # the author is authoritative for their own contact tag and must
        # name it explicitly (Foreign Key Rule, section 5.2.2).
        contact_tag = contact_tag_name(contact_id)
        session.insert("Papers", declassifying=(contact_tag,),
                       paperId=paper_id, title=title, authorId=contact_id,
                       submitted_ts=self.db.clock())
        # Authors always conflict with their own papers.
        session.insert("PaperConflicts", declassifying=(contact_tag,),
                       paperId=paper_id, contactId=contact_id)
        return paper_id

    def add_conflict(self, paper_id: int, email: str) -> None:
        _process, session = self.session_for(email)
        session.insert("PaperConflicts",
                       declassifying=(contact_tag_name(
                           self.contact_of(email)),),
                       paperId=paper_id, contactId=self.contact_of(email))

    # ------------------------------------------------------------------
    # reviews
    # ------------------------------------------------------------------
    def add_review(self, reviewer_email: str, paper_id: int, score: int,
                   comments: str) -> int:
        """Write a review, protected by a fresh per-review tag.

        The tag is owned by the review author and immediately delegated
        to the chair (both are authoritative, section 6.2)."""
        review_id = self._next_review
        self._next_review += 1
        reviewer_principal = self.principal_of(reviewer_email)
        tag = self.authority.create_tag(review_tag_name(review_id),
                                        owner=reviewer_principal)
        process, session = self.session_for(reviewer_email)
        if self.chair_email is not None:
            process.delegate(tag.id, self.principal_of(self.chair_email))
        process.add_secrecy(tag.id)
        # The row references both Papers ({}) and the reviewer's
        # ContactInfo ({c-contact}); both symmetric differences must be
        # named, and the reviewer is authoritative for both tags.
        session.insert("PaperReview",
                       declassifying=(tag.name, contact_tag_name(
                           self.contact_of(reviewer_email))),
                       reviewId=review_id, paperId=paper_id,
                       reviewerId=self.contact_of(reviewer_email),
                       score=score, comments=comments)
        process.declassify(tag.id)
        return review_id

    def delegate_reviews_to_pc(self) -> int:
        """The chair's authority closure: delegate each review's tag to
        every PC member without a conflict on that paper (section 6.2).

        Returns the number of delegations performed."""
        chair_principal = self.principal_of(self.chair_email)
        process = self.runtime.spawn(chair_principal)
        session = self.db.connect(process)
        closure = process.make_closure(
            "delegate-reviews", lambda: self._delegate_reviews(session,
                                                               process),
            principal=chair_principal)
        return process.call_closure(closure)

    def _delegate_reviews(self, session, process) -> int:
        pc = self._service_pc_ids()
        count = 0
        for review_id, tag_name in self._all_review_tags():
            tag = self.authority.tags.lookup(tag_name)
            if not self.authority.has_authority(process.principal, tag.id):
                continue
            # Read the review's paper under contamination, then drop the
            # tag again — delegation needs an empty label (section 3.2).
            process.add_secrecy(tag.id)
            row = session.execute(
                "SELECT paperId FROM PaperReview WHERE reviewId = ?",
                (review_id,)).first()
            process.declassify(tag.id)
            if row is None:
                continue
            paper_id = row[0]
            conflicted = {r[0] for r in session.query(
                "SELECT contactId FROM PaperConflicts WHERE paperId = ?",
                (paper_id,))}
            for contact_id in pc:
                if contact_id in conflicted:
                    continue
                principal = self._principal_by_contact(contact_id)
                try:
                    self.authority.delegate(tag.id, process.principal,
                                            principal, process=process)
                    count += 1
                except AuthorityError:
                    continue
        return count

    def _all_review_tags(self) -> List[Tuple[int, str]]:
        found = []
        for tag in self.authority.tags.all_tags():
            name = tag.name
            if name.startswith("r") and name.endswith("-review"):
                try:
                    review_id = int(name[1:-len("-review")])
                except ValueError:
                    continue
                found.append((review_id, name))
        return sorted(found)

    def _service_pc_ids(self) -> List[int]:
        probe = IFCProcess(self.authority, self.service.id)
        session = self.db.connect(probe)
        probe.add_secrecy(self.all_contacts.id)
        ids = [r[0] for r in session.query(
            "SELECT contactId FROM ContactInfo WHERE isPC = TRUE")]
        probe.declassify(self.all_contacts.id)
        return ids

    def _principal_by_contact(self, contact_id: int) -> int:
        for email, (cid, principal) in self.accounts.items():
            if cid == contact_id:
                return principal
        raise KeyError("no account for contact %d" % contact_id)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def record_decision(self, paper_id: int, outcome: str) -> None:
        """Chair records a decision under a per-paper tag (section 6.2:
        not available to authors or conflicted PC members until release)."""
        chair_principal = self.principal_of(self.chair_email)
        tag = self.authority.create_tag(decision_tag_name(paper_id),
                                        owner=chair_principal)
        process = self.runtime.spawn(chair_principal)
        session = self.db.connect(process)
        process.add_secrecy(tag.id)
        session.insert("Decisions", declassifying=(tag.name,),
                       paperId=paper_id, outcome=outcome)
        process.declassify(tag.id)

    def release_decision(self, paper_id: int) -> None:
        """Officially release: delegate the decision tag to the author."""
        chair_principal = self.principal_of(self.chair_email)
        process = self.runtime.spawn(chair_principal)
        author = self.db.connect(process).execute(
            "SELECT authorId FROM Papers WHERE paperId = ?",
            (paper_id,)).scalar()
        tag = self.authority.tags.lookup(decision_tag_name(paper_id))
        process.delegate(tag.id, self._principal_by_contact(author))

    # ------------------------------------------------------------------
    # user-facing queries (untrusted application code)
    # ------------------------------------------------------------------
    def pc_members(self, email: str) -> List[Tuple[str, str]]:
        """The PC listing page, through the declassifying view."""
        _process, session = self.session_for(email)
        return [(r[0], r[1]) for r in session.query(
            "SELECT firstName, lastName FROM PCMembers ORDER BY lastName")]

    def papers_by_status(self, email: str) -> List[Dict]:
        """The 'sort by status' page — the section 6.2 leak regression.

        The outer join yields NULL outcomes for decisions the user may
        not see, so the ordering reveals nothing."""
        process, session = self.session_for(email)
        contact = self.contact_of(email)
        for paper in session.query(
                "SELECT paperId FROM Papers WHERE authorId = ?", (contact,)):
            tag_name = decision_tag_name(paper[0])
            try:
                tag = self.authority.tags.lookup(tag_name)
            except Exception:
                continue
            if self.authority.has_authority(process.principal, tag.id):
                process.add_secrecy(tag.id)
        rows = session.query(
            "SELECT p.paperId, p.title, d.outcome "
            "FROM Papers p LEFT JOIN Decisions d ON d.paperId = p.paperId "
            "ORDER BY d.outcome DESC, p.paperId")
        visible = [{"paper": r[0], "title": r[1], "status": r[2]}
                   for r in rows]
        for tag_id in list(process.label):
            process.declassify(tag_id)
        return visible

    def search_decided(self, email: str, outcome: str) -> List[int]:
        """The search-abuse regression: only visible decisions match."""
        _process, session = self.session_for(email)
        return [r[0] for r in session.query(
            "SELECT paperId FROM Decisions WHERE outcome = ? ORDER BY paperId",
            (outcome,))]

    def my_reviews(self, email: str, paper_id: int) -> List[Dict]:
        """Reviews of a paper, as visible to this user.

        The application tries every review tag it is authoritative for;
        everything else stays invisible, no conditionals required."""
        process, session = self.session_for(email)
        visible: List[Dict] = []
        for review_id, tag_name in self._all_review_tags():
            tag = self.authority.tags.lookup(tag_name)
            if not self.authority.has_authority(process.principal, tag.id):
                continue
            process.add_secrecy(tag.id)
            row = session.execute(
                "SELECT reviewId, score, comments FROM PaperReview "
                "WHERE reviewId = ? AND paperId = ?",
                (review_id, paper_id)).first()
            if row is not None:
                visible.append({"review": row[0], "score": row[1],
                                "comments": row[2]})
            process.declassify(tag.id)
        return visible
