"""HotCRP (section 6.2): the conference-management case study."""

from .app import HotCRPApp
from .schema import (
    PC_MEMBERS_VIEW,
    SCHEMA_SQL,
    contact_tag_name,
    decision_tag_name,
    review_tag_name,
)

__all__ = [
    "HotCRPApp",
    "PC_MEMBERS_VIEW",
    "SCHEMA_SQL",
    "contact_tag_name",
    "decision_tag_name",
    "review_tag_name",
]
