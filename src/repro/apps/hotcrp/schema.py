"""HotCRP schema and tag scheme (section 6.2).

Tag scheme, following the paper:

* each user ``c`` has a ``c<id>-contact`` tag protecting their
  ``ContactInfo`` row; all of these live under the ``all_contacts``
  compound tag;
* each review has its own tag, owned by the review author and delegated
  to the chair at creation ("a tag that only the review author and the
  chair are authoritative for"); an authority closure running with the
  chair's authority later delegates it to eligible (non-conflicted) PC
  members;
* each acceptance decision is protected by a per-paper tag owned by the
  chair, delegated to the author only when results are released.

``PCMembers`` is the paper's example **declassifying view**: it distils
the public names of PC members out of the sensitive ``ContactInfo``
table, using authority for ``all_contacts``.
"""

from __future__ import annotations

SCHEMA_SQL = """
CREATE TABLE ContactInfo (
    contactId INT PRIMARY KEY,
    email TEXT UNIQUE NOT NULL,
    firstName TEXT,
    lastName TEXT,
    affiliation TEXT,
    phone TEXT,
    password TEXT NOT NULL,
    isPC BOOLEAN NOT NULL DEFAULT FALSE,
    isChair BOOLEAN NOT NULL DEFAULT FALSE
);
CREATE TABLE Papers (
    paperId INT PRIMARY KEY,
    title TEXT NOT NULL,
    authorId INT NOT NULL REFERENCES ContactInfo(contactId),
    submitted_ts TIMESTAMP
);
CREATE TABLE PaperConflicts (
    paperId INT NOT NULL REFERENCES Papers(paperId),
    contactId INT NOT NULL REFERENCES ContactInfo(contactId),
    PRIMARY KEY (paperId, contactId)
);
CREATE TABLE PaperReview (
    reviewId INT PRIMARY KEY,
    paperId INT NOT NULL REFERENCES Papers(paperId),
    reviewerId INT NOT NULL REFERENCES ContactInfo(contactId),
    score INT,
    comments TEXT
);
CREATE TABLE Decisions (
    paperId INT PRIMARY KEY REFERENCES Papers(paperId),
    outcome TEXT NOT NULL
);
CREATE INDEX papers_by_author ON Papers (authorId);
CREATE INDEX reviews_by_paper ON PaperReview (paperId);
CREATE INDEX conflicts_by_paper ON PaperConflicts (paperId);
"""

PC_MEMBERS_VIEW = (
    "CREATE VIEW PCMembers AS "
    "SELECT firstName, lastName FROM ContactInfo WHERE isPC = TRUE "
    "WITH DECLASSIFYING (all_contacts)"
)


def contact_tag_name(contact_id: int) -> str:
    return "c%d-contact" % contact_id


def review_tag_name(review_id: int) -> str:
    return "r%d-review" % review_id


def decision_tag_name(paper_id: int) -> str:
    return "p%d-decision" % paper_id
