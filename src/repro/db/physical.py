"""Physical operators: the pull-based execution layer.

This is the bottom of the three-layer query pipeline
(:mod:`repro.db.logical` → :mod:`repro.db.optimizer` → here).  Each
operator yields ``(values, label, ilabel)`` triples.  Query by Label is
enforced at the bottom of the tree, in the scan operators, mirroring the
paper's design decision (section 7.1): visibility — MVCC *and* label
confinement — is decided "at the layer that reads and writes tuples in
tables", so nothing a higher layer does can surface a tuple the process
may not see.

**Batch-at-a-time execution.**  Operators expose two pull interfaces:
``rows()`` (one ``(values, label, ilabel)`` triple at a time — the
original executor, and still the reference semantics) and ``batches()``
(:class:`RowBatch` objects of ~``batch_size`` rows).  The planner stamps
``batch_size`` onto every node of an optimized plan; the naive planner
leaves it at 0, pinning the differential harness's reference executor
to genuinely per-tuple checks.  Either interface adapts to the other —
``Plan.batches`` chunks ``rows()``, ``Plan._drain`` flattens
``batches()`` — so batch-native and row-native operators compose
freely and cursors (:mod:`repro.db.session`) keep working unchanged.

Batching exists because the per-tuple scan cost is dominated by three
amortizable steps (the paper's Query-by-Label overhead, section 7.1):

* **label runs** — labels are interned and heap neighbours overwhelmingly
  share them, so a scan batch groups candidate versions by label
  *identity* and runs ``strip``/``covers`` once per distinct label per
  batch (a per-batch memo dict) instead of once per tuple;
* **MVCC fast path** — when every version in a batch has ``xmax``
  unset and an ``xmin`` below the snapshot horizon
  (:meth:`~repro.db.transactions.TransactionManager.committed_horizon`),
  the whole batch is visible and per-row ``visible()`` is skipped;
* **page runs** — buffer-cache accounting is charged per consecutive
  (table, page) run via :meth:`~repro.db.storage.Table.touch_run`,
  with counters identical to per-version ``touch``.

Label enforcement itself never moves: both executors decide visibility
in the scan, below every optimization and batching decision.

Label flow through operators:

* scans emit the tuple's label (stripped of any enclosing declassifying
  view's tags);
* joins emit the union of the joined rows' labels;
* aggregation emits the union of the group's labels;
* projection/sort/limit pass labels through.

Because scans filter to ``LT ⊆ LP``, every emitted label is covered by
the process label — reading query results never contaminates the process
(that is the point of Query by Label, section 4.2).

Operators carry an optional ``explain`` attribute, a one-line summary
attached by the planner during lowering and rendered by ``EXPLAIN``.
"""

from __future__ import annotations

import heapq
from itertools import chain, islice
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.counters import CounterGroup
from ..core.labels import EMPTY_LABEL, Label
from ..core.rules import COUNTERS as RULE_COUNTERS, covers, strip
from ..errors import AuthorityError
from .catalog import ViewDef
from .spill import (AGG_STATE_BYTES, BUCKET_ENTRY_BYTES, GroupSpill,
                    MAX_RECURSION, SortRuns, SpilledHashBuild,
                    _join_partition, estimate_row_bytes)
from .storage import Table

ExecRow = Tuple[list, Label, Label]          # (values, label, ilabel)

#: Rows per batch when no explicit size is configured (the engine reads
#: ``REPRO_BATCH_SIZE`` and passes its own default through the planner;
#: this constant only backs the chunking shim for unstamped nodes).
DEFAULT_BATCH_SIZE = 1024


class ExecCounters(CounterGroup):
    """Process-wide executor counters, in the ``rules.COUNTERS`` mold
    (diff a snapshot around the work of interest).

    ``columns_materialized`` counts *cells* (column values) the scans
    copied out of stored tuples into batch columns — the observable
    proof of projection pushdown: a scan projecting 2 of N columns
    materializes ``2 × rows`` cells, batch-size invariant.
    ``rows_widened`` counts rows rebuilt to row-major form from a
    columnar batch (the :attr:`RowBatch.values` compatibility shim);
    a well-pushed pipeline widens each output row at most once, at the
    cursor boundary.
    """

    FIELDS = ("columns_materialized", "rows_widened")


#: The module-wide counter instance.
EXEC_COUNTERS = ExecCounters()


class RowBatch:
    """A batch of execution rows, stored row-major or columnar.

    Logically a batch is three parallel sequences: execution rows,
    interned secrecy :class:`Label` objects, and integrity labels — row
    ``i`` is exactly the ``(values[i], labels[i], ilabels[i])`` triple
    the row-at-a-time interface would have yielded.  Physically the
    value side has two layouts:

    * **row-major** (the :meth:`__init__` constructor): ``values`` is a
      list of per-row lists — what row-native operators produce;
    * **columnar** (:meth:`from_columns`): one Python list *per
      column*, where a ``None`` column slot means the planner proved
      the column is never read (projection pushdown) and it was never
      materialized; reading it yields SQL NULLs.

    ``labels``/``ilabels`` are always per-row compact lists — label
    checks are tuple-granularity in the paper's model (a tag protects a
    row, not a cell), and the interned label objects already behave as
    a dictionary-encoded column.

    A columnar batch may additionally carry a **selection vector**
    (``_sel``): row ``i`` of the batch reads column cells at physical
    index ``_sel[i]``.  :meth:`select` composes selections instead of
    copying column data, so Filter never copies surviving rows.

    :attr:`values` is a lazy property: on a columnar batch the first
    access widens the batch back to row-major (counted in
    ``EXEC_COUNTERS.rows_widened``) and caches the result, so a
    row-native consumer pays the conversion exactly once per batch.
    """

    __slots__ = ("labels", "ilabels", "_rows", "_columns", "_sel")

    def __init__(self, values: list, labels: list, ilabels: list):
        self._rows = values
        self._columns = None
        self._sel = None
        self.labels = labels
        self.ilabels = ilabels

    @classmethod
    def from_columns(cls, columns: list, labels: list,
                     ilabels: list) -> "RowBatch":
        """Columnar batch: ``columns[j]`` is column ``j``'s value list,
        or ``None`` for a projected-away (never-materialized) column."""
        batch = cls.__new__(cls)
        batch._rows = None
        batch._columns = columns
        batch._sel = None
        batch.labels = labels
        batch.ilabels = ilabels
        return batch

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def width(self) -> int:
        cols = self._columns
        if cols is not None:
            return len(cols)
        rows = self._rows
        return len(rows[0]) if rows else 0

    def column(self, index: int) -> list:
        """Column ``index`` as a compact list (selection applied).

        On a row-major batch the extraction is computed once and
        cached; on a columnar batch with no selection this is the
        stored array itself, zero-copy.  A projected-away column reads
        as all-NULL.
        """
        cols = self._columns
        if cols is None:
            rows = self._rows
            width = len(rows[0]) if rows else 0
            cols = self._columns = [None] * width
        col = cols[index] if index < len(cols) else None
        if col is None:
            rows = self._rows
            if rows is None or self._sel is not None:
                return [None] * len(self.labels)
            col = [row[index] for row in rows]
            cols[index] = col
            return col
        sel = self._sel
        if sel is None:
            return col
        return [col[i] for i in sel]

    def columns(self) -> list:
        """All columns as compact lists; ``None`` marks a column that
        was projected away (so consumers can keep not materializing
        it)."""
        cols = self._columns
        if cols is None or self._rows is not None:
            # Row-major (or already widened): extract per column.
            return [self.column(i) for i in range(self.width)]
        if self._sel is None:
            return list(cols)
        sel = self._sel
        return [None if col is None else [col[i] for i in sel]
                for col in cols]

    @property
    def values(self) -> list:
        """Row-major view (one list per row), widened lazily from a
        columnar batch and cached."""
        rows = self._rows
        if rows is None:
            rows = self._rows = self._widen()
        return rows

    def _widen(self) -> list:
        cols = self._columns
        sel = self._sel
        n = len(self.labels)
        EXEC_COUNTERS.rows_widened += n
        if not n:
            return []
        if sel is None and all(col is not None for col in cols):
            return [list(row) for row in zip(*cols)]
        width = len(cols)
        rows = [[None] * width for _ in range(n)]
        for j, col in enumerate(cols):
            if col is None:
                continue
            if sel is None:
                for i in range(n):
                    rows[i][j] = col[i]
            else:
                for i, k in enumerate(sel):
                    rows[i][j] = col[k]
        return rows

    def select(self, keep) -> "RowBatch":
        """The sub-batch at row indexes ``keep`` (in order).

        Columnar batches share their column arrays with the parent and
        only compose the selection vector — this is the no-copy path
        Filter relies on.  Labels compact eagerly (they are per-row
        state either way).
        """
        labels = self.labels
        ilabels = self.ilabels
        out_labels = [labels[i] for i in keep]
        out_ilabels = [ilabels[i] for i in keep]
        if self._rows is None:
            batch = RowBatch.__new__(RowBatch)
            batch._rows = None
            batch._columns = self._columns
            sel = self._sel
            batch._sel = (list(keep) if sel is None
                          else [sel[i] for i in keep])
            batch.labels = out_labels
            batch.ilabels = out_ilabels
            return batch
        rows = self._rows
        return RowBatch([rows[i] for i in keep], out_labels, out_ilabels)

    def rows(self) -> Iterator[ExecRow]:
        return zip(self.values, self.labels, self.ilabels)


def _unspool_seq(partition):
    """Undo :class:`Distinct`'s seq-in-values spool encoding: yields
    ``(seq, key, row)`` from a GroupSpill partition whose rows were
    spooled as ``[seq] + values``."""
    for key, (values, label, ilabel) in partition:
        yield values[0], key, (values[1:], label, ilabel)


def _row_source(child, batch_size: int, ctx) -> Iterator[ExecRow]:
    """Row view of a child for blocking operators (Sort, Aggregate,
    Distinct): consume batches when the tree is batched — the whole
    input is materialized into operator state anyway, so there is
    nothing to gain from keeping it columnar — else plain rows."""
    if batch_size:
        for batch in child.batches(ctx):
            yield from zip(batch.values, batch.labels, batch.ilabels)
    else:
        yield from child.rows(ctx)


def _chunked(iterator, size: int):
    """Chunk an iterator into lists of up to ``size``."""
    chunk: list = []
    append = chunk.append
    for item in iterator:
        append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
            append = chunk.append
    if chunk:
        yield chunk


class ExecContext:
    """Per-execution state threaded through plan nodes and expressions."""

    __slots__ = ("session", "params", "outer_stack", "read_label",
                 "read_ilabel", "principal", "registry", "authority",
                 "ifc_enabled", "work_mem", "scan_range")

    def __init__(self, session, params: tuple, read_label: Label,
                 read_ilabel: Label, principal: Optional[int]):
        self.session = session
        self.params = params
        self.outer_stack: list = []
        self.read_label = read_label
        self.read_ilabel = read_ilabel
        self.principal = principal
        self.authority = session.db.authority
        self.registry = self.authority.tags
        self.ifc_enabled = session.db.ifc_enabled
        #: Per-operator memory budget in bytes (0 = unbounded): read at
        #: execution time so a cached plan honours the database's
        #: current ``work_mem`` — spilling is a runtime overflow
        #: reaction, not a plan property (the optimizer only *costs* it).
        self.work_mem = getattr(session.db, "work_mem", 0) or 0
        #: Set inside a forked parallel worker: the half-open *chunk*
        #: range ``(lo, hi)`` this worker's full scans must cover (see
        #: ``Table.all_versions_batched``).  Also the "am I a worker?"
        #: flag that keeps a worker from forking a nested gang.
        self.scan_range: Optional[Tuple[int, int]] = None

    def now(self) -> float:
        return self.session.db.clock()


class Plan:
    """Base class: a pull-based operator producing ExecRows.

    Subclasses implement ``rows()`` (row-at-a-time) and may additionally
    implement a batch-native ``batches()``.  A node executes batched iff
    the planner stamped a non-zero ``batch_size`` on it; the two default
    methods below adapt whichever interface a subclass implements to the
    other one.
    """

    #: One-line EXPLAIN annotation, attached by the planner at lowering.
    explain: Optional[str] = None
    #: Optimizer estimates (rows out of this operator, cumulative cost),
    #: attached by the planner at lowering and rendered by EXPLAIN.
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None
    #: Rows per batch; 0 pins row-at-a-time execution (naive/reference
    #: plans).  Stamped tree-wide by the planner at lowering.
    batch_size: int = 0
    #: Estimated peak operator memory in bytes (materializing operators
    #: only — join builds and inner materializations), attached by the
    #: planner and rendered by EXPLAIN.  Under a ``work_mem`` budget a
    #: spilling operator's estimate is its per-partition share, i.e.
    #: the expected peak *resident* footprint.
    est_mem: Optional[float] = None
    #: Optimizer-estimated grace-spill leaf partitions (0 = expected to
    #: fit in ``work_mem``); rendered by EXPLAIN.
    est_spill_partitions: int = 0
    #: Optimizer-estimated external-sort runs (0 = the sort is expected
    #: to run fully in memory); rendered by EXPLAIN as ``runs=N``.
    est_runs: int = 0

    def rows(self, ctx: ExecContext) -> Iterator[ExecRow]:
        raise NotImplementedError

    def batches(self, ctx: ExecContext) -> Iterator[RowBatch]:
        """Default/fallback: chunk the row-at-a-time output."""
        size = self.batch_size or DEFAULT_BATCH_SIZE
        values: list = []
        labels: list = []
        ilabels: list = []
        for row_values, label, ilabel in self.rows(ctx):
            values.append(row_values)
            labels.append(label)
            ilabels.append(ilabel)
            if len(values) >= size:
                yield RowBatch(values, labels, ilabels)
                values, labels, ilabels = [], [], []
        if values:
            yield RowBatch(values, labels, ilabels)

    def _drain(self, ctx: ExecContext) -> Iterator[ExecRow]:
        """Row view of the batch-native output (compatibility shim)."""
        for batch in self.batches(ctx):
            yield from zip(batch.values, batch.labels, batch.ilabels)


class SingleRow(Plan):
    """SELECT without FROM: one empty input row."""

    def rows(self, ctx):
        yield [], EMPTY_LABEL, EMPTY_LABEL


def _touch_page_runs(table: Table, chunk: list) -> None:
    """Charge buffer-cache accounting for a candidate chunk by page run.

    Equivalent, counter for counter, to calling ``table.touch(version)``
    on every version in order (heap neighbours share pages, so a batch
    collapses to a handful of runs)."""
    run_page = -1
    run_len = 0
    for version in chunk:
        page_id = version.page_id
        if page_id == run_page:
            run_len += 1
        else:
            if run_len:
                table.touch_run(run_page, run_len)
            run_page = page_id
            run_len = 1
    if run_len:
        table.touch_run(run_page, run_len)


def _visible_versions(chunk: list, txn, txn_manager) -> list:
    """MVCC-filter a candidate chunk, batch-wise when possible.

    Fast path: if no version in the chunk has been deleted (``xmax``
    unset) and the newest ``xmin`` is below both the snapshot and the
    transaction manager's committed horizon, every version was created
    by a transaction that committed before the snapshot — the whole
    chunk is visible with zero per-row checks.  Any in-flight
    concurrent transaction old enough to matter (``min_in_progress``),
    any aborted-but-unvacuumed creator (the horizon stalls on it), or
    any deletion drops the chunk to per-row ``visible()``.

    The horizon is the only moving part: it advances when a concurrent
    writer commits, possibly *mid-statement* (a spilled hash join can
    keep scanning long after its first output row).  That is safe by
    construction: the two snapshot-anchored bounds never move, and any
    version such a writer created fails one of them — a writer begun
    after the snapshot has ``xmin >= snapshot.xmax``, one in flight at
    snapshot time has ``xmin >= min_in_progress`` — so the chunk drops
    to per-row ``visible()``, which consults the immutable snapshot.
    An advancing horizon alone can therefore never admit a
    snapshot-invisible version (regression:
    ``tests/test_spill.py::test_spilled_hash_join_sees_statement_snapshot``).
    """
    hi_xmin = 0
    for version in chunk:
        if version.xmax is not None:
            break
        if version.xmin > hi_xmin:
            hi_xmin = version.xmin
    else:
        snapshot = txn.snapshot
        if (hi_xmin < snapshot.xmax
                and (snapshot.min_in_progress is None
                     or hi_xmin < snapshot.min_in_progress)
                and hi_xmin < txn_manager.committed_horizon()):
            return chunk
    visible = txn_manager.visible
    return [version for version in chunk if visible(version, txn)]


def _audit_declassify(ctx: ExecContext, view_grants) -> None:
    """IFC audit hook: one ``declassify_view`` event per declassifying
    view per execution, recorded right after its authority
    re-validated (see :class:`repro.db.metrics.AuditLog`)."""
    audit = getattr(ctx.session.db, "audit", None)
    if audit is None:
        return
    for view, tags in view_grants:
        audit.record("declassify_view", view=view.name,
                     tags=tuple(sorted(tags)))


class Scan(Plan):
    """Label-filtered, MVCC-filtered scan of a base table.

    ``declass`` is the union of tags declassified by enclosing
    declassifying views; ``view_grants`` lists (view, tags) pairs whose
    authority must be re-validated at execution time.  Emitted rows carry
    the *stripped* label, and visibility requires the stripped label to
    be covered by the process label — an invisible tuple stays invisible
    no matter what the query looks like.

    ``predicate_on_values`` marks a predicate that references only real
    columns (no ``_label``, no subqueries — see
    :func:`repro.db.expressions.reads_columns_only`): it is evaluated
    directly against the stored value tuple, so rejected rows never pay
    the ``list(...) + [label]`` output-row copy.  Predicate-free paths
    skip the copy wherever the row itself is not the output
    (``versions()``), and build it exactly once where it is (``rows()``).

    ``needed`` is the projection the optimizer pushed down: the sorted
    tuple of stored-column positions anything above this scan reads
    (``None`` = all of them).  The batched scan materializes *only*
    those columns into its columnar output — the rest stay inside the
    stored tuples and read as NULL — which is safe because the planner
    proved no expression above the scan references them.  Predicates
    pushed *into* the scan still see the full stored tuple, and the
    row-at-a-time paths (``rows()`` for the naive executor,
    ``versions()`` for DML xmax stamping) always build full-width rows.
    """

    def __init__(self, table: Table, predicate: Optional[Callable],
                 declass: Label, view_grants: List[Tuple[ViewDef, Label]],
                 predicate_on_values: bool = False,
                 needed: Optional[Tuple[int, ...]] = None):
        self.table = table
        self.predicate = predicate
        self.declass = declass
        self.view_grants = view_grants
        self.predicate_on_values = predicate_on_values
        self.needed = needed
        #: Projected column names for EXPLAIN (``cols=…``); None when
        #: the scan materializes full width.
        self.needed_names = (
            None if needed is None
            else [table.schema.column_names[p] for p in needed])

    def _check_view_authority(self, ctx: ExecContext) -> None:
        for view, tags in self.view_grants:
            for tag_id in tags:
                if not ctx.authority.has_authority(view.principal, tag_id):
                    raise AuthorityError(
                        "declassifying view %r lost authority for tag %d "
                        "(revoked?)" % (view.name, tag_id))
        _audit_declassify(ctx, self.view_grants)

    def _candidates(self, ctx: ExecContext):
        return self.table.all_versions()

    def _candidate_chunks(self, ctx: ExecContext, size: int):
        """Candidate versions in lists of ~``size`` (batch granularity)."""
        if type(self)._candidates is Scan._candidates:
            # Full heap scan: let the table slice its version array
            # directly instead of chunking a per-version generator.
            # Inside a parallel worker, take only this worker's
            # contiguous chunk range — same boundaries as serial.
            return self.table.all_versions_batched(
                size, part=ctx.scan_range)
        return _chunked(self._candidates(ctx), size)

    def _check_predicate(self, predicate, version, label, ctx) -> bool:
        """Row-shape predicate check used by the batched paths."""
        if self.predicate_on_values:
            return bool(predicate(version.values, ctx))
        values = list(version.values)
        values.append(label)
        return bool(predicate(values, ctx))

    def versions(self, ctx: ExecContext):
        """Target-row enumeration for UPDATE/DELETE: yields the physical
        tuple *versions* so the session can stamp ``xmax``.

        Driven by the same access path as ``rows()`` (``_candidates``
        is what ``IndexScan``/``IndexRangeScan`` override), with the
        same MVCC and Query-by-Label visibility — an invisible tuple is
        simply unaffected by DML.  The write-rule *equality* check
        (section 4.2) happens in the session on each yielded version.
        DML targets are base tables, never views, so no
        declassification applies here.  With a non-zero ``batch_size``
        the enumeration runs batch-at-a-time: page-run touch
        accounting, the whole-batch MVCC fast path, and one ``covers``
        per distinct label per batch.
        """
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        predicate = self.predicate
        registry = ctx.registry
        read_label = ctx.read_label
        check_labels = ctx.ifc_enabled
        size = self.batch_size
        if size:
            for chunk in self._candidate_chunks(ctx, size):
                _touch_page_runs(table, chunk)
                live = _visible_versions(chunk, txn, txn_manager)
                memo: Dict[Label, bool] = {}
                for version in live:
                    if check_labels:
                        label = version.label
                        ok = memo.get(label)
                        if ok is None:
                            ok = covers(registry, label, read_label)
                            memo[label] = ok
                        if not ok:
                            RULE_COUNTERS.rows_suppressed += 1
                            continue
                    if predicate is not None and not self._check_predicate(
                            predicate, version, version.label, ctx):
                        continue
                    yield version
            return
        on_values = self.predicate_on_values
        for version in self._candidates(ctx):
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            if check_labels and not covers(registry, version.label,
                                           read_label):
                RULE_COUNTERS.rows_suppressed += 1
                continue
            if predicate is not None:
                if on_values:
                    if not predicate(version.values, ctx):
                        continue
                else:
                    values = list(version.values)
                    values.append(version.label)
                    if not predicate(values, ctx):
                        continue
            yield version

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        if ctx.ifc_enabled and self.view_grants:
            self._check_view_authority(ctx)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        predicate = self.predicate
        on_values = self.predicate_on_values
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        for version in self._candidates(ctx):
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            if check_labels:
                label = version.label
                if declass:
                    label = strip(registry, label, declass)
                if not covers(registry, label, read_label):
                    RULE_COUNTERS.rows_suppressed += 1
                    continue
            else:
                label = version.label
            if predicate is not None and on_values:
                # Label-free predicate: test the stored tuple directly;
                # only survivors pay the output-row copy.
                if not predicate(version.values, ctx):
                    continue
                values = list(version.values)
                values.append(label)
            else:
                values = list(version.values)
                values.append(label)
                if predicate is not None and not predicate(values, ctx):
                    continue
            yield values, label, version.ilabel

    def batches(self, ctx):
        """Batch-native scan: the two big per-tuple amortizations.

        Candidates arrive in chunks; each chunk is charged to the
        buffer cache by page run, MVCC-filtered batch-wise, and
        label-filtered through a per-batch memo keyed on the interned
        label object — ``covers`` runs once per *distinct* label per
        batch instead of once per tuple.  Declassifying views take the
        per-row path (each row's emitted label is its *stripped* label,
        so the uniform-label shortcut does not apply), where the
        globally memoized ``strip``/``covers`` still serve them.

        Output is **columnar**: surviving versions are collected first,
        then only the ``needed`` stored columns are materialized into
        per-column arrays (``EXEC_COUNTERS.columns_materialized``
        counts the copied cells), with the emitted labels doubling as
        the ``_label`` pseudo-column.  Predicates still evaluate
        against the stored tuple, before any materialization.
        """
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        if ctx.ifc_enabled and self.view_grants:
            self._check_view_authority(ctx)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        predicate = self.predicate
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        size = self.batch_size
        ncols = len(table.schema.column_names)
        positions = (range(ncols) if self.needed is None else self.needed)
        # Label-run batching applies when every emitted label is the
        # stored label (no declassification): one covers() per distinct
        # interned label per batch.  Declassifying views take the
        # per-row path (the emitted label is the *stripped* one), where
        # the globally memoized strip/covers still serve them.
        run_memo = check_labels and not declass
        for chunk in self._candidate_chunks(ctx, size):
            _touch_page_runs(table, chunk)
            live = _visible_versions(chunk, txn, txn_manager)
            kept: list = []
            out_labels: list = []
            out_ilabels: list = []
            memo: Dict[Label, bool] = {}
            for version in live:
                label = version.label
                if run_memo:
                    ok = memo.get(label)
                    if ok is None:
                        ok = covers(registry, label, read_label)
                        memo[label] = ok
                    if not ok:
                        RULE_COUNTERS.rows_suppressed += 1
                        continue
                elif check_labels:
                    if declass:
                        label = strip(registry, label, declass)
                    if not covers(registry, label, read_label):
                        RULE_COUNTERS.rows_suppressed += 1
                        continue
                if predicate is not None and not self._check_predicate(
                        predicate, version, label, ctx):
                    continue
                kept.append(version)
                out_labels.append(label)
                out_ilabels.append(version.ilabel)
            if not kept:
                continue
            columns: list = [None] * (ncols + 1)
            for p, col in zip(positions, table.materialize_columns(
                    kept, positions)):
                columns[p] = col
            columns[ncols] = out_labels       # the _label pseudo-column
            EXEC_COUNTERS.columns_materialized += \
                len(positions) * len(kept)
            yield RowBatch.from_columns(columns, out_labels, out_ilabels)


class IndexScan(Scan):
    """Scan driven by an index lookup; key computed per execution."""

    def __init__(self, table: Table, index, key_fns: List[Callable],
                 predicate: Optional[Callable], declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]],
                 predicate_on_values: bool = False,
                 needed: Optional[Tuple[int, ...]] = None):
        super().__init__(table, predicate, declass, view_grants,
                         predicate_on_values, needed)
        self.index = index
        self.key_fns = key_fns

    def _candidates(self, ctx):
        key = tuple(fn([], ctx) for fn in self.key_fns)
        if any(k is None for k in key):
            return iter(())
        return self.table.versions_for_tids(self.index.lookup(key))


class IndexRangeScan(Scan):
    """Scan driven by an ordered-index range lookup.

    The key is an equality prefix (``eq_fns``) plus optional low/high
    bounds on the next index column, all computed per execution; the
    candidate tids come from ``OrderedIndex.scan_range``.  A bound
    expression evaluating to NULL yields no rows (a SQL comparison
    against NULL is UNKNOWN), matching what the filter would do.
    """

    def __init__(self, table: Table, index, eq_fns: List[Callable],
                 low_fn: Optional[Callable], high_fn: Optional[Callable],
                 include_low: bool, include_high: bool,
                 predicate: Optional[Callable], declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]],
                 predicate_on_values: bool = False,
                 needed: Optional[Tuple[int, ...]] = None):
        super().__init__(table, predicate, declass, view_grants,
                         predicate_on_values, needed)
        self.index = index
        self.eq_fns = eq_fns
        self.low_fn = low_fn
        self.high_fn = high_fn
        self.include_low = include_low
        self.include_high = include_high

    def _candidates(self, ctx):
        prefix = tuple(fn([], ctx) for fn in self.eq_fns)
        if any(k is None for k in prefix):
            return iter(())
        low = prefix if prefix else None
        include_low = True
        if self.low_fn is not None:
            value = self.low_fn([], ctx)
            if value is None:
                return iter(())
            low = prefix + (value,)
            include_low = self.include_low
        high = prefix if prefix else None
        include_high = True
        if self.high_fn is not None:
            value = self.high_fn([], ctx)
            if value is None:
                return iter(())
            high = prefix + (value,)
            include_high = self.include_high
        return self.table.versions_for_tids(
            self.index.scan_range(low, high, include_low=include_low,
                                  include_high=include_high))


class Filter(Plan):
    """Residual predicate; ``batch_predicate`` is the batch-compiled
    form (:func:`repro.db.expressions.compile_batch`) used when the
    node executes batch-at-a-time."""

    def __init__(self, child: Plan, predicate: Callable,
                 batch_predicate: Optional[Callable] = None):
        self.child = child
        self.predicate = predicate
        self.batch_predicate = batch_predicate

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        predicate = self.predicate
        for values, label, ilabel in self.child.rows(ctx):
            if predicate(values, ctx):
                yield values, label, ilabel

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        predicate = self.predicate
        batch_predicate = self.batch_predicate
        for batch in self.child.batches(ctx):
            if batch_predicate is not None:
                # Column-at-a-time evaluation: touches only the columns
                # the predicate reads.
                flags = batch_predicate(batch, ctx)
            else:
                flags = [predicate(row, ctx) for row in batch.values]
            if all(flags):
                yield batch
                continue
            keep = [i for i, flag in enumerate(flags) if flag]
            if keep:
                # select() composes the selection vector on columnar
                # batches: surviving rows are never copied.
                yield batch.select(keep)


class NestedLoopJoin(Plan):
    """Generic join; materializes the right side once per execution.

    ``batch_on`` is the batch-compiled form of the join predicate
    (:func:`repro.db.expressions.compile_batch`): in batch mode the
    predicate is evaluated over the whole materialized inner side per
    outer row — one closure call instead of one per inner row — which
    is where a non-equi join spends its time.
    """

    def __init__(self, left: Plan, right: Plan, kind: str,
                 on: Optional[Callable], right_width: int,
                 batch_on: Optional[Callable] = None):
        self.left = left
        self.right = right
        self.kind = kind
        self.on = on
        self.batch_on = batch_on
        self.right_width = right_width

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        right_rows = list(self.right.rows(ctx))
        on = self.on
        outer = self.kind == "left"
        pad = [None] * self.right_width
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            matched = False
            for rvalues, rlabel, rilabel in right_rows:
                combined = lvalues + rvalues
                if on is not None and not on(combined, ctx):
                    continue
                matched = True
                yield (combined, llabel.union(rlabel),
                       lilabel.union(rilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        # rows() on the right child adapts whichever interface it
        # implements, so this materialization matches row mode exactly.
        right_rows = list(self.right.rows(ctx))
        on = self.on
        batch_on = self.batch_on
        outer = self.kind == "left"
        pad = [None] * self.right_width
        size = self.batch_size
        no_labels = [None] * len(right_rows)
        out_values: list = []
        out_labels: list = []
        out_ilabels: list = []
        for batch in self.left.batches(ctx):
            llabels = batch.labels
            lilabels = batch.ilabels
            for i, lvalues in enumerate(batch.values):
                llabel = llabels[i]
                lilabel = lilabels[i]
                combined_rows = [lvalues + rvalues
                                 for rvalues, _rl, _ril in right_rows]
                if on is None:
                    flags = None                 # cross join: all match
                elif batch_on is not None:
                    flags = batch_on(RowBatch(combined_rows, no_labels,
                                              no_labels), ctx)
                else:
                    flags = [on(row, ctx) for row in combined_rows]
                matched = False
                for j, combined in enumerate(combined_rows):
                    if flags is not None and not flags[j]:
                        continue
                    matched = True
                    _rvalues, rlabel, rilabel = right_rows[j]
                    out_values.append(combined)
                    out_labels.append(llabel.union(rlabel))
                    out_ilabels.append(lilabel.union(rilabel))
                if outer and not matched:
                    out_values.append(lvalues + pad)
                    out_labels.append(llabel)
                    out_ilabels.append(lilabel)
                if len(out_values) >= size:
                    yield RowBatch(out_values, out_labels, out_ilabels)
                    out_values, out_labels, out_ilabels = [], [], []
        if out_values:
            yield RowBatch(out_values, out_labels, out_ilabels)


class IndexLoopJoin(Plan):
    """Join where the inner side is a base-table index lookup.

    The key functions reference only left-side columns (checked at plan
    time), so they are evaluated against the left row padded to full
    width.  Residual ON conditions are applied to the combined row.

    **Batch mode** collects a batch of outer rows, dedupes their probe
    keys (sorted when the key type allows, for index locality), and
    probes the index **once per distinct key per batch** — visibility,
    label checks, and buffer-cache touches are charged once per
    candidate version per *probe*, not per duplicate outer row, so a
    duplicate-heavy foreign key stops multiplying the per-probe costs.
    Joined rows are emitted in outer-row order, exactly as row mode
    would have.
    """

    def __init__(self, left: Plan, table: Table, index,
                 key_fns: List[Callable], residual: Optional[Callable],
                 kind: str, declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]],
                 right_width: int):
        self.left = left
        self.table = table
        self.index = index
        self.key_fns = key_fns
        self.residual = residual
        self.kind = kind
        self.declass = declass
        self.view_grants = view_grants
        self.right_width = right_width

    def _check_view_authority(self, ctx: ExecContext) -> None:
        for view, tags in self.view_grants:
            for tag_id in tags:
                if not ctx.authority.has_authority(view.principal, tag_id):
                    raise AuthorityError(
                        "declassifying view %r lost authority" % view.name)

    def _probe(self, ctx, key, txn, txn_manager,
               label_memo: Optional[Dict[Label, bool]]) -> list:
        """One index probe: the visible, label-covered inner rows for
        ``key``.  ``label_memo`` is the per-batch covers() memo (None
        under declassification, where each row's emitted label is its
        stripped label and the global strip/covers memos serve)."""
        table = self.table
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        matches = []
        for version in table.versions_for_tids(self.index.lookup(key)):
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            label = version.label
            if check_labels:
                if label_memo is not None:
                    ok = label_memo.get(label)
                    if ok is None:
                        ok = covers(registry, label, read_label)
                        label_memo[label] = ok
                    if not ok:
                        RULE_COUNTERS.rows_suppressed += 1
                        continue
                else:
                    if declass:
                        label = strip(registry, label, declass)
                    if not covers(registry, label, read_label):
                        RULE_COUNTERS.rows_suppressed += 1
                        continue
            rvalues = list(version.values)
            rvalues.append(label)
            matches.append((rvalues, label, version.ilabel))
        return matches

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        if ctx.ifc_enabled and self.view_grants:
            self._check_view_authority(ctx)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        key_fns = self.key_fns
        size = self.batch_size
        use_memo = ctx.ifc_enabled and not self.declass
        out_values: list = []
        out_labels: list = []
        out_ilabels: list = []
        for batch in self.left.batches(ctx):
            keys: list = []
            distinct: dict = {}
            for lvalues in batch.values:
                probe_row = lvalues + pad
                key = tuple(fn(probe_row, ctx) for fn in key_fns)
                if any(k is None for k in key):
                    keys.append(None)
                else:
                    keys.append(key)
                    distinct[key] = None
            ordered = list(distinct)
            try:
                ordered.sort()
            except TypeError:
                pass                  # incomparable key mix: keep order
            label_memo: Optional[Dict[Label, bool]] = \
                {} if use_memo else None
            for key in ordered:
                distinct[key] = self._probe(ctx, key, txn, txn_manager,
                                            label_memo)
            llabels = batch.labels
            lilabels = batch.ilabels
            for i, lvalues in enumerate(batch.values):
                llabel = llabels[i]
                lilabel = lilabels[i]
                key = keys[i]
                matched = False
                if key is not None:
                    for rvalues, rlabel, rilabel in distinct[key]:
                        combined = lvalues + rvalues
                        if residual is not None \
                                and not residual(combined, ctx):
                            continue
                        matched = True
                        out_values.append(combined)
                        out_labels.append(llabel.union(rlabel))
                        out_ilabels.append(lilabel.union(rilabel))
                if outer and not matched:
                    out_values.append(lvalues + pad)
                    out_labels.append(llabel)
                    out_ilabels.append(lilabel)
                if len(out_values) >= size:
                    yield RowBatch(out_values, out_labels, out_ilabels)
                    out_values, out_labels, out_ilabels = [], [], []
        if out_values:
            yield RowBatch(out_values, out_labels, out_ilabels)

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        if ctx.ifc_enabled and self.view_grants:
            self._check_view_authority(ctx)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        key_fns = self.key_fns
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            probe = lvalues + pad
            key = tuple(fn(probe, ctx) for fn in key_fns)
            matched = False
            if not any(k is None for k in key):
                for version in table.versions_for_tids(
                        self.index.lookup(key)):
                    table.touch(version)
                    if not txn_manager.visible(version, txn):
                        continue
                    label = version.label
                    if check_labels:
                        if declass:
                            label = strip(registry, label, declass)
                        if not covers(registry, label, read_label):
                            RULE_COUNTERS.rows_suppressed += 1
                            continue
                    rvalues = list(version.values)
                    rvalues.append(label)
                    combined = lvalues + rvalues
                    if residual is not None and not residual(combined, ctx):
                        continue
                    matched = True
                    yield (combined, llabel.union(label),
                           lilabel.union(version.ilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class Gather(Plan):
    """Exchange operator: run the child scan subtree on ``workers``
    forked processes and merge their row streams.

    The planner inserts this directly above a full heap scan it proved
    **parallel-safe** (plain ``Scan`` access path, label-memo-only
    predicate work, no declassifying views, no subqueries — see
    ``Planner._parallelize``) and whose estimated candidate count
    clears the optimizer's fan-out cost gate.  At execution time the
    coordinator reads the heap length once, tiles the chunk domain
    into contiguous ranges (``parallel.split_ranges``), and forks one
    worker per range; each worker runs the *same* child subtree with
    ``ctx.scan_range`` pinned to its range.  Chunk boundaries are
    identical to the serial scan's, so the per-batch label memos — and
    therefore the ``covers``/``strip`` counter totals merged back from
    the workers — are plan-determined, not worker-count-determined.
    Draining workers in range order makes the gathered stream exactly
    the serial row order.

    Degrades to a transparent pass-through whenever parallelism cannot
    help or cannot run: row-at-a-time (naive) execution, a missing
    ``fork``, a single-range heap, or already being inside a worker
    (no nested gangs).
    """

    def __init__(self, child: Plan, workers: int):
        self.child = child
        self.workers = workers

    def _base_scan(self) -> "Scan":
        """The heap scan at the bottom of the gathered subtree (walks
        through EXPLAIN ANALYZE's probe wrappers via ``inner``)."""
        node = self.child
        while not isinstance(node, Scan):
            inner = getattr(node, "inner", None)
            node = inner if inner is not None else node.child
        return node

    def _gang(self, ctx):
        """Fork the gang; returns the merged row iterator, or None when
        the heap splits into fewer than two ranges."""
        from . import parallel
        size = self.batch_size
        nchunks = -(-self._base_scan().table.physical_slots // size)
        ranges = parallel.split_ranges(0, nchunks, self.workers)
        if len(ranges) < 2:
            return None
        child = self.child

        def make(rng):
            def task():
                ctx.scan_range = rng      # the child's COW copy only
                for batch in child.batches(ctx):
                    yield from zip(batch.values, batch.labels,
                                   batch.ilabels)
            return task
        return parallel.run_gang([make(rng) for rng in ranges])

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        yield from self.child.rows(ctx)

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        from . import parallel
        gang = None
        if (self.workers >= 2 and parallel.FORK_AVAILABLE
                and ctx.scan_range is None):
            gang = self._gang(ctx)
        if gang is None:
            yield from self.child.batches(ctx)
            return
        size = self.batch_size
        values: list = []
        labels: list = []
        ilabels: list = []
        for v, label, ilabel in gang:
            values.append(v)
            labels.append(label)
            ilabels.append(ilabel)
            if len(values) >= size:
                yield RowBatch(values, labels, ilabels)
                values, labels, ilabels = [], [], []
        if values:
            yield RowBatch(values, labels, ilabels)


class HashJoin(Plan):
    """Equi-join: hash the right side, probe with left rows.

    **Memory bound.**  The build is byte-estimated as it grows
    (:func:`repro.db.spill.estimate_row_bytes`); when it exceeds the
    execution budget (``ctx.work_mem``, from ``Database(work_mem=…)`` /
    ``REPRO_WORK_MEM``; 0 = unbounded) the join switches to hybrid
    grace spilling (:class:`repro.db.spill.SpilledHashBuild`): build
    and probe rows are hash-partitioned to temp files, one partition
    stays memory-resident so its probes still stream, and oversized
    partitions re-partition recursively.  Spilling changes *where* a
    probe row meets its matches — never which matches exist: every
    spooled row already passed the scan-level MVCC and label checks
    under the statement's snapshot, and the snapshot cannot move while
    the statement runs (see ``_visible_versions``), so a spilled and an
    in-memory execution see exactly the same rows.
    """

    #: Worker-pool size for the spilled partition phase (set by the
    #: planner from ``Database(workers=…)``; 0/1 = serial).  Grace
    #: partitions are key-disjoint, so each worker joins a contiguous
    #: partition range independently; gathering in range order keeps
    #: the serial output order.
    workers: int = 0

    def __init__(self, left: Plan, right: Plan, left_key_fns: List[Callable],
                 right_key_fns: List[Callable], residual: Optional[Callable],
                 kind: str, right_width: int, left_width: int):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.residual = residual
        self.kind = kind
        self.right_width = right_width
        self.left_width = left_width

    def _build(self, ctx):
        """Hash the right side under the byte budget.

        Returns ``(buckets, spill)``: ``spill`` is None while the build
        fits in memory, otherwise a
        :class:`~repro.db.spill.SpilledHashBuild` that absorbed every
        build row (and ``buckets`` is empty).  Batch mode consumes
        whole batches so the build loop is a flat pass over
        materialized lists rather than a per-row generator chain.
        """
        budget = ctx.work_mem
        buckets: Dict[tuple, list] = {}
        setdefault = buckets.setdefault
        pad_left = [None] * self.left_width
        right_key_fns = self.right_key_fns
        spill = None
        mem = 0
        if self.batch_size:
            def source():
                for batch in self.right.batches(ctx):
                    yield from zip(batch.values, batch.labels,
                                   batch.ilabels)
        else:
            def source():
                return self.right.rows(ctx)
        try:
            for row in source():
                rvalues = row[0]
                probe = pad_left + rvalues
                key = tuple(fn(probe, ctx) for fn in right_key_fns)
                if any(k is None for k in key):
                    continue
                if spill is not None:
                    spill.add_build(key, row)
                    continue
                setdefault(key, []).append(row)
                if budget:
                    mem += estimate_row_bytes(rvalues, row[1]) \
                        + BUCKET_ENTRY_BYTES
                    if mem > budget:
                        spill = SpilledHashBuild(budget)
                        spill.take_buckets(buckets)
                        buckets = {}
        except BaseException:
            # The spill never reaches a caller who could close it.
            if spill is not None:
                spill.close()
            raise
        return buckets, spill

    def _join_matches(self, lvalues, llabel, lilabel, matches, ctx, pad):
        """Emit the joined rows for one probe row (shared by the
        streaming and the spilled partition phases)."""
        residual = self.residual
        matched = False
        for rvalues, rlabel, rilabel in matches:
            combined = lvalues + rvalues
            if residual is not None and not residual(combined, ctx):
                continue
            matched = True
            yield (combined, llabel.union(rlabel), lilabel.union(rilabel))
        if self.kind == "left" and not matched:
            yield lvalues + pad, llabel, lilabel

    def _partition_rows(self, ctx, spill, lo, hi):
        """Joined output of partitions ``[lo, hi)`` — the per-partition
        work unit, shared verbatim by the serial loop and the parallel
        gang so counter totals cannot depend on the worker count."""
        pad = [None] * self.right_width
        for partition in spill.partitions[lo:hi]:
            try:
                for probe_row, matches in _join_partition(
                        partition.build.rows(), partition.probe.rows(),
                        spill.budget, spill.depth + 1):
                    lvalues, llabel, lilabel = probe_row
                    yield from self._join_matches(
                        lvalues, llabel, lilabel, matches, ctx, pad)
            finally:
                partition.close()

    def _spilled_rows(self, ctx, spill):
        """Partition phase: join every spooled probe row.

        With ``workers`` configured (and not already inside a worker),
        the key-disjoint partitions fan out to a forked gang — each
        child inherits the spool descriptors, reads only its range,
        and ships joined rows back through the labeled-row codec.
        """
        start = 0
        if spill.resident is not None:
            # Resident probes were answered online; nothing spooled.
            spill.partitions[0].close()
            start = 1
        total = len(spill.partitions)
        if self.workers >= 2 and total - start >= 2 \
                and ctx.scan_range is None:
            from . import parallel
            if parallel.FORK_AVAILABLE:
                ranges = parallel.split_ranges(start, total,
                                               self.workers)
                yield from parallel.run_gang(
                    [self._partition_task(ctx, spill, lo, hi)
                     for lo, hi in ranges])
                return
        yield from self._partition_rows(ctx, spill, start, total)

    def _partition_task(self, ctx, spill, lo, hi):
        def task():
            return self._partition_rows(ctx, spill, lo, hi)
        return task

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        buckets, spill = self._build(ctx)
        outer = self.kind == "left"
        pad = [None] * self.right_width
        try:
            for lvalues, llabel, lilabel in self.left.rows(ctx):
                probe = lvalues + pad
                key = tuple(fn(probe, ctx) for fn in self.left_key_fns)
                if any(k is None for k in key):
                    if outer:
                        yield lvalues + pad, llabel, lilabel
                    continue
                if spill is None:
                    matches = buckets.get(key, ())
                else:
                    matches = spill.probe(key, (lvalues, llabel, lilabel))
                    if matches is None:
                        continue      # spooled for the partition phase
                yield from self._join_matches(lvalues, llabel, lilabel,
                                              matches, ctx, pad)
            if spill is not None:
                yield from self._spilled_rows(ctx, spill)
        finally:
            # A mid-iteration error (or an abandoned iterator) must not
            # leak the partition spools' descriptors; close is
            # idempotent, so the clean-exhaustion path pays nothing.
            if spill is not None:
                spill.close()

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        buckets, spill = self._build(ctx)
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        left_key_fns = self.left_key_fns
        size = self.batch_size
        out_values: list = []
        out_labels: list = []
        out_ilabels: list = []
        empty = ()
        try:
            for batch in self.left.batches(ctx):
                llabels = batch.labels
                lilabels = batch.ilabels
                for i, lvalues in enumerate(batch.values):
                    llabel = llabels[i]
                    lilabel = lilabels[i]
                    probe = lvalues + pad
                    key = tuple(fn(probe, ctx) for fn in left_key_fns)
                    matched = False
                    if not any(k is None for k in key):
                        if spill is None:
                            matches = buckets.get(key, empty)
                        else:
                            matches = spill.probe(key, (lvalues, llabel,
                                                        lilabel))
                            if matches is None:
                                # Spooled for the partition phase.
                                continue
                        # Mirrors _join_matches, inlined: this loop
                        # appends straight into the output batch on the
                        # hot path.
                        for rvalues, rlabel, rilabel in matches:
                            combined = lvalues + rvalues
                            if residual is not None \
                                    and not residual(combined, ctx):
                                continue
                            matched = True
                            out_values.append(combined)
                            out_labels.append(llabel.union(rlabel))
                            out_ilabels.append(lilabel.union(rilabel))
                    if outer and not matched:
                        out_values.append(lvalues + pad)
                        out_labels.append(llabel)
                        out_ilabels.append(lilabel)
                    if len(out_values) >= size:
                        yield RowBatch(out_values, out_labels,
                                       out_ilabels)
                        out_values, out_labels, out_ilabels = [], [], []
            if spill is not None:
                for values, label, ilabel in self._spilled_rows(ctx,
                                                                spill):
                    out_values.append(values)
                    out_labels.append(label)
                    out_ilabels.append(ilabel)
                    if len(out_values) >= size:
                        yield RowBatch(out_values, out_labels,
                                       out_ilabels)
                        out_values, out_labels, out_ilabels = [], [], []
        finally:
            # Mid-iteration error or abandoned iterator: release the
            # partition spools deterministically (close is idempotent).
            if spill is not None:
                spill.close()
        if out_values:
            yield RowBatch(out_values, out_labels, out_ilabels)


class AggSpec:
    """One aggregate computation: function, argument, distinct flag."""

    __slots__ = ("func", "arg_fn", "distinct")

    def __init__(self, func: str, arg_fn: Optional[Callable], distinct: bool):
        self.func = func
        self.arg_fn = arg_fn
        self.distinct = distinct


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("func", "distinct", "seen", "count", "total", "best")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.seen = set() if distinct else None
        self.count = 0
        self.total = None
        self.best = None

    def add(self, value) -> None:
        if self.func == "COUNT" and value is _STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "MIN":
            if self.best is None or value < self.best:
                self.best = value
        elif self.func == "MAX":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.best


_STAR = object()


class AggregateNode(Plan):
    """GROUP BY + aggregate evaluation.

    Output rows are ``group_key_values + aggregate_results``; downstream
    expressions were rewritten by the planner to slot references.

    **Memory bound (grace hash aggregation).**  Group state is charged
    against ``ctx.work_mem`` as groups are created (key bytes + one
    :data:`AGG_STATE_BYTES` accumulator per spec + hash-entry
    overhead).  When creating one more group would overflow, already-
    resident groups keep accumulating in memory — they absorb their
    remaining input rows at full speed — while rows for *new* keys
    hash-partition to disk through :class:`GroupSpill`; each partition
    is then re-aggregated recursively (fresh salt per level, same
    fanout/termination scheme as the grace join).  A key is therefore
    either entirely resident or entirely spooled, so no group is ever
    counted twice.  Resident groups emit in first-seen order; spilled
    partitions follow, so *output order changes when an aggregate
    spills* — SQL makes no promise here, and ORDER BY sits above this
    node.  Global aggregates never spill: their state is one row.
    """

    #: Worker-pool size for the grace-partition phase (set by the
    #: planner; 0/1 = serial).  Spilled partitions are key-disjoint, so
    #: a worker folds and finalizes its partition range completely —
    #: no cross-worker combine step is ever needed.
    workers: int = 0

    def __init__(self, child: Plan, group_fns: List[Callable],
                 specs: List[AggSpec], global_agg: bool):
        self.child = child
        self.group_fns = group_fns
        self.specs = specs
        self.global_agg = global_agg

    def _fold(self, ctx, source, depth: int):
        """Fold ``(key, row)`` pairs into per-group state, grace-
        spilling new groups past the budget; yields result rows."""
        budget = 0 if self.global_agg else ctx.work_mem
        groups: Dict[tuple, list] = {}
        labels: Dict[tuple, Label] = {}
        ilabels: Dict[tuple, Label] = {}
        order: List[tuple] = []
        specs = self.specs
        entry_bytes = AGG_STATE_BYTES * len(specs) + BUCKET_ENTRY_BYTES
        spill = None
        mem = 0
        try:
            for key, (values, label, ilabel) in source:
                states = groups.get(key)
                if states is None:
                    if spill is None and budget:
                        cost = estimate_row_bytes(key) + entry_bytes
                        if (mem + cost > budget and order
                                and depth < MAX_RECURSION):
                            spill = GroupSpill(salt=depth, depth=depth)
                        else:
                            mem += cost
                    if spill is not None:
                        spill.add(key, (values, label, ilabel))
                        continue
                    states = [_AggState(s.func, s.distinct) for s in specs]
                    groups[key] = states
                    labels[key] = label
                    ilabels[key] = ilabel
                    order.append(key)
                else:
                    labels[key] = labels[key].union(label)
                    ilabels[key] = ilabels[key].union(ilabel)
                for spec, state in zip(specs, states):
                    if spec.arg_fn is None:
                        state.add(_STAR)
                    else:
                        state.add(spec.arg_fn(values, ctx))
            if not groups and self.global_agg:
                states = [_AggState(s.func, s.distinct) for s in specs]
                yield ([] + [s.result() for s in states], EMPTY_LABEL,
                       EMPTY_LABEL)
                return
            for key in order:
                yield (list(key) + [s.result() for s in groups[key]],
                       labels[key], ilabels[key])
            if spill is not None:
                yield from self._spilled_groups(ctx, spill, depth)
        finally:
            # An accumulator TypeError (or an abandoned iterator) must
            # not leak the partition spools; close is idempotent.
            if spill is not None:
                spill.close()

    def _partition_rows(self, ctx, spill, lo, hi, depth):
        """Finalized result rows of spill partitions ``[lo, hi)`` — the
        per-partition work unit shared by the serial loop and the
        parallel gang (identical code, identical counters)."""
        for spool in spill.spools[lo:hi]:
            if spool.count:
                yield from self._fold(ctx, spool.rows(), depth + 1)
            else:
                spool.close()

    def _spilled_groups(self, ctx, spill, depth):
        """Drain the grace partitions, fanning out to a forked gang
        when workers are configured (top level only — recursive
        re-spills stay inside their worker)."""
        total = len(spill.spools)
        if depth == 0 and self.workers >= 2 \
                and sum(1 for s in spill.spools if s.count) >= 2 \
                and ctx.scan_range is None:
            from . import parallel
            if parallel.FORK_AVAILABLE:
                ranges = parallel.split_ranges(0, total, self.workers)
                yield from parallel.run_gang(
                    [self._group_task(ctx, spill, lo, hi, depth)
                     for lo, hi in ranges])
                return
        yield from self._partition_rows(ctx, spill, 0, total, depth)

    def _group_task(self, ctx, spill, lo, hi, depth):
        def task():
            return self._partition_rows(ctx, spill, lo, hi, depth)
        return task

    def _grouped(self, ctx):
        group_fns = self.group_fns

        def keyed():
            for row in _row_source(self.child, self.batch_size, ctx):
                yield tuple(fn(row[0], ctx) for fn in group_fns), row
        return self._fold(ctx, keyed(), 0)

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        yield from self._grouped(ctx)

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        for chunk in _chunked(self._grouped(ctx), self.batch_size):
            yield RowBatch([row[0] for row in chunk],
                           [row[1] for row in chunk],
                           [row[2] for row in chunk])


class Project(Plan):
    """Output projection; ``batch_fns`` are the batch-compiled column
    evaluators (one per output column) used in batch mode — each runs
    over the whole batch, columnar style, and the results *are* the
    output batch's columns (no per-row zip-back; widening to row-major
    happens lazily, at the first row-native consumer)."""

    def __init__(self, child: Plan, fns: List[Callable],
                 batch_fns: Optional[List[Callable]] = None):
        self.child = child
        self.fns = fns
        self.batch_fns = batch_fns

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        fns = self.fns
        for values, label, ilabel in self.child.rows(ctx):
            yield [fn(values, ctx) for fn in fns], label, ilabel

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        fns = self.fns
        batch_fns = self.batch_fns
        for batch in self.child.batches(ctx):
            if batch_fns is not None:
                columns = [fn(batch, ctx) for fn in batch_fns]
                yield RowBatch.from_columns(columns, batch.labels,
                                            batch.ilabels)
                continue
            out = [[fn(row, ctx) for fn in fns] for row in batch.values]
            yield RowBatch(out, batch.labels, batch.ilabels)


class _MixedKey:
    """Total-order wrapper for values from a mixed-type column.

    Comparison is natural when the values are mutually comparable and
    falls back to ``(type name, str(value))`` tags across incomparable
    types — the same family of order :class:`DeterministicOrder`
    imposes.  In the SQL value domain (numbers, strings, ``None``
    handled one level up) mutual comparability partitions the values
    into classes whose type names agree on the cross-class direction
    (every number sorts before every string), so this is a consistent
    total order: within a class it *is* the natural order, which is
    what makes runs sorted naturally safe to merge under mixed keys.
    """

    __slots__ = ("value",)
    __hash__ = None

    def __init__(self, value):
        self.value = value

    def _tag(self):
        value = self.value
        return (type(value).__name__, str(value))

    def __lt__(self, other):
        try:
            return self.value < other.value
        except TypeError:
            return self._tag() < other._tag()

    def __eq__(self, other):
        # ``==`` never raises across types, so no fallback is needed —
        # and incomparable values are never spuriously equal.
        return self.value == other.value


class _Desc:
    """Inverts comparisons for one DESC component of a composite sort
    key (tuple comparison probes ``==`` before ``<``, so both must
    flip through to the wrapped key)."""

    __slots__ = ("key",)
    __hash__ = None

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


class Sort(Plan):
    """ORDER BY; NULLs sort last ascending, first descending.

    **Memory bound (external merge sort).**  Under ``ctx.work_mem``
    the input is consumed in byte-estimated chunks: each full chunk is
    sorted in memory and spooled as one run through the labeled-row
    codec (labels re-intern on reload, so the covers/strip memos
    survive), then all runs k-way merge through a heap in a single
    pass — the merge holds one row per run, never the input.
    Unbounded (``work_mem=0``, the naive/reference executor) sorts
    fully in memory, as before.

    **Mixed-type keys.**  Sorting tries the natural per-column key
    ``(value is None, value)`` first; if the column mixes incomparable
    types (legal in untyped storage — ``DeterministicOrder`` already
    handles it) the chunk retries under :class:`_MixedKey`'s
    type-tagged total order instead of raising.  Merges always use the
    mixed-tolerant key: wherever values compare naturally the two
    orders agree, so naturally-sorted runs are correctly ordered under
    it even when *different* runs hold incomparable types.
    """

    def __init__(self, child: Plan, key_fns: List[Callable],
                 descending: List[bool]):
        self.child = child
        self.key_fns = key_fns
        self.descending = descending

    def _key(self, ctx, mixed: bool) -> Callable:
        """Composite key over row values: one ``(value is None, value)``
        component per ORDER BY column — NULLs last ascending — wrapped
        in :class:`_Desc` for DESC columns and (with ``mixed``) in
        :class:`_MixedKey` for type-tolerant comparison."""
        pairs = list(zip(self.key_fns, self.descending))

        def key(values):
            parts = []
            for fn, desc in pairs:
                value = fn(values, ctx)
                part = (value is None,
                        _MixedKey(value) if mixed else value)
                parts.append(_Desc(part) if desc else part)
            return tuple(parts)

        return key

    def _sort_chunk(self, chunk: list, ctx, mixed: bool):
        """Sort one in-memory chunk; returns ``(chunk, mixed)`` with
        ``mixed`` latched once any chunk needed the fallback."""
        key = self._key(ctx, mixed)
        try:
            chunk.sort(key=lambda row: key(row[0]))
        except TypeError:
            if mixed:
                raise
            return self._sort_chunk(chunk, ctx, True)
        return chunk, mixed

    def _input(self, ctx) -> Iterator[ExecRow]:
        return _row_source(self.child, self.batch_size, ctx)

    def _sorted(self, ctx, source=None):
        """All input rows in order: one in-memory sort when the input
        fits ``ctx.work_mem`` (or no budget is set), else spooled
        sorted runs merged by :meth:`_merge`."""
        budget = ctx.work_mem
        chunk: list = []
        mem = 0
        runs = None
        mixed = False
        try:
            for row in (source if source is not None
                        else self._input(ctx)):
                chunk.append(row)
                if budget:
                    mem += estimate_row_bytes(row[0], row[1])
                    if mem > budget:
                        chunk, mixed = self._sort_chunk(chunk, ctx, mixed)
                        if runs is None:
                            runs = SortRuns()
                        runs.spool(chunk)
                        chunk = []
                        mem = 0
            chunk, mixed = self._sort_chunk(chunk, ctx, mixed)
        except BaseException:
            # The runs never reach the merge that would close them.
            if runs is not None:
                runs.close()
            raise
        if runs is None:
            return chunk
        if chunk:
            runs.spool(chunk)
        key = self._key(ctx, True)

        def merged():
            try:
                yield from heapq.merge(
                    *(run.labeled_rows() for run in runs.runs),
                    key=lambda row: key(row[0]))
            finally:
                # A consumer that stops early (LIMIT above the sort) or
                # dies mid-merge must not leak the run descriptors.
                runs.close()
        return merged()

    def _result(self, ctx):
        return self._sorted(ctx)

    def rows(self, ctx):
        return iter(self._result(ctx))

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        for chunk in _chunked(self._result(ctx), self.batch_size):
            yield RowBatch([row[0] for row in chunk],
                           [row[1] for row in chunk],
                           [row[2] for row in chunk])


class TopN(Sort):
    """ORDER BY … LIMIT as a bounded heap (optimizer rewrite).

    Streams the input keeping only the best ``limit + offset`` rows
    (``heapq.nsmallest`` — stable, so ties keep arrival order exactly
    like the stable full sort), then discards the offset prefix.  A
    small limit thus never materializes, sorts, or spills the full
    input.  Heap keys always use the mixed-type-tolerant composite
    (one failed comparison mid-stream could not be retried — the input
    is not resumable).

    Fallbacks preserve Sort+Limit semantics exactly: a NULL limit
    degenerates to the (possibly external) full sort with an offset
    skip, and when the heap itself could not fit ``work_mem`` (limit
    within a constant of the input is the classic case) the operator
    external-sorts instead of holding an over-budget heap.
    """

    def __init__(self, child: Plan, key_fns: List[Callable],
                 descending: List[bool], limit_fn: Optional[Callable],
                 offset_fn: Optional[Callable]):
        Sort.__init__(self, child, key_fns, descending)
        self.limit_fn = limit_fn
        self.offset_fn = offset_fn

    def _result(self, ctx):
        limit = self.limit_fn([], ctx) if self.limit_fn else None
        offset = (self.offset_fn([], ctx) if self.offset_fn else 0) or 0
        if limit is None:
            return islice(iter(self._sorted(ctx)), offset, None)
        n = limit + offset
        if n <= 0:
            return iter(())
        source = self._input(ctx)
        first = next(source, None)
        if first is None:
            return iter(())
        rewound = chain([first], source)
        budget = ctx.work_mem
        if budget and estimate_row_bytes(first[0], first[1]) * n > budget:
            return islice(iter(self._sorted(ctx, rewound)), offset, n)
        key = self._key(ctx, True)
        top = heapq.nsmallest(n, rewound, key=lambda row: key(row[0]))
        return iter(top[offset:])


class Distinct(Plan):
    """DISTINCT: collapse duplicate value tuples.

    **Label union.**  Collapsing duplicates *reads* every one of them,
    so under the tuple-granularity label model a distinct result row
    carries the union of all collapsed rows' labels and ilabels — the
    same semantics :class:`AggregateNode` applies to groups (an
    earlier version kept the first-seen row's labels, silently
    declassifying later duplicates).  That makes DISTINCT a blocking
    operator: a late duplicate can still raise the label of an
    already-seen tuple, so nothing is emitted until the input is
    drained.

    **Memory bound.**  Distinct state is group state with no
    accumulators; it grace-spills through :class:`GroupSpill` exactly
    like aggregation (resident keys keep absorbing duplicates, new
    keys hash-partition to disk, partitions recurse with fresh salts).
    Unlike :class:`AggregateNode` — whose ORDER BY sits *above* it —
    Distinct sits above the Sort in a ``SELECT DISTINCT … ORDER BY``
    plan, so its output order is user-visible.  Each row therefore
    carries its arrival sequence through the spill: residents were all
    first seen before any spooled key (spilling starts mid-stream) and
    every recursive partition stream comes back seq-ascending, so
    chaining residents with a seq-merge of the partitions restores
    global first-seen order — i.e. the input (sorted) order — while
    holding one row per partition stream.
    """

    def __init__(self, child: Plan):
        self.child = child

    def _fold(self, ctx, source, depth: int):
        """Fold ``(seq, key, row)`` triples into distinct state;
        yields ``(seq, values, label, ilabel)`` in ascending seq
        (= global first-seen order)."""
        budget = ctx.work_mem
        rows_of: Dict[tuple, tuple] = {}
        labels: Dict[tuple, Label] = {}
        ilabels: Dict[tuple, Label] = {}
        order: List[tuple] = []
        spill = None
        mem = 0
        try:
            for seq, key, (values, label, ilabel) in source:
                held = labels.get(key)
                if held is not None:
                    labels[key] = held.union(label)
                    ilabels[key] = ilabels[key].union(ilabel)
                    continue
                if spill is None and budget:
                    cost = estimate_row_bytes(values, label) \
                        + BUCKET_ENTRY_BYTES
                    if (mem + cost > budget and order
                            and depth < MAX_RECURSION):
                        spill = GroupSpill(salt=depth, depth=depth)
                    else:
                        mem += cost
                if spill is not None:
                    # The seq rides in the spooled values (slot 0) so
                    # the labeled-row codec needs no side channel.
                    spill.add(key, ([seq] + values, label, ilabel))
                    continue
                rows_of[key] = (seq, values)
                labels[key] = label
                ilabels[key] = ilabel
                order.append(key)
            streams = []
            if spill is not None:
                streams = [self._fold(ctx, _unspool_seq(partition),
                                      depth + 1)
                           for partition in spill.partitions()]
            for key in order:
                seq, values = rows_of[key]
                yield seq, values, labels[key], ilabels[key]
            yield from heapq.merge(*streams, key=lambda item: item[0])
        finally:
            # Mid-fold error or abandoned iterator: release the
            # partition spools deterministically (close is idempotent).
            if spill is not None:
                spill.close()

    def _distinct(self, ctx):
        def keyed():
            source = _row_source(self.child, self.batch_size, ctx)
            for seq, row in enumerate(source):
                yield seq, tuple(row[0]), row
        for _seq, values, label, ilabel in self._fold(ctx, keyed(), 0):
            yield values, label, ilabel

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        yield from self._distinct(ctx)

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        for chunk in _chunked(self._distinct(ctx), self.batch_size):
            yield RowBatch([row[0] for row in chunk],
                           [row[1] for row in chunk],
                           [row[2] for row in chunk])


class Limit(Plan):
    def __init__(self, child: Plan, limit_fn: Optional[Callable],
                 offset_fn: Optional[Callable]):
        self.child = child
        self.limit_fn = limit_fn
        self.offset_fn = offset_fn

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        limit = self.limit_fn([], ctx) if self.limit_fn else None
        offset = self.offset_fn([], ctx) if self.offset_fn else 0
        produced = 0
        skipped = 0
        for row in self.child.rows(ctx):
            if skipped < (offset or 0):
                skipped += 1
                continue
            if limit is not None and produced >= limit:
                return
            produced += 1
            yield row

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        limit = self.limit_fn([], ctx) if self.limit_fn else None
        offset = (self.offset_fn([], ctx) if self.offset_fn else 0) or 0
        skipped = 0
        produced = 0
        for batch in self.child.batches(ctx):
            n = len(batch)
            start = 0
            if skipped < offset:
                take = min(offset - skipped, n)
                skipped += take
                start = take
                if start >= n:
                    continue
            end = n
            if limit is not None:
                remaining = limit - produced
                if remaining <= 0:
                    return
                end = min(n, start + remaining)
            if start == 0 and end == n:
                out = batch
            else:
                out = batch.select(range(start, end))
            produced += end - start
            yield out
            if limit is not None and produced >= limit:
                return


class DeterministicOrder(Plan):
    """Countermeasure for the tuple-allocation channel (section 7.3).

    Orders rows by a deterministic function of their values so heap
    placement cannot leak the relative order of modifications.  The
    prototype leaves this off by default; the engine exposes it as the
    ``deterministic_order`` flag.
    """

    def __init__(self, child: Plan):
        self.child = child

    def rows(self, ctx):
        rows = list(self.child.rows(ctx))
        rows.sort(key=lambda row: tuple(
            (v is None, str(type(v).__name__), str(v)) for v in row[0]))
        return iter(rows)


class ViewPlan(Plan):
    """Adapts a planned view/subquery: appends the row label as the
    ``_label`` pseudo-column so outer scopes can reference it.

    This is the label-stripping boundary of a declassifying view: the
    inner plan's scans already emit stripped labels, so predicates the
    optimizer keeps *above* this node observe post-declassification
    labels.  The optimizer never pushes a predicate through it.
    """

    def __init__(self, inner: Plan):
        self.inner = inner

    def rows(self, ctx):
        if self.batch_size:
            yield from self._drain(ctx)
            return
        for values, label, ilabel in self.inner.rows(ctx):
            yield values + [label], label, ilabel

    def batches(self, ctx):
        if not self.batch_size:
            yield from Plan.batches(self, ctx)
            return
        for batch in self.inner.batches(ctx):
            # Columnar append: the label list *is* the _label column
            # (no per-row copy; projected-away inner columns stay
            # unmaterialized).
            cols = batch.columns()
            cols.append(batch.labels)
            yield RowBatch.from_columns(cols, batch.labels, batch.ilabels)


class PreparedSelect:
    """A planned SELECT: the plan tree plus output column names."""

    def __init__(self, plan: Plan, columns: List[str]):
        self.plan = plan
        self.columns = columns


class PreparedDML:
    """A planned UPDATE/DELETE: the target scan (a :class:`Scan`
    subclass whose ``versions()`` drives execution) plus the compiled
    ``SET`` assignments (UPDATE only; empty for DELETE)."""

    __slots__ = ("plan", "assignments")

    def __init__(self, plan: Scan, assignments: List[Tuple[int, Callable]]):
        self.plan = plan
        self.assignments = assignments


def _explain_line(plan: Plan) -> str:
    """One operator's EXPLAIN summary (no indent, no children).

    The text is the operator's ``explain`` annotation (attached by the
    planner during lowering) or the bare class name, followed by the
    optimizer's cost/row estimates when it attached them.  Shared by
    :func:`explain_plan` and EXPLAIN ANALYZE
    (:class:`repro.db.metrics.PlanRecorder`), which appends the
    measured actuals to the same line.
    """
    line = plan.explain or type(plan).__name__
    if plan.est_rows is not None:
        line += "  (cost=%.2f rows=%d)" % (plan.est_cost or 0.0,
                                           round(plan.est_rows))
    # Projection pushed into a scan: the stored columns it materializes.
    needed_names = getattr(plan, "needed_names", None)
    if needed_names is not None:
        line += "  cols=%s" % ",".join(needed_names)
    # Mark batch-native execution: the stamp is tree-wide, but only
    # operators with a batch implementation actually run vectorized
    # (the rest adapt through the chunking shim).
    if plan.batch_size and type(plan).batches is not Plan.batches:
        line += "  batch=%d" % plan.batch_size
    # Memory estimates for materializing operators: expected grace
    # partitions (0 omitted — the build fits work_mem) and the peak
    # resident bytes (per-partition share when spilling).
    # Parallel fan-out: the Gather exchange operator always carries
    # it; joins/aggregates advertise the pool their grace-partition
    # phase would use if they spill.
    workers = getattr(plan, "workers", 0)
    if workers >= 2:
        line += "  workers=%d" % workers
    if plan.est_spill_partitions:
        line += "  spill_partitions=%d" % plan.est_spill_partitions
    # External-sort runs the optimizer expects to spool (0 omitted —
    # the sort fits its budget).
    if plan.est_runs:
        line += "  runs=%d" % plan.est_runs
    if plan.est_mem is not None:
        line += "  mem=%dB" % round(plan.est_mem)
    return line


def explain_plan(plan: Plan, indent: int = 0) -> List[str]:
    """Render a physical plan tree as indented one-line operator
    summaries, so the output always reflects the tree — and the
    costing — that ``rows()`` would execute under."""
    lines = ["  " * indent + _explain_line(plan)]
    for child in _children(plan):
        lines.extend(explain_plan(child, indent + 1))
    return lines


def _children(plan: Plan) -> List[Plan]:
    if isinstance(plan, (NestedLoopJoin, HashJoin)):
        return [plan.left, plan.right]
    if isinstance(plan, IndexLoopJoin):
        return [plan.left]
    if isinstance(plan, ViewPlan):
        return [plan.inner]
    child = getattr(plan, "child", None)
    return [child] if child is not None else []


#: Index-driven scans expecting fewer candidate rows than this floor
#: stay row-at-a-time even inside a batched plan: a one-row primary-key
#: probe cannot amortize the batch machinery (measured ~+25% per query
#: below a handful of rows), while a full heap scan wins at every size
#: because ``all_versions_batched`` slices the version array instead of
#:  driving a per-version generator.  The optimizer's cardinality
#: estimate decides — vectorization is a plan property, like any other
#: access-path choice.
BATCH_MIN_INDEX_ROWS = 32


def stamp_batch_size(plan: Plan, size: int) -> Plan:
    """Stamp ``batch_size`` over a plan tree (called at lowering).

    A zero size leaves the tree row-at-a-time — the naive/reference
    executor's mode, pinned by
    :meth:`~repro.db.optimizer.Optimizer.exec_batch_size`.  Otherwise
    the walk is estimate-driven, bottom-up: full heap scans always
    batch, index scans batch when the optimizer expects at least
    :data:`BATCH_MIN_INDEX_ROWS` candidate rows, and interior operators
    batch iff something beneath them does (so a one-row probe query
    stays entirely on the original row path, paying zero batch
    overhead).  :class:`IndexLoopJoin` adds its own floor: its batch
    win is the per-batch probe dedup, which needs at least
    :data:`BATCH_MIN_INDEX_ROWS` *outer* rows to amortize — below that
    the join stays on the row path even above a batching child.
    Mixing modes inside one tree is safe by construction:
    every operator adapts either interface to the other.  Subquery
    plans compiled into expression closures are stamped by their own
    ``plan_select`` call, not this walk.
    """
    if not size:
        return plan

    def visit(node: Plan) -> bool:
        child_batched = False
        for child in _children(node):
            if visit(child):
                child_batched = True
        if isinstance(node, Scan):
            if type(node) is Scan:
                batched = True
            else:
                est = node.est_rows
                batched = est is None or est >= BATCH_MIN_INDEX_ROWS
        elif isinstance(node, IndexLoopJoin):
            outer_est = node.left.est_rows
            batched = child_batched and (
                outer_est is None or outer_est >= BATCH_MIN_INDEX_ROWS)
        else:
            batched = child_batched
        node.batch_size = size if batched else 0
        return batched

    visit(plan)
    return plan


def plan_tables(plan: Plan) -> frozenset:
    """Names of the base tables a plan tree reads (scans and index-join
    inner sides).  Used to selectively evict cached plans when a table's
    statistics are refreshed.  Subqueries compiled into expressions are
    not walked — a plan missing from an eviction stays merely stale in
    its *estimates*; DDL still invalidates every plan via the catalog
    version."""
    names = set()

    def visit(node: Plan) -> None:
        table = getattr(node, "table", None)
        if isinstance(table, Table):
            names.add(table.name)
        for child in _children(node):
            visit(child)

    visit(plan)
    return frozenset(names)
