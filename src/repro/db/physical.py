"""Physical operators: the pull-based execution layer.

This is the bottom of the three-layer query pipeline
(:mod:`repro.db.logical` → :mod:`repro.db.optimizer` → here).  Each
operator yields ``(values, label, ilabel)`` triples.  Query by Label is
enforced at the bottom of the tree, in the scan operators, mirroring the
paper's design decision (section 7.1): visibility — MVCC *and* label
confinement — is decided "at the layer that reads and writes tuples in
tables", so nothing a higher layer does can surface a tuple the process
may not see.

Label flow through operators:

* scans emit the tuple's label (stripped of any enclosing declassifying
  view's tags);
* joins emit the union of the joined rows' labels;
* aggregation emits the union of the group's labels;
* projection/sort/limit pass labels through.

Because scans filter to ``LT ⊆ LP``, every emitted label is covered by
the process label — reading query results never contaminates the process
(that is the point of Query by Label, section 4.2).

Operators carry an optional ``explain`` attribute, a one-line summary
attached by the planner during lowering and rendered by ``EXPLAIN``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..core.rules import covers, strip
from ..errors import AuthorityError
from .catalog import ViewDef
from .storage import Table

ExecRow = Tuple[list, Label, Label]          # (values, label, ilabel)


class ExecContext:
    """Per-execution state threaded through plan nodes and expressions."""

    __slots__ = ("session", "params", "outer_stack", "read_label",
                 "read_ilabel", "principal", "registry", "authority",
                 "ifc_enabled")

    def __init__(self, session, params: tuple, read_label: Label,
                 read_ilabel: Label, principal: Optional[int]):
        self.session = session
        self.params = params
        self.outer_stack: list = []
        self.read_label = read_label
        self.read_ilabel = read_ilabel
        self.principal = principal
        self.authority = session.db.authority
        self.registry = self.authority.tags
        self.ifc_enabled = session.db.ifc_enabled

    def now(self) -> float:
        return self.session.db.clock()


class Plan:
    """Base class: a pull-based operator producing ExecRows."""

    #: One-line EXPLAIN annotation, attached by the planner at lowering.
    explain: Optional[str] = None
    #: Optimizer estimates (rows out of this operator, cumulative cost),
    #: attached by the planner at lowering and rendered by EXPLAIN.
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None

    def rows(self, ctx: ExecContext) -> Iterator[ExecRow]:
        raise NotImplementedError


class SingleRow(Plan):
    """SELECT without FROM: one empty input row."""

    def rows(self, ctx):
        yield [], EMPTY_LABEL, EMPTY_LABEL


class Scan(Plan):
    """Label-filtered, MVCC-filtered scan of a base table.

    ``declass`` is the union of tags declassified by enclosing
    declassifying views; ``view_grants`` lists (view, tags) pairs whose
    authority must be re-validated at execution time.  Emitted rows carry
    the *stripped* label, and visibility requires the stripped label to
    be covered by the process label — an invisible tuple stays invisible
    no matter what the query looks like.
    """

    def __init__(self, table: Table, predicate: Optional[Callable],
                 declass: Label, view_grants: List[Tuple[ViewDef, Label]]):
        self.table = table
        self.predicate = predicate
        self.declass = declass
        self.view_grants = view_grants

    def _check_view_authority(self, ctx: ExecContext) -> None:
        for view, tags in self.view_grants:
            for tag_id in tags:
                if not ctx.authority.has_authority(view.principal, tag_id):
                    raise AuthorityError(
                        "declassifying view %r lost authority for tag %d "
                        "(revoked?)" % (view.name, tag_id))

    def _candidates(self, ctx: ExecContext):
        return self.table.all_versions()

    def versions(self, ctx: ExecContext):
        """Target-row enumeration for UPDATE/DELETE: yields the physical
        tuple *versions* so the session can stamp ``xmax``.

        Driven by the same access path as ``rows()`` (``_candidates``
        is what ``IndexScan``/``IndexRangeScan`` override), with the
        same MVCC and Query-by-Label visibility — an invisible tuple is
        simply unaffected by DML.  The write-rule *equality* check
        (section 4.2) happens in the session on each yielded version.
        DML targets are base tables, never views, so no
        declassification applies here.
        """
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        predicate = self.predicate
        registry = ctx.registry
        read_label = ctx.read_label
        check_labels = ctx.ifc_enabled
        for version in self._candidates(ctx):
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            if check_labels and not covers(registry, version.label,
                                           read_label):
                continue
            if predicate is not None:
                values = list(version.values)
                values.append(version.label)
                if not predicate(values, ctx):
                    continue
            yield version

    def rows(self, ctx):
        if ctx.ifc_enabled and self.view_grants:
            self._check_view_authority(ctx)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        predicate = self.predicate
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        for version in self._candidates(ctx):
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            if check_labels:
                label = version.label
                if declass:
                    label = strip(registry, label, declass)
                if not covers(registry, label, read_label):
                    continue
            else:
                label = version.label
            values = list(version.values)
            values.append(label)
            if predicate is not None:
                if not predicate(values, ctx):
                    continue
            yield values, label, version.ilabel


class IndexScan(Scan):
    """Scan driven by an index lookup; key computed per execution."""

    def __init__(self, table: Table, index, key_fns: List[Callable],
                 predicate: Optional[Callable], declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]]):
        super().__init__(table, predicate, declass, view_grants)
        self.index = index
        self.key_fns = key_fns

    def _candidates(self, ctx):
        key = tuple(fn([], ctx) for fn in self.key_fns)
        if any(k is None for k in key):
            return iter(())
        return self.table.versions_for_tids(self.index.lookup(key))


class IndexRangeScan(Scan):
    """Scan driven by an ordered-index range lookup.

    The key is an equality prefix (``eq_fns``) plus optional low/high
    bounds on the next index column, all computed per execution; the
    candidate tids come from ``OrderedIndex.scan_range``.  A bound
    expression evaluating to NULL yields no rows (a SQL comparison
    against NULL is UNKNOWN), matching what the filter would do.
    """

    def __init__(self, table: Table, index, eq_fns: List[Callable],
                 low_fn: Optional[Callable], high_fn: Optional[Callable],
                 include_low: bool, include_high: bool,
                 predicate: Optional[Callable], declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]]):
        super().__init__(table, predicate, declass, view_grants)
        self.index = index
        self.eq_fns = eq_fns
        self.low_fn = low_fn
        self.high_fn = high_fn
        self.include_low = include_low
        self.include_high = include_high

    def _candidates(self, ctx):
        prefix = tuple(fn([], ctx) for fn in self.eq_fns)
        if any(k is None for k in prefix):
            return iter(())
        low = prefix if prefix else None
        include_low = True
        if self.low_fn is not None:
            value = self.low_fn([], ctx)
            if value is None:
                return iter(())
            low = prefix + (value,)
            include_low = self.include_low
        high = prefix if prefix else None
        include_high = True
        if self.high_fn is not None:
            value = self.high_fn([], ctx)
            if value is None:
                return iter(())
            high = prefix + (value,)
            include_high = self.include_high
        return self.table.versions_for_tids(
            self.index.scan_range(low, high, include_low=include_low,
                                  include_high=include_high))


class Filter(Plan):
    def __init__(self, child: Plan, predicate: Callable):
        self.child = child
        self.predicate = predicate

    def rows(self, ctx):
        predicate = self.predicate
        for values, label, ilabel in self.child.rows(ctx):
            if predicate(values, ctx):
                yield values, label, ilabel


class NestedLoopJoin(Plan):
    """Generic join; materializes the right side once per execution."""

    def __init__(self, left: Plan, right: Plan, kind: str,
                 on: Optional[Callable], right_width: int):
        self.left = left
        self.right = right
        self.kind = kind
        self.on = on
        self.right_width = right_width

    def rows(self, ctx):
        right_rows = list(self.right.rows(ctx))
        on = self.on
        outer = self.kind == "left"
        pad = [None] * self.right_width
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            matched = False
            for rvalues, rlabel, rilabel in right_rows:
                combined = lvalues + rvalues
                if on is not None and not on(combined, ctx):
                    continue
                matched = True
                yield (combined, llabel.union(rlabel),
                       lilabel.union(rilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class IndexLoopJoin(Plan):
    """Join where the inner side is a base-table index lookup.

    The key functions reference only left-side columns (checked at plan
    time), so they are evaluated against the left row padded to full
    width.  Residual ON conditions are applied to the combined row.
    """

    def __init__(self, left: Plan, table: Table, index,
                 key_fns: List[Callable], residual: Optional[Callable],
                 kind: str, declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]],
                 right_width: int):
        self.left = left
        self.table = table
        self.index = index
        self.key_fns = key_fns
        self.residual = residual
        self.kind = kind
        self.declass = declass
        self.view_grants = view_grants
        self.right_width = right_width

    def rows(self, ctx):
        if ctx.ifc_enabled and self.view_grants:
            for view, tags in self.view_grants:
                for tag_id in tags:
                    if not ctx.authority.has_authority(view.principal, tag_id):
                        raise AuthorityError(
                            "declassifying view %r lost authority"
                            % view.name)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        key_fns = self.key_fns
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            probe = lvalues + pad
            key = tuple(fn(probe, ctx) for fn in key_fns)
            matched = False
            if not any(k is None for k in key):
                for version in table.versions_for_tids(
                        self.index.lookup(key)):
                    table.touch(version)
                    if not txn_manager.visible(version, txn):
                        continue
                    label = version.label
                    if check_labels:
                        if declass:
                            label = strip(registry, label, declass)
                        if not covers(registry, label, read_label):
                            continue
                    rvalues = list(version.values)
                    rvalues.append(label)
                    combined = lvalues + rvalues
                    if residual is not None and not residual(combined, ctx):
                        continue
                    matched = True
                    yield (combined, llabel.union(label),
                           lilabel.union(version.ilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class HashJoin(Plan):
    """Equi-join: hash the right side, probe with left rows."""

    def __init__(self, left: Plan, right: Plan, left_key_fns: List[Callable],
                 right_key_fns: List[Callable], residual: Optional[Callable],
                 kind: str, right_width: int, left_width: int):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.residual = residual
        self.kind = kind
        self.right_width = right_width
        self.left_width = left_width

    def rows(self, ctx):
        buckets: Dict[tuple, list] = {}
        pad_left = [None] * self.left_width
        for rvalues, rlabel, rilabel in self.right.rows(ctx):
            probe = pad_left + rvalues
            key = tuple(fn(probe, ctx) for fn in self.right_key_fns)
            if any(k is None for k in key):
                continue
            buckets.setdefault(key, []).append((rvalues, rlabel, rilabel))
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            probe = lvalues + pad
            key = tuple(fn(probe, ctx) for fn in self.left_key_fns)
            matched = False
            if not any(k is None for k in key):
                for rvalues, rlabel, rilabel in buckets.get(key, ()):
                    combined = lvalues + rvalues
                    if residual is not None and not residual(combined, ctx):
                        continue
                    matched = True
                    yield (combined, llabel.union(rlabel),
                           lilabel.union(rilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class AggSpec:
    """One aggregate computation: function, argument, distinct flag."""

    __slots__ = ("func", "arg_fn", "distinct")

    def __init__(self, func: str, arg_fn: Optional[Callable], distinct: bool):
        self.func = func
        self.arg_fn = arg_fn
        self.distinct = distinct


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("func", "distinct", "seen", "count", "total", "best")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.seen = set() if distinct else None
        self.count = 0
        self.total = None
        self.best = None

    def add(self, value) -> None:
        if self.func == "COUNT" and value is _STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "MIN":
            if self.best is None or value < self.best:
                self.best = value
        elif self.func == "MAX":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.best


_STAR = object()


class AggregateNode(Plan):
    """GROUP BY + aggregate evaluation.

    Output rows are ``group_key_values + aggregate_results``; downstream
    expressions were rewritten by the planner to slot references.
    """

    def __init__(self, child: Plan, group_fns: List[Callable],
                 specs: List[AggSpec], global_agg: bool):
        self.child = child
        self.group_fns = group_fns
        self.specs = specs
        self.global_agg = global_agg

    def rows(self, ctx):
        groups: Dict[tuple, list] = {}
        labels: Dict[tuple, Label] = {}
        ilabels: Dict[tuple, Label] = {}
        order: List[tuple] = []
        group_fns = self.group_fns
        specs = self.specs
        for values, label, ilabel in self.child.rows(ctx):
            key = tuple(fn(values, ctx) for fn in group_fns)
            states = groups.get(key)
            if states is None:
                states = [_AggState(s.func, s.distinct) for s in specs]
                groups[key] = states
                labels[key] = label
                ilabels[key] = ilabel
                order.append(key)
            else:
                labels[key] = labels[key].union(label)
                ilabels[key] = ilabels[key].union(ilabel)
            for spec, state in zip(specs, states):
                if spec.arg_fn is None:
                    state.add(_STAR)
                else:
                    state.add(spec.arg_fn(values, ctx))
        if not groups and self.global_agg:
            states = [_AggState(s.func, s.distinct) for s in specs]
            yield ([] + [s.result() for s in states], EMPTY_LABEL,
                   EMPTY_LABEL)
            return
        for key in order:
            states = groups[key]
            yield (list(key) + [s.result() for s in states], labels[key],
                   ilabels[key])


class Project(Plan):
    def __init__(self, child: Plan, fns: List[Callable]):
        self.child = child
        self.fns = fns

    def rows(self, ctx):
        fns = self.fns
        for values, label, ilabel in self.child.rows(ctx):
            yield [fn(values, ctx) for fn in fns], label, ilabel


class Sort(Plan):
    """ORDER BY; NULLs sort last ascending, first descending."""

    def __init__(self, child: Plan, key_fns: List[Callable],
                 descending: List[bool]):
        self.child = child
        self.key_fns = key_fns
        self.descending = descending

    def rows(self, ctx):
        rows = list(self.child.rows(ctx))
        # Stable multi-key sort: apply keys from last to first.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            def sort_key(row, fn=fn):
                value = fn(row[0], ctx)
                return (value is None, value)
            rows.sort(key=sort_key, reverse=desc)
        return iter(rows)


class Distinct(Plan):
    def __init__(self, child: Plan):
        self.child = child

    def rows(self, ctx):
        seen = set()
        for values, label, ilabel in self.child.rows(ctx):
            key = tuple(values)
            if key in seen:
                continue
            seen.add(key)
            yield values, label, ilabel


class Limit(Plan):
    def __init__(self, child: Plan, limit_fn: Optional[Callable],
                 offset_fn: Optional[Callable]):
        self.child = child
        self.limit_fn = limit_fn
        self.offset_fn = offset_fn

    def rows(self, ctx):
        limit = self.limit_fn([], ctx) if self.limit_fn else None
        offset = self.offset_fn([], ctx) if self.offset_fn else 0
        produced = 0
        skipped = 0
        for row in self.child.rows(ctx):
            if skipped < (offset or 0):
                skipped += 1
                continue
            if limit is not None and produced >= limit:
                return
            produced += 1
            yield row


class DeterministicOrder(Plan):
    """Countermeasure for the tuple-allocation channel (section 7.3).

    Orders rows by a deterministic function of their values so heap
    placement cannot leak the relative order of modifications.  The
    prototype leaves this off by default; the engine exposes it as the
    ``deterministic_order`` flag.
    """

    def __init__(self, child: Plan):
        self.child = child

    def rows(self, ctx):
        rows = list(self.child.rows(ctx))
        rows.sort(key=lambda row: tuple(
            (v is None, str(type(v).__name__), str(v)) for v in row[0]))
        return iter(rows)


class ViewPlan(Plan):
    """Adapts a planned view/subquery: appends the row label as the
    ``_label`` pseudo-column so outer scopes can reference it.

    This is the label-stripping boundary of a declassifying view: the
    inner plan's scans already emit stripped labels, so predicates the
    optimizer keeps *above* this node observe post-declassification
    labels.  The optimizer never pushes a predicate through it.
    """

    def __init__(self, inner: Plan):
        self.inner = inner

    def rows(self, ctx):
        for values, label, ilabel in self.inner.rows(ctx):
            yield values + [label], label, ilabel


class PreparedSelect:
    """A planned SELECT: the plan tree plus output column names."""

    def __init__(self, plan: Plan, columns: List[str]):
        self.plan = plan
        self.columns = columns


class PreparedDML:
    """A planned UPDATE/DELETE: the target scan (a :class:`Scan`
    subclass whose ``versions()`` drives execution) plus the compiled
    ``SET`` assignments (UPDATE only; empty for DELETE)."""

    __slots__ = ("plan", "assignments")

    def __init__(self, plan: Scan, assignments: List[Tuple[int, Callable]]):
        self.plan = plan
        self.assignments = assignments


def explain_plan(plan: Plan, indent: int = 0) -> List[str]:
    """Render a physical plan tree as indented one-line operator summaries.

    The text of each line is the operator's ``explain`` annotation
    (attached by the planner during lowering) or the bare class name,
    followed by the optimizer's cost/row estimates when it attached
    them, so the output always reflects the tree — and the costing —
    that ``rows()`` would execute under.
    """
    line = "  " * indent + (plan.explain or type(plan).__name__)
    if plan.est_rows is not None:
        line += "  (cost=%.2f rows=%d)" % (plan.est_cost or 0.0,
                                           round(plan.est_rows))
    lines = [line]
    for child in _children(plan):
        lines.extend(explain_plan(child, indent + 1))
    return lines


def _children(plan: Plan) -> List[Plan]:
    if isinstance(plan, (NestedLoopJoin, HashJoin)):
        return [plan.left, plan.right]
    if isinstance(plan, IndexLoopJoin):
        return [plan.left]
    if isinstance(plan, ViewPlan):
        return [plan.inner]
    child = getattr(plan, "child", None)
    return [child] if child is not None else []


def plan_tables(plan: Plan) -> frozenset:
    """Names of the base tables a plan tree reads (scans and index-join
    inner sides).  Used to selectively evict cached plans when a table's
    statistics are refreshed.  Subqueries compiled into expressions are
    not walked — a plan missing from an eviction stays merely stale in
    its *estimates*; DDL still invalidates every plan via the catalog
    version."""
    names = set()

    def visit(node: Plan) -> None:
        table = getattr(node, "table", None)
        if isinstance(table, Table):
            names.add(table.name)
        for child in _children(node):
            visit(child)

    visit(plan)
    return frozenset(names)
