"""Tuple versions.

Every row in a table is stored as a chain of immutable *versions*, the
MVCC representation the paper leans on (section 7.1): updates write a new
version, deletes stamp ``xmax``, and visibility rules pick the right
version per snapshot.  IFDB's label checks hook exactly this layer — the
same place PostgreSQL decides which versions are live — so bugs in higher
layers (parser, planner) cannot bypass them.

Each version carries its immutable secrecy and integrity labels.  The
size in bytes (used by the page model) includes 4 bytes per secrecy tag,
matching section 8.3's accounting.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.labels import EMPTY_LABEL, Label

#: Fixed per-version header: tid, xmin, xmax, flags + the label-length
#: byte the paper squeezes into previously unused alignment space.
TUPLE_HEADER_BYTES = 24


class TupleVersion:
    """One immutable version of a row."""

    __slots__ = ("tid", "xmin", "xmax", "values", "label", "ilabel",
                 "page_id", "size")

    def __init__(self, tid: int, xmin: int, values: Tuple,
                 label: Label = EMPTY_LABEL, ilabel: Label = EMPTY_LABEL,
                 data_size: int = 0, store_label: bool = True):
        self.tid = tid
        self.xmin = xmin
        self.xmax: Optional[int] = None
        self.values = values
        self.label = label
        self.ilabel = ilabel
        self.page_id = -1          # assigned by the heap on insert
        label_bytes = label.byte_size() if store_label else 0
        self.size = TUPLE_HEADER_BYTES + data_size + label_bytes

    def __repr__(self) -> str:
        return ("TupleVersion(tid=%d, xmin=%d, xmax=%r, values=%r, label=%r)"
                % (self.tid, self.xmin, self.xmax, self.values, self.label))
