"""Page and buffer-cache model.

The paper's Figure 6 experiment shows label overhead growing with label
size because labels add 4 bytes per tag to every tuple, reducing the
number of tuples per page and increasing I/O and buffer-cache pressure
(section 8.3).  To reproduce that mechanism we model storage as pages:

* every tuple version is appended to its table's current page until the
  page is full (PostgreSQL-style heap files, one per relation);
* reads go through a global LRU :class:`BufferCache` with a bounded
  number of page frames;
* each cache miss charges a configurable *I/O penalty* (simulated
  seconds) to the engine's I/O clock.

Benchmarks compute throughput against ``wall_time + simulated_io_time``,
so the in-memory configuration (cache larger than the database) and the
on-disk configuration (cache much smaller) differ exactly the way the
paper's 10-warehouse and 150-warehouse databases did.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

PageKey = Tuple[str, int]


class HeapPageAllocator:
    """Assigns tuple versions of one table to pages, by byte fill."""

    def __init__(self, table: str, page_size: int):
        self.table = table
        self.page_size = page_size
        self._current_page = 0
        self._fill = 0
        self.pages_allocated = 1

    def place(self, size: int) -> int:
        """Return the page id for a new tuple of ``size`` bytes."""
        if self._fill and self._fill + size > self.page_size:
            self._current_page += 1
            self._fill = 0
            self.pages_allocated += 1
        self._fill += size
        return self._current_page


class BufferCacheStats:
    """Hit/miss counters plus the simulated I/O clock."""

    __slots__ = ("hits", "misses", "evictions", "io_time")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.io_time = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 1.0


class BufferCache:
    """A global LRU cache of page frames.

    ``capacity=None`` models a database that fits in memory: every page
    is resident, no misses are charged after first touch is also free
    (the paper's in-memory DBT-2 configuration is fully cached).
    """

    def __init__(self, capacity: Optional[int] = None,
                 io_penalty: float = 0.0):
        self.capacity = capacity
        self.io_penalty = io_penalty
        self._frames: "OrderedDict[PageKey, None]" = OrderedDict()
        self.stats = BufferCacheStats()

    def touch(self, table: str, page_id: int) -> bool:
        """Access a page; returns True on a hit.

        With unbounded capacity the access is free (always a hit): the
        point of the unbounded mode is an in-memory database where page
        residency never changes behaviour.
        """
        if self.capacity is None:
            self.stats.hits += 1
            return True
        key = (table, page_id)
        frames = self._frames
        if key in frames:
            frames.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self.stats.io_time += self.io_penalty
        frames[key] = None
        if len(frames) > self.capacity:
            frames.popitem(last=False)
            self.stats.evictions += 1
        return False

    def touch_run(self, table: str, page_id: int, count: int) -> bool:
        """Access the same page ``count`` times with one frame operation.

        Heap tuples are laid out consecutively, so a scan batch touches
        each page in a *run*; this charges the run with exactly the
        counters ``count`` sequential :meth:`touch` calls would have
        produced — a resident page yields ``count`` hits, an absent page
        one miss (with its I/O penalty) followed by ``count - 1`` hits,
        and at most one insertion/eviction — while doing a single dict
        probe.  ``hit_rate()`` is therefore identical between the
        batched and row-at-a-time executors.
        """
        if count <= 0:
            return True
        if self.capacity is None:
            self.stats.hits += count
            return True
        key = (table, page_id)
        frames = self._frames
        if key in frames:
            frames.move_to_end(key)
            self.stats.hits += count
            return True
        self.stats.misses += 1
        self.stats.io_time += self.io_penalty
        self.stats.hits += count - 1
        frames[key] = None
        if len(frames) > self.capacity:
            frames.popitem(last=False)
            self.stats.evictions += 1
        return False

    def reset(self) -> None:
        """Drop all frames and zero the statistics."""
        self._frames.clear()
        self.stats.reset()

    def __len__(self) -> int:
        return len(self._frames)
