"""Heap storage: tables as version chains with page accounting.

A :class:`Table` owns its tuple versions (the heap), its page allocator,
and its indexes.  All reads and writes of versions flow through
:meth:`Table.touch`, which charges the engine's buffer cache — the hook
the on-disk benchmark configuration (Figure 6) relies on.

Vacuuming (the PostgreSQL garbage collector, which section 7.1 notes is
exempt from the information flow rules) physically removes versions that
are dead to every possible snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..errors import CatalogError
from .indexes import HashIndex, OrderedIndex
from .pages import BufferCache, HeapPageAllocator
from .schema import TableSchema
from .tuples import TupleVersion


class Table:
    """A stored table: schema + heap + indexes."""

    def __init__(self, schema: TableSchema, *, page_size: int,
                 buffer_cache: BufferCache, store_labels: bool):
        self.schema = schema
        self.name = schema.name
        self._versions: List[Optional[TupleVersion]] = []
        self._allocator = HeapPageAllocator(schema.name, page_size)
        self._buffer_cache = buffer_cache
        self._store_labels = store_labels
        self.indexes: Dict[str, object] = {}
        self.unique_indexes: List[Tuple] = []   # (constraint, index)
        self.polyinstantiation_count = 0
        #: Monotonic write counter (inserts, update versions, deletes);
        #: the statistics subsystem compares it against the value seen
        #: at ANALYZE time to decide when histograms have gone stale.
        self.modifications = 0
        self._heap_count = 0                    # non-None versions, O(1)
        # Auto-create a unique hash index per uniqueness constraint.
        for unique in schema.uniques:
            index = HashIndex(
                name="%s_%s_idx" % (schema.name, unique.name),
                columns=unique.columns,
                positions=schema.positions_of(unique.columns),
                unique=True)
            self.indexes[index.name] = index
            self.unique_indexes.append((unique, index))

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str],
                     *, ordered: bool = False) -> object:
        if name in self.indexes:
            raise CatalogError("index %r already exists" % name)
        positions = self.schema.positions_of(columns)
        cls = OrderedIndex if ordered else HashIndex
        index = cls(name=name, columns=columns, positions=positions)
        # Backfill existing versions (all of them; indexes are
        # version-blind, visibility filters at lookup time).
        for version in self._versions:
            if version is not None:
                index.insert(version.values, version.tid)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError("index %r does not exist" % name)
        if any(index.name == name for _u, index in self.unique_indexes):
            raise CatalogError(
                "index %r backs a unique constraint and cannot be dropped"
                % name)
        del self.indexes[name]

    def find_index(self, columns: Sequence[str],
                   *, prefix_ok: bool = False):
        """An index whose column list matches ``columns`` (or a prefix)."""
        wanted = tuple(columns)
        for index in self.indexes.values():
            if index.columns == wanted:
                return index
        if prefix_ok:
            for index in self.indexes.values():
                if index.columns[:len(wanted)] == wanted:
                    return index
        return None

    # ------------------------------------------------------------------
    # heap operations
    # ------------------------------------------------------------------
    def touch(self, version: TupleVersion) -> None:
        """Charge a page access for examining this version."""
        self._buffer_cache.touch(self.name, version.page_id)

    def touch_run(self, page_id: int, count: int) -> None:
        """Charge ``count`` accesses to one page (a batch's page run).

        Counter-for-counter identical to ``count`` :meth:`touch` calls
        on consecutive versions of the same page — see
        :meth:`~repro.db.pages.BufferCache.touch_run`."""
        self._buffer_cache.touch_run(self.name, page_id, count)

    def append(self, values: Tuple, label: Label, ilabel: Label,
               xid: int) -> TupleVersion:
        """Write a new version into the heap and all indexes."""
        data_size = self.schema.row_data_size(values)
        version = TupleVersion(
            tid=len(self._versions), xmin=xid, values=values,
            label=label if self._store_labels else EMPTY_LABEL,
            ilabel=ilabel if self._store_labels else EMPTY_LABEL,
            data_size=data_size, store_label=self._store_labels)
        version.page_id = self._allocator.place(version.size)
        self._versions.append(version)
        self.modifications += 1
        self._heap_count += 1
        self.touch(version)
        for index in self.indexes.values():
            index.insert(values, version.tid)
        return version

    def version(self, tid: int) -> Optional[TupleVersion]:
        return self._versions[tid]

    def all_versions(self) -> Iterator[TupleVersion]:
        for version in self._versions:
            if version is not None:
                yield version

    def all_versions_batched(self, size: int,
                             part: Optional[Tuple[int, int]] = None,
                             ) -> Iterator[List[TupleVersion]]:
        """Live heap versions in lists of up to ``size``.

        The batch granularity of the vectorized scan: slicing the
        version array and filtering the vacuumed holes in one list
        comprehension is markedly cheaper than driving a per-version
        generator, which is the point of batch-at-a-time execution.
        The loop re-reads ``len()`` so versions appended mid-scan are
        still reached, matching :meth:`all_versions` semantics.

        ``part`` restricts the scan to the half-open **chunk** range
        ``[lo, hi)`` — chunk ``k`` is exactly ``versions[k*size :
        (k+1)*size]``, the same boundaries the unpartitioned scan
        uses.  This is how a parallel worker takes its contiguous
        slice of the heap: identical chunk boundaries mean the
        per-batch label memos (and therefore the ``covers`` counter
        totals) are independent of how many workers split the scan.
        The coordinator computes the chunk ranges from a single
        ``len()`` read before forking, so the ranges tile the heap
        with no gap or overlap.
        """
        versions = self._versions
        if part is not None:
            lo, hi = part
            start = lo * size
            stop = hi * size
            while start < stop:
                chunk = [v for v in versions[start:start + size]
                         if v is not None]
                start += size
                if chunk:
                    yield chunk
            return
        start = 0
        while start < len(versions):
            chunk = [v for v in versions[start:start + size]
                     if v is not None]
            start += size
            if chunk:
                yield chunk

    def materialize_columns(self, versions: List[TupleVersion],
                            positions) -> List[list]:
        """Copy out one value list per requested column position.

        The storage half of projection pushdown: a batched scan hands
        in its surviving versions and gets back only the columns the
        plan actually reads — stored tuples are never widened into
        full execution rows for columns nobody references.
        """
        return [[version.values[p] for version in versions]
                for p in positions]

    def versions_for_tids(self, tids) -> Iterator[TupleVersion]:
        versions = self._versions
        for tid in tids:
            version = versions[tid]
            if version is not None:
                yield version

    @property
    def version_count(self) -> int:
        return sum(1 for v in self._versions if v is not None)

    @property
    def physical_slots(self) -> int:
        """Physical length of the version array, vacuumed holes
        included — the chunk domain a partitioned scan tiles."""
        return len(self._versions)

    @property
    def approx_rows(self) -> int:
        """Cheap (O(1)) row-count estimate for un-analyzed tables: live
        heap versions, which overcounts deleted-but-unvacuumed rows."""
        return self._heap_count

    @property
    def pages(self) -> int:
        return self._allocator.pages_allocated

    # ------------------------------------------------------------------
    # vacuum
    # ------------------------------------------------------------------
    def vacuum(self, txn_manager) -> int:
        """Physically remove versions invisible to every future snapshot.

        A version is dead when its deleting transaction committed before
        the oldest active xid, or its creating transaction aborted.  The
        garbage collector is exempt from label rules (section 7.1).
        """
        horizon = txn_manager.oldest_active_xid()
        removed = 0
        for tid, version in enumerate(self._versions):
            if version is None:
                continue
            dead = False
            if txn_manager.is_aborted(version.xmin):
                dead = True
            elif (version.xmax is not None
                  and txn_manager.is_committed(version.xmax)
                  and version.xmax < horizon):
                dead = True
            if dead:
                for index in self.indexes.values():
                    index.remove(version.values, tid)
                self._versions[tid] = None
                self._heap_count -= 1
                removed += 1
        return removed
