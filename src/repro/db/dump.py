"""Label-preserving dump and restore (the paper's modified pg_dump /
pg_restore, section 7.2), plus psql-style debugging views.

The paper notes that the command-line clients were modified "mainly to
provide debugging capabilities and backups that include labels" — a
stock dump would silently drop every tuple's security metadata.  This
module serializes:

* the catalog (schemas, constraints, views with their declassification
  labels, index definitions);
* every *live, committed* tuple version together with its secrecy and
  integrity labels;
* sequences.

Restores load into a fresh :class:`~repro.db.engine.Database` attached
to the *same* authority state (tag ids must resolve); enforcement picks
up exactly where it left off.

Like the real pg_dump, dumping bypasses Query by Label: it is a trusted
maintenance operation (the paper's garbage collector enjoys the same
exemption, section 7.1).
"""

from __future__ import annotations

import pickle
import struct
import warnings
import zlib
from typing import Dict, List, Optional

from ..core.labels import Label
from ..errors import DatabaseError
from .catalog import ViewDef
from .engine import Database
from .indexes import OrderedIndex
from .spill import decode_labeled_row, encode_labeled_row

FORMAT = "ifdb-dump-v2"
#: Dump container: magic, then ``<u32 payload length><u32 crc32>``,
#: then the pickled payload.  The checksum turns a truncated download
#: or a flipped bit into a clear :class:`DatabaseError` instead of an
#: arbitrary mid-``pickle`` exception (or, worse, a quietly wrong
#: object graph).
MAGIC = b"IFDBDMP2"
_HEADER = struct.Struct("<II")


class DumpIncompleteWarning(UserWarning):
    """A dump or restore skipped catalog objects it cannot serialize.

    Functions, procedures, and triggers are Python callables, which a
    dump cannot round-trip (pickling arbitrary closures is neither
    reliable nor safe to load).  Rather than silently producing an
    incomplete backup — the failure mode this warning exists to
    prevent — both :func:`dump_database` and :func:`restore_database`
    emit it, listing exactly what the restored database will lack so
    the operator can re-register those objects programmatically.
    """


def _unserializable(db: Database) -> List[str]:
    """Catalog objects a dump must drop, as ``kind name`` strings."""
    omitted: List[str] = []
    omitted.extend("function %s" % n for n in sorted(db.catalog.functions))
    omitted.extend("procedure %s" % n for n in sorted(db.catalog.procedures))
    omitted.extend("trigger %s" % n for n in sorted(db.catalog.triggers))
    return omitted


def dump_database(db: Database) -> bytes:
    """Serialize schemas, views, indexes, and live tuples with labels."""
    txn = db.txn_manager.begin()
    try:
        tables = {}
        for name, table in db.catalog.tables.items():
            rows = []
            for version in table.all_versions():
                if not db.txn_manager.visible(version, txn):
                    continue
                # The labeled-row codec is shared with the hash-join
                # spill files (repro.db.spill).
                rows.append(encode_labeled_row(version.values,
                                               version.label,
                                               version.ilabel))
            extra_indexes = []
            auto = {index.name for _u, index in table.unique_indexes}
            for index_name, index in table.indexes.items():
                if index_name in auto:
                    continue
                extra_indexes.append((index_name, index.columns,
                                      isinstance(index, OrderedIndex)))
            tables[name] = {
                "schema": table.schema,
                "rows": rows,
                "indexes": extra_indexes,
            }
        views = {name: (view.select, view.columns,
                        tuple(view.declassify.tags), view.principal)
                 for name, view in db.catalog.views.items()}
        omitted = _unserializable(db)
        if omitted:
            warnings.warn(DumpIncompleteWarning(
                "dump omits %d catalog object(s) that cannot be "
                "serialized: %s" % (len(omitted), ", ".join(omitted))),
                stacklevel=2)
        payload = {
            "format": FORMAT,
            "tables": tables,
            "views": views,
            "table_order": _dependency_order(db),
            "sequences": dict(db._sequences),
            "omitted": omitted,
        }
        body = pickle.dumps(payload)
        return MAGIC + _HEADER.pack(len(body), zlib.crc32(body)) + body
    finally:
        db.txn_manager.abort(txn)


def _dependency_order(db: Database) -> List[str]:
    """Tables sorted so that FK parents restore before children."""
    remaining = dict(db.catalog.tables)
    ordered: List[str] = []
    while remaining:
        progressed = False
        for name, table in list(remaining.items()):
            deps = {fk.ref_table for fk in table.schema.foreign_keys
                    if fk.ref_table != name}
            if deps <= set(ordered):
                ordered.append(name)
                del remaining[name]
                progressed = True
        if not progressed:
            raise DatabaseError("circular foreign-key dependencies: %r"
                                % sorted(remaining))
    return ordered


def _check_and_load(data: bytes) -> dict:
    """Validate the dump container before touching ``pickle``.

    Every corruption mode gets a precise :class:`DatabaseError`:
    wrong/old format (bad magic), truncation (length mismatch), and
    bit rot (checksum mismatch).  Only a byte-exact payload reaches
    ``pickle.loads`` — and even that is wrapped, so a hostile or
    mangled payload cannot surface an arbitrary unpickling exception.
    """
    if len(data) < len(MAGIC) + _HEADER.size or not data.startswith(MAGIC):
        raise DatabaseError(
            "not an IFDB dump (bad magic; expected a %s-format file)"
            % FORMAT)
    length, crc = _HEADER.unpack_from(data, len(MAGIC))
    body = data[len(MAGIC) + _HEADER.size:]
    if len(body) != length:
        raise DatabaseError(
            "truncated IFDB dump: header promises %d payload bytes, "
            "found %d" % (length, len(body)))
    if zlib.crc32(body) != crc:
        raise DatabaseError(
            "corrupted IFDB dump: payload checksum mismatch "
            "(expected %08x, got %08x)" % (crc, zlib.crc32(body)))
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise DatabaseError("undecodable IFDB dump payload: %s" % exc)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise DatabaseError("not an IFDB dump (format %r, expected %r)"
                            % (payload.get("format") if
                               isinstance(payload, dict) else None, FORMAT))
    return payload


def restore_database(data: bytes, db: Database) -> None:
    """Load a dump into an empty database sharing the authority state.

    Tuples are written physically (labels restored verbatim), bypassing
    Query by Label like the dump did; constraints are re-validated by
    construction since the dump came from a consistent database.
    Finishes with ``ANALYZE`` so post-restore queries plan on real
    statistics instead of defaults until drift catches up, and
    re-emits :class:`DumpIncompleteWarning` when the dump recorded
    omitted catalog objects (functions/procedures/triggers the
    operator must re-register).
    """
    payload = _check_and_load(data)
    if db.catalog.tables:
        raise DatabaseError("restore requires an empty database")

    for name in payload["table_order"]:
        entry = payload["tables"][name]
        db.create_table(entry["schema"])
    for name, entry in payload["tables"].items():
        table = db.catalog.get_table(name)
        for index_name, columns, ordered in entry["indexes"]:
            table.create_index(index_name, columns, ordered=ordered)

    txn = db.txn_manager.begin()
    try:
        for name in payload["table_order"]:
            table = db.catalog.get_table(name)
            for record in payload["tables"][name]["rows"]:
                values, label, ilabel = decode_labeled_row(record)
                table.append(tuple(values), label, ilabel, txn.xid)
        db.txn_manager.commit(txn)
    except BaseException:
        db.txn_manager.abort(txn)
        raise

    for name, (select, columns, declassify_tags, principal) in \
            payload["views"].items():
        db.catalog.add_view(ViewDef(
            name=name, select=select, columns=list(columns),
            declassify=Label(declassify_tags), principal=principal))
    db._sequences.update(payload["sequences"])
    omitted = payload.get("omitted") or []
    if omitted:
        warnings.warn(DumpIncompleteWarning(
            "restored database lacks %d catalog object(s) the dump could "
            "not serialize: %s" % (len(omitted), ", ".join(omitted))),
            stacklevel=2)
    db.analyze()


def dump_to_file(db: Database, path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(dump_database(db))


def restore_from_file(path: str, db: Database) -> None:
    with open(path, "rb") as handle:
        restore_database(handle.read(), db)


# ---------------------------------------------------------------------------
# psql-style debugging output
# ---------------------------------------------------------------------------

def describe(db: Database, table_name: Optional[str] = None) -> str:
    """``\\d``-style description including label statistics.

    For each table: columns, constraints, live tuple count, and a
    histogram of labels (by tag names) — the debugging capability the
    modified psql provided.
    """
    names = [table_name] if table_name else sorted(db.catalog.tables)
    lines: List[str] = []
    registry = db.authority.tags
    for name in names:
        table = db.catalog.get_table(name)
        schema = table.schema
        lines.append("Table %s" % name)
        for column in schema.columns:
            flags = []
            if schema.primary_key and column.name in schema.primary_key:
                flags.append("PK")
            if column.not_null:
                flags.append("NOT NULL")
            lines.append("  %-24s %-12s %s" % (column.name,
                                               repr(column.type),
                                               " ".join(flags)))
        for fk in schema.foreign_keys:
            suffix = " MATCH LABEL" if fk.match_label else ""
            lines.append("  FK (%s) -> %s(%s)%s"
                         % (", ".join(fk.columns), fk.ref_table,
                            ", ".join(fk.ref_columns), suffix))
        histogram: Dict[tuple, int] = {}
        live = 0
        for version in table.all_versions():
            if version.xmax is not None:
                continue
            live += 1
            try:
                key = registry.names(version.label.tags)
            except Exception:
                key = tuple(sorted(str(t) for t in version.label.tags))
            histogram[key] = histogram.get(key, 0) + 1
        lines.append("  live tuples: %d" % live)
        for key, count in sorted(histogram.items(),
                                 key=lambda item: -item[1]):
            label_text = "{%s}" % ", ".join(key) if key else "{}"
            lines.append("    %6d  %s" % (count, label_text))
        if table.polyinstantiation_count:
            lines.append("  polyinstantiated inserts: %d"
                         % table.polyinstantiation_count)
        lines.append("")
    return "\n".join(lines)
