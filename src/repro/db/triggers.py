"""Trigger invocation and acting contexts (section 5.2.3).

Statements run under an *acting context*: the label, integrity label, and
principal governing reads and writes.  Normally this proxies the session's
IFC process, so explicit label changes on the process are seen live.  Two
other contexts exist:

* **Closure triggers** run with the bound principal's authority in an
  *isolated, mutable* label context seeded with the statement's label —
  their contamination does not flow back into the firing process (the
  paper's CarTel triggers read raw locations and write drives "without
  contaminating the process performing the insert", section 8.2.2).
* **Deferred triggers** run at commit time but with the label of the
  *statement* that queued them, never the commit label (section 5.2.3) —
  captured in a frozen context when the action is queued.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..core.rules import strip
from ..errors import DatabaseError, IFCViolation
from .catalog import AFTER, BEFORE, DEFERRED, TriggerDef


class ActingContext:
    """Base: what label/authority statements currently run under."""

    @property
    def label(self) -> Label:
        raise NotImplementedError

    @property
    def ilabel(self) -> Label:
        raise NotImplementedError

    @property
    def principal(self) -> Optional[int]:
        raise NotImplementedError


class ProcessActing(ActingContext):
    """Proxies the session's IFC process (the normal case)."""

    def __init__(self, process):
        self.process = process

    @property
    def label(self) -> Label:
        return self.process.label if self.process is not None else EMPTY_LABEL

    @property
    def ilabel(self) -> Label:
        return (self.process.integrity_label if self.process is not None
                else EMPTY_LABEL)

    @property
    def principal(self) -> Optional[int]:
        return self.process.principal if self.process is not None else None


class FixedActing(ActingContext):
    """A mutable, isolated context (closure and deferred triggers)."""

    def __init__(self, authority, label: Label, ilabel: Label,
                 principal: Optional[int]):
        self._authority = authority
        self._label = label
        self._ilabel = ilabel
        self._principal = principal

    @property
    def label(self) -> Label:
        return self._label

    @property
    def ilabel(self) -> Label:
        return self._ilabel

    @property
    def principal(self) -> Optional[int]:
        return self._principal

    # Label changes inside the isolated context: same rules as a process,
    # but nothing propagates to the firing process.
    def add_secrecy(self, tag_id: int) -> None:
        self._authority.tags.get(tag_id)
        self._label = self._label.with_tag(tag_id)

    def declassify(self, tag_id: int) -> None:
        if self._principal is None:
            raise IFCViolation("no principal bound; cannot declassify")
        self._authority.check_authority(self._principal, tag_id)
        self._label = strip(self._authority.tags, self._label,
                            Label((tag_id,)))
        if tag_id in self._label:
            self._label = self._label.without((tag_id,))


class TriggerContext:
    """Handed to trigger functions.

    ``session`` is the live session with the trigger's acting context
    already pushed, so any SQL the trigger runs is governed by the right
    label and authority.  ``old``/``new`` are column-name dicts; BEFORE
    triggers may mutate ``new`` (or return a dict of changes) to adjust
    the row being written.
    """

    def __init__(self, session, event: str, table_name: str,
                 old: Optional[Dict], new: Optional[Dict],
                 statement_label: Label):
        self.session = session
        self.event = event
        self.table = table_name
        self.old = old
        self.new = new
        self.statement_label = statement_label

    @property
    def acting(self):
        return self.session.acting

    def add_secrecy(self, tag_id: int) -> None:
        acting = self.session.acting
        if isinstance(acting, FixedActing):
            acting.add_secrecy(tag_id)
        else:
            acting.process.add_secrecy(tag_id)

    def declassify(self, tag_id: int) -> None:
        acting = self.session.acting
        if isinstance(acting, FixedActing):
            acting.declassify(tag_id)
        else:
            acting.process.declassify(tag_id)


def fire_triggers(db, session, table, event: str, timing: str,
                  old_values: Optional[Tuple], new_values,
                  statement_label: Label):
    """Run (or queue) all matching triggers.

    Returns possibly-updated new values (BEFORE triggers may modify the
    row).  DEFERRED triggers are queued on the open transaction with the
    statement's label and the appropriate principal.
    """
    triggers = db.catalog.triggers_for(table.name, event, timing)
    if not triggers:
        return new_values
    columns = table.schema.column_names
    old_dict = dict(zip(columns, old_values)) if old_values is not None \
        else None
    new_dict = dict(zip(columns, new_values)) if new_values is not None \
        else None
    acting = session.acting

    for trigger in triggers:
        if timing == DEFERRED:
            _queue_deferred(db, session, trigger, table, event, old_dict,
                            new_dict, statement_label)
            continue
        changes = _run_trigger(db, session, trigger, event, table, old_dict,
                               new_dict, statement_label, acting)
        if timing == BEFORE and new_dict is not None:
            if isinstance(changes, dict):
                new_dict.update(changes)
    if timing == BEFORE and new_dict is not None:
        return tuple(new_dict[c] for c in columns)
    return new_values


def _run_trigger(db, session, trigger: TriggerDef, event, table, old_dict,
                 new_dict, statement_label, firing_acting):
    if trigger.closure_principal is not None:
        acting = FixedActing(db.authority, statement_label,
                             firing_acting.ilabel,
                             trigger.closure_principal)
    else:
        acting = firing_acting
    ctx = TriggerContext(session, event, table.name, old_dict, new_dict,
                         statement_label)
    with session.acting_as(acting):
        return trigger.fn(ctx)


def _queue_deferred(db, session, trigger: TriggerDef, table, event, old_dict,
                    new_dict, statement_label):
    from .transactions import DeferredAction

    txn = session.transaction
    if txn is None:
        raise DatabaseError("deferred trigger outside a transaction")
    acting = session.acting
    principal = (trigger.closure_principal
                 if trigger.closure_principal is not None
                 else acting.principal)
    # Freeze the row images now; the heap may move on before commit.
    old_copy = dict(old_dict) if old_dict is not None else None
    new_copy = dict(new_dict) if new_dict is not None else None

    def run():
        deferred_acting = FixedActing(db.authority, statement_label,
                                      acting.ilabel, principal)
        ctx = TriggerContext(session, event, table.name, old_copy, new_copy,
                             statement_label)
        with session.acting_as(deferred_acting):
            trigger.fn(ctx)

    txn.defer(DeferredAction(
        fn=run, label=statement_label, ilabel=acting.ilabel,
        principal=principal or 0,
        description="deferred trigger %s on %s" % (trigger.name, table.name)))
