"""Append-only write-ahead log with group commit and crash recovery.

Until this module, the engine's durability story was a lie told
politely: commits mutated the in-process heap and the only persistence
was a trusted :mod:`repro.db.dump` snapshot, so a crash lost every
transaction since the last dump — *including its labels*, which makes
it an IFC hole, not just a data-loss one (a recovery path that drops or
garbles labels is a declassification channel).  The WAL closes that
gap with the standard crash-consistency discipline:

* **Logged before acknowledged.**  ``Session.commit`` serializes the
  transaction's entire write set into ONE log record and hands it to
  :meth:`WriteAheadLog.log_commit`, which returns only after the bytes
  are written *and fsynced*; only then does
  :class:`~repro.db.transactions.TransactionManager` flip the
  transaction to ``COMMITTED``.  One record per transaction makes
  prefix-atomicity structural: a torn record simply *is* an
  uncommitted transaction.
* **Group commit.**  Concurrent committers ride one fsync: the first
  committer becomes the flush leader (optionally sleeping
  ``group_commit_ms`` to let stragglers accumulate), writes every
  pending record, issues a single fsync, and wakes the group.  A
  commit that arrives mid-flush waits and is absorbed by the next
  leader.  ``Database(wal=…, group_commit_ms=…)`` / ``REPRO_WAL`` /
  ``REPRO_GROUP_COMMIT_MS`` configure it.
* **Checksummed, length-prefixed records.**  Each record is
  ``<u32 length><u32 crc32(payload)><payload>``; the payload reuses the
  labeled-row codec shared with :mod:`repro.db.spill` and
  :mod:`repro.db.dump` (labels flatten to plain tag tuples and
  **re-intern on replay**, so a recovered label is ``is``-identical to
  the live interned one and the scan-level label memos keep working).
* **Recovery** (:func:`replay`, surfaced as ``Database.recover``)
  scans the log, stops at the first torn/corrupt record (the tail a
  crash leaves), and re-applies each committed transaction under a
  fresh xid: heap versions, ``xmax`` stamps, indexes (rebuilt by
  ``Table.append``), labels, sequences, and logged DDL.  Aborted
  transactions were never logged, so they cannot stall the recovered
  committed horizon.  Replay is idempotent: a per-database watermark
  skips already-applied records, so recovering twice is a no-op.
* **The fsync gate.**  If fsync *fails* (as opposed to the machine
  dying), the kernel has refused to promise durability, and the bytes
  may or may not be on disk.  Acknowledging would be unsound;
  silently retrying is the classic fsync-gate bug.  The WAL truncates
  the file back to the last durable offset, marks itself failed
  (every later commit errors), and raises — the commit is refused, so
  recovery can never replay a transaction whose commit the client was
  told failed.

Like dump/restore and the garbage collector (sections 7.1/7.2), the
WAL and recovery are *trusted maintenance operations*: they read and
write tuples bypassing Query by Label, and they must — recovery's whole
job is to restore high tuples a confined process could never see.  The
log file therefore carries every label in the clear and must be
protected like the heap itself.

Fault injection (:mod:`repro.db.faultinject`, ``REPRO_CRASH_POINT``)
wraps the file so ``tests/test_wal.py`` can prove all of the above at
every injection point rather than assume it.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from ..core.counters import CounterGroup
from ..core.labels import Label
from ..errors import DatabaseError
from .faultinject import CrashError, FaultSpec, FaultyFile
from .spill import decode_labeled_row, encode_labeled_row

#: File magic, written once at creation; a file that does not start
#: with it recovers as empty (zero records).
MAGIC = b"IFDBWAL1"
#: Per-record header: payload length, crc32(payload).
_HEADER = struct.Struct("<II")


class WalError(DatabaseError):
    """The WAL could not make a record durable; the commit is refused."""


class WalStats(CounterGroup):
    """Process-wide WAL counters, registered as the ``wal`` group of
    the unified :data:`repro.db.metrics.REGISTRY` (so they surface in
    ``Database.stats()``, per-statement deltas, and EXPLAIN ANALYZE's
    statement-total line).  ``group_commit_size`` is a high-water mark
    (largest number of commits absorbed by one flush), not an additive
    counter — cross-thread totals max-combine it.  Increments land on
    whichever thread led the flush; ``snapshot()`` sums across threads
    (:class:`~repro.core.counters.CounterGroup`), which is what the
    threaded group-commit tests read via ``Database.stats()``.

    Fields: ``records`` (records appended, commit + ddl), ``bytes``
    (record bytes written incl. headers), ``flushes`` (successful
    flush batches), ``fsyncs``, ``commits`` (commit records made
    durable), ``commit_flushes`` (flushes covering >= 1 commit), and
    the ``group_commit_size`` gauge."""

    FIELDS = ("records", "bytes", "flushes", "fsyncs", "commits",
              "commit_flushes", "group_commit_size")
    MAX_FIELDS = ("group_commit_size",)


#: The module-wide counter instance.
WAL_STATS = WalStats()

_AUTO_COUNTER = [0]
_AUTO_LOCK = threading.Lock()


def auto_wal_path(directory: str) -> str:
    """A unique WAL path inside ``directory`` (the ``REPRO_WAL=<dir>``
    mode, where every ``Database`` in the process gets its own log)."""
    with _AUTO_LOCK:
        _AUTO_COUNTER[0] += 1
        n = _AUTO_COUNTER[0]
    return os.path.join(directory, "wal-%d-%d.log" % (os.getpid(), n))


class _RealFile:
    """Unbuffered append-mode file with the interface
    :class:`~repro.db.faultinject.FaultyFile` wraps: every ``write``
    reaches the OS immediately, so the simulated-crash prefix on disk
    is exactly what the injector let through."""

    __slots__ = ("_handle",)

    def __init__(self, path: str):
        self._handle = open(path, "ab", buffering=0)

    def write(self, data: bytes) -> None:
        self._handle.write(data)

    def fsync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def truncate(self, n: int) -> None:
        self._handle.truncate(n)

    def size(self) -> int:
        return os.fstat(self._handle.fileno()).st_size

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


def encode_record(record: tuple) -> bytes:
    """One length-prefixed, checksummed record image."""
    payload = pickle.dumps(record, pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal(path: str) -> Tuple[List[tuple], int, Optional[str]]:
    """Read every valid record; stop at the first torn/corrupt one.

    Returns ``(records, valid_bytes, tail)`` where ``valid_bytes`` is
    the offset of the last well-formed record boundary (what an
    appender should truncate to) and ``tail`` names why scanning
    stopped early (``None`` for a clean end-of-file).
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, "missing"
    if not data:
        return [], 0, None
    if len(data) < len(MAGIC) or data[:len(MAGIC)] != MAGIC:
        return [], 0, "bad-magic"
    records: List[tuple] = []
    offset = len(MAGIC)
    tail: Optional[str] = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            tail = "torn-header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        payload = data[offset + _HEADER.size:offset + _HEADER.size + length]
        if len(payload) < length:
            tail = "torn-record"
            break
        if zlib.crc32(payload) != crc:
            tail = "bad-checksum"
            break
        try:
            records.append(pickle.loads(payload))
        except Exception:
            tail = "undecodable"
            break
        offset += _HEADER.size + length
    return records, offset, tail


class _Entry:
    """One record waiting in the group-commit queue."""

    __slots__ = ("data", "is_commit", "done", "error")

    def __init__(self, data: bytes, is_commit: bool):
        self.data = data
        self.is_commit = is_commit
        self.done = False
        self.error = None


class WriteAheadLog:
    """The append-only log file plus the group-commit machinery.

    Opening an existing file *repairs its tail*: the valid record
    prefix is kept and any torn/corrupt bytes a crash left behind are
    truncated away, so appending can never bury committed records
    behind garbage a future recovery would stop at.
    """

    def __init__(self, path: str, *, group_commit_ms: float = 0.0,
                 fault: Optional[FaultSpec] = None,
                 stats: WalStats = WAL_STATS):
        self.path = path
        self._stats = stats
        self._delay = max(0.0, float(group_commit_ms)) / 1000.0
        _records, valid, tail = scan_wal(path)
        self.existing_records = len(_records)
        real = _RealFile(path)
        if tail not in (None, "missing") or real.size() > valid:
            # Torn/corrupt tail (or bad magic): keep the valid prefix.
            real.truncate(valid if tail != "bad-magic" else 0)
        if fault is None:
            fault = FaultSpec.from_env()
        self.fault = FaultyFile(real, fault)
        self._file = self.fault
        self._durable = self._file.size()
        self._failed: Optional[BaseException] = None
        self._cond = threading.Condition()
        self._pending: List[_Entry] = []
        self._flushing = False
        if self._durable == 0:
            # Fresh (or fully-truncated) file: stamp the magic.  This
            # goes through the injector too — crash-before-magic is a
            # legitimate matrix coordinate.
            self._file.write(MAGIC)
            self._file.fsync()
            self._durable = len(MAGIC)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def log(self, record: tuple) -> None:
        """Append a non-transactional record (DDL), durable on return."""
        self._submit(_Entry(encode_record(record), is_commit=False))

    def log_commit(self, record: tuple) -> None:
        """Append a commit record; returns only once it is durable.

        This is the acknowledgement gate: the caller must not mark the
        transaction committed until this returns.  Raises
        :class:`WalError` (fsync refused, log failed) or
        :class:`~repro.db.faultinject.CrashError` (simulated power
        loss) — either way the commit did not happen.
        """
        self._submit(_Entry(encode_record(record), is_commit=True))

    def _submit(self, entry: _Entry) -> None:
        with self._cond:
            if self._failed is not None:
                raise WalError(
                    "WAL %s is failed (%s); refusing new records"
                    % (self.path, self._failed))
            self._pending.append(entry)
            while not entry.done and self._flushing:
                self._cond.wait()
            if entry.done:
                if entry.error is not None:
                    raise entry.error
                return
            self._flushing = True           # we are the flush leader
        if self._delay:
            # commit_delay: let concurrent committers pile into
            # ``_pending`` so one fsync covers them all.
            time.sleep(self._delay)
        with self._cond:
            batch = self._pending
            self._pending = []
        error = self._flush_batch(batch)
        with self._cond:
            self._flushing = False
            if error is not None:
                self._failed = error
            for waiting in batch:
                waiting.done = True
                waiting.error = error
            self._cond.notify_all()
        if error is not None:
            raise error

    def _flush_batch(self, batch: List[_Entry]) -> Optional[BaseException]:
        """Write every record, then one fsync.  Returns the failure (if
        any) instead of raising so the leader can wake the group before
        propagating."""
        stats = self._stats
        written = 0
        try:
            for entry in batch:
                self._file.write(entry.data)
                written += len(entry.data)
        except CrashError as crash:
            return crash
        try:
            self._file.fsync()
        except CrashError as crash:
            return crash
        except OSError as exc:
            # The fsync gate: durability was refused and the written
            # bytes are in an unknown state.  Truncate them away so a
            # later recovery cannot replay a commit we are about to
            # refuse, then fail the log for good (PostgreSQL panics
            # here for the same reason).
            try:
                self._file.truncate(self._durable)
            except (OSError, CrashError):
                pass
            return WalError(
                "WAL fsync failed; commit refused and %d unsynced bytes "
                "truncated: %s" % (written, exc))
        commits = sum(1 for entry in batch if entry.is_commit)
        stats.records += len(batch)
        stats.bytes += written
        stats.flushes += 1
        stats.fsyncs += 1
        stats.commits += commits
        if commits:
            stats.commit_flushes += 1
            if commits > stats.group_commit_size:
                stats.group_commit_size = commits
        self._durable = self._durable + written
        return None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        return self._failed is not None

    def close(self) -> None:
        self._file.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# building commit records (the Session.commit hook)
# ---------------------------------------------------------------------------

def build_commit_record(db, txn) -> Optional[tuple]:
    """Serialize one transaction's effects as a single WAL record.

    ``("commit", xid, ops, seqs)`` where each op is

    * ``("i", table, tid, (values, label_tags, ilabel_tags))`` — an
      inserted version (tid is the *original* heap tid; replay maps it
      to the recovered heap through a per-table tid map);
    * ``("u", table, old_tid, new_tid, row)`` — an update: stamp
      ``xmax`` on the mapped old version, append the new one;
    * ``("d", table, tid)`` — a delete: stamp ``xmax``.

    ``seqs`` carries the sequences this database bumped since the last
    logged commit (name → value at commit time), so sequence state
    recovers with the transaction that made it observable.  Returns
    ``None`` for a read-only transaction with no sequence traffic —
    nothing to make durable.
    """
    ops: List[tuple] = []
    for write in txn.write_set:
        table = db.catalog.get_table(write.table)
        if write.kind == "insert":
            version = table.version(write.tid)
            ops.append(("i", write.table, write.tid,
                        encode_labeled_row(version.values, version.label,
                                           version.ilabel)))
        elif write.kind == "update":
            version = table.version(write.tid)      # the new version
            ops.append(("u", write.table, write.prev_tid, write.tid,
                        encode_labeled_row(version.values, version.label,
                                           version.ilabel)))
        else:                                        # "delete"
            ops.append(("d", write.table, write.tid))
    seqs = db._take_wal_sequences()
    if not ops and not seqs:
        return None
    return ("commit", txn.xid, ops, seqs)


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------

def replay(db, path: str) -> Dict[str, object]:
    """Re-apply the valid record prefix of ``path`` into ``db``.

    Trusted maintenance operation (like dump/restore): heap writes
    bypass Query by Label and labels are restored verbatim (re-interned
    via the shared codec).  The database must share the authority state
    of the logging database so tag ids resolve.

    Idempotent: ``db`` keeps a watermark of applied record indexes, so
    replaying the same log again is a no-op.  To keep the watermark
    meaningful the database must not have committed new (non-replay)
    transactions since — ``Database.recover`` enforces that.
    """
    records, valid_bytes, tail = scan_wal(path)
    applied = transactions = ddl = 0
    skipped = db._wal_applied
    for index, record in enumerate(records):
        if index < db._wal_applied:
            continue
        kind = record[0]
        if kind == "commit":
            _apply_commit(db, record)
            transactions += 1
        elif kind == "ddl":
            _apply_ddl(db, record)
            ddl += 1
        else:
            raise WalError("unknown WAL record kind %r at index %d"
                           % (kind, index))
        applied += 1
        db._wal_applied = index + 1
    return {"records": len(records), "applied": applied,
            "skipped": min(skipped, len(records)),
            "transactions": transactions, "ddl": ddl,
            "valid_bytes": valid_bytes, "tail": tail}


def _apply_commit(db, record: tuple) -> None:
    """Replay one committed transaction under a fresh xid."""
    _kind, _orig_xid, ops, seqs = record
    tid_maps = db._wal_tid_maps
    txn = db.txn_manager.begin()
    try:
        for op in ops:
            table = db.catalog.get_table(op[1])
            tid_map = tid_maps.setdefault(op[1], {})
            if op[0] == "i":
                values, label, ilabel = decode_labeled_row(op[3])
                version = table.append(tuple(values), label, ilabel,
                                       txn.xid)
                tid_map[op[2]] = version.tid
            elif op[0] == "u":
                # Tids created during replay differ from the originals
                # (aborted appends never hit the log), hence the map;
                # a tid absent from it predates WAL logging (the log
                # was attached to a pre-populated database), where heap
                # tids are identical by construction.
                old = table.version(tid_map.get(op[2], op[2]))
                old.xmax = txn.xid
                values, label, ilabel = decode_labeled_row(op[4])
                version = table.append(tuple(values), label, ilabel,
                                       txn.xid)
                tid_map[op[3]] = version.tid
            elif op[0] == "d":
                old = table.version(tid_map.get(op[2], op[2]))
                old.xmax = txn.xid
                table.modifications += 1
            else:
                raise WalError("unknown WAL op %r" % (op[0],))
    except BaseException:
        db.txn_manager.abort(txn)
        raise
    db.txn_manager.commit(txn)
    db._wal_replay_commits += 1
    for name, value in seqs.items():
        if value > db._sequences.get(name, 0):
            db._sequences[name] = value


def _apply_ddl(db, record: tuple) -> None:
    """Replay one DDL record (logged at execution, non-transactional)."""
    from .catalog import ViewDef
    verb = record[1]
    if verb == "create_table":
        db.create_table(record[2])
    elif verb == "create_index":
        db.create_index(record[3], record[2], record[4],
                        ordered=record[5])
    elif verb == "drop_index":
        db.drop_index(record[2])
    elif verb == "create_view":
        # Direct catalog write, mirroring restore_database: the view's
        # backing authority was checked when the view was created and
        # recovery is a trusted operation — re-checking here could make
        # an otherwise-valid log unreplayable after a later revocation
        # (uses re-validate authority regardless, so enforcement is
        # unchanged).
        _v, _n, name, select, columns, declassify_tags, principal = record
        db.catalog.add_view(ViewDef(
            name=name, select=select, columns=list(columns),
            declassify=Label(declassify_tags), principal=principal))
    elif verb == "drop_table":
        db.catalog.drop_table(record[2])
        db.stats_manager.forget(record[2])
    elif verb == "drop_view":
        db.catalog.drop_view(record[2])
    else:
        raise WalError("unknown WAL DDL verb %r" % (verb,))
