"""SQL value types.

The engine supports the types the paper's applications and benchmarks
need: integers, floats/numerics, text, booleans, timestamps, and the
special ``LABEL`` type backing the ``_label`` system column (stored as an
``INT[]`` in the paper, section 4.2).

Each type knows how to coerce Python values and how many bytes a value
occupies in the storage model.  Sizes matter: the on-disk benchmark
configuration (Figure 6) depends on tuple sizes determining how many
tuples fit on a page.
"""

from __future__ import annotations

import datetime
import numbers
from typing import Any, Optional

from ..core.labels import Label
from ..errors import TypeError_


class SQLType:
    """Base class for SQL types."""

    name = "UNKNOWN"

    def coerce(self, value: Any) -> Any:
        raise NotImplementedError

    def size_of(self, value: Any) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class IntType(SQLType):
    name = "INT"

    def coerce(self, value):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                pass
        raise TypeError_("cannot coerce %r to INT" % (value,))

    def size_of(self, value):
        return 8


class FloatType(SQLType):
    name = "REAL"

    def coerce(self, value):
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, numbers.Real):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeError_("cannot coerce %r to REAL" % (value,))

    def size_of(self, value):
        return 8


class NumericType(FloatType):
    """NUMERIC/DECIMAL: stored as float; precision is a display concern."""

    name = "NUMERIC"


class TextType(SQLType):
    name = "TEXT"

    def __init__(self, max_length: Optional[int] = None):
        self.max_length = max_length

    def coerce(self, value):
        if isinstance(value, str):
            text = value
        elif isinstance(value, (int, float)):
            text = str(value)
        else:
            raise TypeError_("cannot coerce %r to TEXT" % (value,))
        if self.max_length is not None and len(text) > self.max_length:
            raise TypeError_(
                "value of length %d exceeds VARCHAR(%d)"
                % (len(text), self.max_length))
        return text

    def size_of(self, value):
        return 4 + len(value)

    def __eq__(self, other):
        return isinstance(other, TextType)

    def __hash__(self):
        return hash(TextType)

    def __repr__(self):
        if self.max_length is not None:
            return "VARCHAR(%d)" % self.max_length
        return self.name


class BoolType(SQLType):
    name = "BOOLEAN"

    def coerce(self, value):
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.lower()
            if lowered in ("t", "true", "1", "yes"):
                return True
            if lowered in ("f", "false", "0", "no"):
                return False
        raise TypeError_("cannot coerce %r to BOOLEAN" % (value,))

    def size_of(self, value):
        return 1


class TimestampType(SQLType):
    """Timestamps are stored as float seconds since the epoch.

    Accepts datetimes, numbers, and ISO-format strings.  Simulated-time
    benchmarks pass floats straight through.
    """

    name = "TIMESTAMP"

    def coerce(self, value):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        if isinstance(value, datetime.datetime):
            return value.timestamp()
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value).timestamp()
            except ValueError:
                pass
        raise TypeError_("cannot coerce %r to TIMESTAMP" % (value,))

    def size_of(self, value):
        return 8


class LabelType(SQLType):
    """The type of the ``_label`` system column (INT[] in the paper)."""

    name = "LABEL"

    def coerce(self, value):
        if isinstance(value, Label):
            return value
        if isinstance(value, (set, frozenset, tuple, list)):
            return Label(value)
        raise TypeError_("cannot coerce %r to LABEL" % (value,))

    def size_of(self, value):
        return value.byte_size()


#: Singleton instances (TextType with a length limit is created ad hoc).
INT = IntType()
FLOAT = FloatType()
NUMERIC = NumericType()
TEXT = TextType()
BOOL = BoolType()
TIMESTAMP = TimestampType()
LABEL = LabelType()

_BY_NAME = {
    "INT": INT, "INTEGER": INT, "BIGINT": INT, "SMALLINT": INT,
    "SERIAL": INT,
    "REAL": FLOAT, "FLOAT": FLOAT, "DOUBLE": FLOAT,
    "NUMERIC": NUMERIC, "DECIMAL": NUMERIC,
    "TEXT": TEXT, "VARCHAR": TEXT, "CHAR": TEXT, "STRING": TEXT,
    "BOOLEAN": BOOL, "BOOL": BOOL,
    "TIMESTAMP": TIMESTAMP, "DATETIME": TIMESTAMP,
    "LABEL": LABEL,
}


def type_by_name(name: str, length: Optional[int] = None) -> SQLType:
    """Resolve a SQL type name (as written in DDL) to a type object."""
    try:
        base = _BY_NAME[name.upper()]
    except KeyError:
        raise TypeError_("unknown SQL type %r" % name) from None
    if length is not None and isinstance(base, TextType):
        return TextType(max_length=length)
    return base
