"""Spill files for memory-bounded (grace) hash joins.

The batched executor's :class:`~repro.db.physical.HashJoin` builds an
in-memory hash table of its right input.  Under a ``work_mem`` budget
(``Database(work_mem=…)`` / ``REPRO_WORK_MEM``) the build is
byte-estimated as it grows; on overflow the join degrades to the
classic *hybrid grace* scheme this module implements the storage for:

* build rows are hash-partitioned by join key into ``SPILL_FANOUT``
  partitions; partition 0 stays **resident** in memory (the hybrid
  part) unless it alone overflows the budget, every other partition
  spools to an anonymous temp file;
* probe rows whose key routes to the resident partition join
  immediately (streaming); the rest spool to per-partition probe
  files;
* each spilled partition is then joined independently — and a
  partition whose build side *still* exceeds the budget is recursively
  re-partitioned with a fresh hash salt, terminating when the
  partition holds a single distinct key (re-partitioning cannot split
  it; it is processed in memory over budget) or at
  :data:`MAX_RECURSION`.

Rows are serialized with the labeled-row codec shared with the
dump/restore tooling (:func:`encode_labeled_row`, which
:mod:`repro.db.dump` also uses per tuple): labels are stored as plain
tag tuples and re-enter the intern table on decode, so a reloaded
label is *identical* (``is``) to the live one and the scan-level label
memos keep working across a spill.

Spilling never moves enforcement: every spooled row already passed the
scan-level MVCC and Query-by-Label checks under the statement's
snapshot, and a temp-file round trip cannot resurrect a tuple the
process may not see.  Temp files never touch the buffer cache — heap
pages were charged once, when the scans read them.
"""

from __future__ import annotations

import pickle
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.counters import CounterGroup
from ..core.labels import Label

#: Partitions per spill level (the grace-join fanout).
SPILL_FANOUT = 8
#: Hard cap on recursive re-partitioning depth; a partition that still
#: overflows at this depth is processed in memory over budget (likely
#: extreme skew that even re-salting cannot split).
MAX_RECURSION = 6
#: Estimated dict-entry overhead per build row (bucket list slot, key
#: tuple, hash-table share), on top of :func:`estimate_row_bytes`.
BUCKET_ENTRY_BYTES = 96
#: Estimated footprint of one per-group aggregate accumulator
#: (``physical._AggState``: a slotted object plus a few boxed fields,
#: or a distinct-tracking set seed).  Charged per aggregate spec per
#: group by both the runtime budget check and the optimizer's
#: grace-aggregation estimate, so they agree on what group state
#: weighs.
AGG_STATE_BYTES = 120


class SpillStats(CounterGroup):
    """Process-wide spill counters (diff before/after, like
    ``rules.COUNTERS``).  ``spills`` counts top-level build-side
    overflow events (one per join that spilled, however deep the
    recursion), ``repartitions`` recursive splits — both grace-join
    partitions and re-partitioned aggregation state — and
    ``partitions_created`` build spools that actually received rows;
    bytes are accounted when a spool switches from writing to
    reading.  ``sort_spills``/``sort_runs`` count external merge
    sorts and the sorted runs they spooled; ``agg_spills``/
    ``agg_partitions`` the grace hash aggregations (and DISTINCTs)
    whose group state overflowed and the partitions that received
    rows.  Registered as the ``spill`` group of the unified
    :data:`repro.db.metrics.REGISTRY`; ``bytes_spilled`` also feeds
    the per-statement stats (``Database.stats()["statements"]``) and
    EXPLAIN ANALYZE's ``spill_*`` columns."""

    FIELDS = ("spills", "partitions_created", "repartitions",
              "rows_spilled", "bytes_spilled", "sort_spills",
              "sort_runs", "agg_spills", "agg_partitions")


#: The module-wide counter instance.
SPILL_STATS = SpillStats()


# ---------------------------------------------------------------------------
# the labeled-row codec (shared with db.dump)
# ---------------------------------------------------------------------------

def encode_labeled_row(values, label: Label, ilabel: Label) -> tuple:
    """Serialize one labeled row as ``(values, label_tags, ilabel_tags)``.

    The same representation the label-preserving dump format stores per
    tuple (:mod:`repro.db.dump`): labels flatten to plain tag tuples so
    the payload is stable pickle regardless of intern-table state.
    """
    return values, tuple(label.tags), tuple(ilabel.tags)


def decode_labeled_row(record: tuple):
    """Inverse of :func:`encode_labeled_row`; labels re-enter the
    intern table, so a decoded label is identical (``is``) to the live
    interned instance for the same tag set."""
    values, label_tags, ilabel_tags = record
    return values, Label(label_tags), Label(ilabel_tags)


def estimate_value_bytes(value) -> int:
    """Approximate in-memory footprint of one column value — the
    per-value half of :func:`estimate_row_bytes`.  ANALYZE uses the
    same accounting to measure average column widths
    (:attr:`~repro.db.stats.ColumnStats.avg_width`), so the optimizer's
    planning-time byte estimates and the executor's runtime budget
    checks agree on what a row weighs.  Note a projected-away column
    rides along as ``None`` at 8 bytes, which is why a narrow build
    side earns a real memory credit."""
    if value is None:
        return 8
    if isinstance(value, (int, float)):
        return 28
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, Label):
        return 64 + 4 * len(value)
    return 64


def estimate_row_bytes(values, label: Optional[Label] = None) -> int:
    """Approximate in-memory footprint of one execution row.

    Deliberately coarse (CPython object headers rounded to friendly
    constants): the budget decides *when to switch algorithms*, not an
    allocator invariant.  Strings count their length, labels 4 bytes a
    tag plus object overhead — the same per-tag accounting the page
    model uses (section 8.3).
    """
    total = 64                               # the list + its pointer slots
    for value in values:
        total += estimate_value_bytes(value)
    if label is not None:
        total += 16 + 4 * len(label)
    return total


def estimated_tuple_bytes(n_columns: int) -> int:
    """Planning-time row-width guess when only the column count is
    known (the optimizer's spill costing; see ``Optimizer``)."""
    return 72 + 30 * n_columns


class SpillFile:
    """Append-only spool of pickled records on an anonymous temp file.

    Records are written with ``pickle`` (self-delimiting, so no length
    framing is needed) and read back exactly once.  The backing
    ``TemporaryFile`` is opened lazily on the first write — a grace
    join creates ``2 × fanout`` spools per level and many (the hybrid
    resident pair, lightly-hit partitions) are never written — and is
    unlinked by the OS, so an abandoned spool cannot outlive the
    process.
    """

    __slots__ = ("_file", "count", "_reading")

    def __init__(self):
        self._file = None
        self.count = 0
        self._reading = False

    def write(self, record) -> None:
        assert not self._reading, "spill file already switched to reading"
        if self._file is None:
            self._file = tempfile.TemporaryFile(prefix="repro-spill-")
        pickle.dump(record, self._file, pickle.HIGHEST_PROTOCOL)
        self.count += 1
        SPILL_STATS.rows_spilled += 1

    def records(self) -> Iterator:
        """Yield every record in write order, then close the file."""
        self._reading = True
        if self._file is None:
            return
        SPILL_STATS.bytes_spilled += self._file.tell()
        self._file.seek(0)
        try:
            for _ in range(self.count):
                yield pickle.load(self._file)
        finally:
            self._file.close()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()

    # -- labeled execution rows (the join spools) ----------------------
    def write_row(self, key: tuple, row) -> None:
        """Spool one keyed ``(values, label, ilabel)`` execution row."""
        values, label, ilabel = row
        self.write((key,) + encode_labeled_row(values, label, ilabel))

    def rows(self) -> Iterator[Tuple[tuple, tuple]]:
        """Yield ``(key, (values, label, ilabel))`` in write order."""
        for key, values, label_tags, ilabel_tags in self.records():
            yield key, decode_labeled_row((values, label_tags,
                                           ilabel_tags))

    def write_labeled(self, row) -> None:
        """Spool one keyless ``(values, label, ilabel)`` execution row
        (the external-sort run format — order carries the information,
        so no routing key is stored)."""
        values, label, ilabel = row
        self.write(encode_labeled_row(values, label, ilabel))

    def labeled_rows(self) -> Iterator[tuple]:
        """Yield ``(values, label, ilabel)`` triples in write order;
        labels re-enter the intern table on decode."""
        for record in self.records():
            yield decode_labeled_row(record)


class _Partition:
    """One grace partition: a build spool and a probe spool."""

    __slots__ = ("build", "probe")

    def __init__(self):
        self.build = SpillFile()
        self.probe = SpillFile()

    def close(self) -> None:
        self.build.close()
        self.probe.close()


class SpilledHashBuild:
    """Partitioned overflow state for one hash-join build side.

    Rows are opaque to this class (the join layer passes
    ``(values, label, ilabel)`` triples); only the key participates in
    routing.  With ``keep_resident`` (the top level) partition 0 lives
    as an in-memory bucket dict so probes against it stream with no
    extra I/O; recursion levels disable it — their input is already a
    single partition's worth of rows.
    """

    __slots__ = ("budget", "fanout", "salt", "depth", "partitions",
                 "resident", "resident_bytes")

    def __init__(self, budget: int, *, salt: int = 0, depth: int = 0,
                 keep_resident: bool = True, fanout: int = SPILL_FANOUT):
        self.budget = budget
        self.fanout = fanout
        self.salt = salt
        self.depth = depth
        self.partitions: List[_Partition] = [_Partition()
                                             for _ in range(fanout)]
        self.resident: Optional[Dict[tuple, list]] = \
            {} if keep_resident else None
        self.resident_bytes = 0
        if depth == 0:
            SPILL_STATS.spills += 1

    def route(self, key: tuple) -> int:
        return hash((self.salt, key)) % self.fanout

    @staticmethod
    def _write_build(spool: SpillFile, key: tuple, row) -> None:
        if spool.count == 0:
            SPILL_STATS.partitions_created += 1
        spool.write_row(key, row)

    # -- build side ----------------------------------------------------
    def take_buckets(self, buckets: Dict[tuple, list]) -> None:
        """Migrate the in-memory buckets accumulated before overflow."""
        for key, rows in buckets.items():
            for row in rows:
                self.add_build(key, row)

    def add_build(self, key: tuple, row) -> None:
        index = self.route(key)
        if index == 0 and self.resident is not None:
            self.resident.setdefault(key, []).append(row)
            self.resident_bytes += (estimate_row_bytes(row[0], row[1])
                                    + BUCKET_ENTRY_BYTES)
            if self.resident_bytes > self.budget:
                # The hybrid partition alone overflows: demote it to a
                # spool like the others (build phase only — by probe
                # time the resident dict is frozen).
                spool = self.partitions[0].build
                for spilled_key, rows in self.resident.items():
                    for spilled_row in rows:
                        self._write_build(spool, spilled_key, spilled_row)
                self.resident = None
            return
        self._write_build(self.partitions[index].build, key, row)

    # -- probe side ----------------------------------------------------
    def probe(self, key: tuple, row) -> Optional[list]:
        """Immediate matches when ``key`` routes to the resident
        partition (possibly ``[]`` — a definitive miss), else ``None``
        after spooling the probe row for the partition phase.

        The build side is always complete before probing starts, so a
        partition whose build spool is empty is also a definitive miss
        — the probe row skips the spool round trip.  (Top level only:
        recursion levels re-spool via :meth:`spool_probe`, where the
        row must surface in the partition phase regardless, for LEFT
        JOIN NULL extension.)"""
        index = self.route(key)
        if index == 0 and self.resident is not None:
            return self.resident.get(key, [])
        partition = self.partitions[index]
        if partition.build.count == 0:
            return []
        partition.probe.write_row(key, row)
        return None

    def spool_probe(self, key: tuple, row) -> None:
        self.partitions[self.route(key)].probe.write_row(key, row)

    # -- partition phase ------------------------------------------------
    def results(self) -> Iterator[Tuple[object, list]]:
        """Yield ``(probe_row, build_matches)`` for every spooled probe
        row, re-partitioning build sides that still exceed the budget.

        Each partition's spools close as soon as that partition is
        done *or dies* (the inner ``finally``); consumers should still
        call :meth:`close` in their own ``finally`` — it is idempotent
        — so an exception raised between partitions, or an abandoned
        iterator, cannot leak the remaining descriptors.
        """
        for index, partition in enumerate(self.partitions):
            if index == 0 and self.resident is not None:
                # Resident probes were answered online; nothing spooled.
                partition.close()
                continue
            try:
                yield from _join_partition(partition.build.rows(),
                                           partition.probe.rows(),
                                           self.budget, self.depth + 1)
            finally:
                partition.close()

    def close(self) -> None:
        """Release every partition's temp files (idempotent)."""
        for partition in self.partitions:
            partition.close()


def _join_partition(build_records, probe_records, budget: int,
                    depth: int) -> Iterator[Tuple[object, list]]:
    """Join one partition's spooled build and probe rows.

    Loads the build side into buckets under the byte budget; if it
    overflows *and* holds more than one distinct key *and* the
    recursion cap is not reached, the partition is split again with a
    fresh salt (both sides re-spooled) — otherwise it finishes in
    memory over budget, which is the termination guarantee for
    all-equal-key (unsplittable) partitions.
    """
    buckets: Dict[tuple, list] = {}
    mem = 0
    child: Optional[SpilledHashBuild] = None
    for key, row in build_records:
        if child is not None:
            child.add_build(key, row)
            continue
        buckets.setdefault(key, []).append(row)
        mem += estimate_row_bytes(row[0], row[1]) + BUCKET_ENTRY_BYTES
        if (mem > budget and len(buckets) > 1 and depth < MAX_RECURSION):
            child = SpilledHashBuild(budget, salt=depth, depth=depth,
                                     keep_resident=False)
            child.take_buckets(buckets)
            buckets = {}
            SPILL_STATS.repartitions += 1
    if child is None:
        empty: list = []
        for key, row in probe_records:
            yield row, buckets.get(key, empty)
        return
    try:
        for key, row in probe_records:
            child.spool_probe(key, row)
        yield from child.results()
    finally:
        child.close()


class SortRuns:
    """Spooled sorted runs for one external merge sort.

    Each run is a :class:`SpillFile` of keyless labeled rows
    (:meth:`SpillFile.write_labeled`) in sorted order; the sort
    operator k-way merges ``runs`` with a heap, so the merge fan-in is
    unbounded — every run is merged in a single pass regardless of how
    many the input produced.  Constructing the object marks the sort
    as spilled (``sort_spills``); each spooled run bumps
    ``sort_runs``.
    """

    __slots__ = ("runs",)

    def __init__(self):
        self.runs: List[SpillFile] = []
        SPILL_STATS.sort_spills += 1

    def spool(self, rows_in_order) -> None:
        """Write one fully-sorted chunk of execution rows as a run."""
        spool = SpillFile()
        for row in rows_in_order:
            spool.write_labeled(row)
        self.runs.append(spool)
        SPILL_STATS.sort_runs += 1

    def close(self) -> None:
        """Release every run's temp file (idempotent); the merge phase
        calls this in a ``finally`` so a comparison TypeError mid-merge
        cannot leak the remaining run descriptors."""
        for run in self.runs:
            run.close()


class GroupSpill:
    """Grace partitioner for overflowing hash-aggregation (and
    DISTINCT) group state.

    Rows whose group key is not already memory-resident are
    hash-routed by ``(salt, key)`` into ``fanout`` spools; each
    partition is later re-aggregated independently, and a partition
    that *still* overflows is split again with a fresh salt — the same
    fanout/salt/recursion scheme as :class:`SpilledHashBuild`, with
    the same termination guarantee (a partition holding one distinct
    key never creates a second group, so it never re-spills).  The
    top-level overflow counts as ``agg_spills``; recursive splits as
    ``repartitions``; a spool counts toward ``agg_partitions`` when it
    first receives a row.
    """

    __slots__ = ("salt", "spools")

    def __init__(self, *, salt: int = 0, depth: int = 0,
                 fanout: int = SPILL_FANOUT):
        self.salt = salt
        self.spools: List[SpillFile] = [SpillFile() for _ in range(fanout)]
        if depth == 0:
            SPILL_STATS.agg_spills += 1
        else:
            SPILL_STATS.repartitions += 1

    def add(self, key: tuple, row) -> None:
        spool = self.spools[hash((self.salt, key)) % len(self.spools)]
        if spool.count == 0:
            SPILL_STATS.agg_partitions += 1
        spool.write_row(key, row)

    def partitions(self) -> Iterator[Iterator[Tuple[tuple, tuple]]]:
        """Yield one ``(key, row)`` iterator per non-empty partition;
        empty spools are closed without counting."""
        for spool in self.spools:
            if spool.count:
                yield spool.rows()
            else:
                spool.close()

    def close(self) -> None:
        """Release every spool's temp file (idempotent); consumers call
        this in a ``finally`` so a mid-aggregation error cannot leak
        the unread partitions' descriptors."""
        for spool in self.spools:
            spool.close()


def estimate_spill_plan(build_bytes: float, work_mem: int,
                        fanout: int = SPILL_FANOUT
                        ) -> Tuple[int, float, int]:
    """Planning-time estimate:
    ``(leaf_partitions, bytes_per_partition, levels)``.

    Zero partitions means the build is expected to fit.  Partition
    counts grow by whole levels of ``fanout`` (the runtime splits a
    level at a time), so the estimated per-partition memory — what
    EXPLAIN reports as the operator's peak — is ``build_bytes /
    fanout**levels``, the first level count that fits the budget.
    ``levels`` is how many times each spilled row is expected to be
    written and re-read, which is what the optimizer charges.

    Past :data:`MAX_RECURSION` levels (a build estimated beyond
    ``work_mem × fanout**MAX_RECURSION``) the estimate stops splitting,
    mirroring the runtime's recursion cap: the returned per-partition
    bytes then honestly exceed the budget, and EXPLAIN shows the
    over-budget peak the capped execution would actually reach.
    """
    if not work_mem or build_bytes <= work_mem:
        return 0, build_bytes, 0
    partitions = 1
    levels = 0
    while build_bytes / partitions > work_mem and levels < MAX_RECURSION:
        partitions *= fanout
        levels += 1
    return partitions, build_bytes / partitions, levels
