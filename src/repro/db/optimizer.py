"""The rule-based optimizer: the middle of the three planner layers.

Takes a :class:`~repro.db.logical.LogicalQuery` and annotates it with
execution strategy, applying four rule families in order:

1. **Constant folding** — literal-only subexpressions of WHERE and join
   conditions are evaluated at plan time (``1 = 1`` disappears from
   conjunct lists, ``2 + 3`` becomes ``5``).
2. **Predicate pushdown** — each WHERE conjunct is classified by the
   FROM entries it references: single-entry conjuncts are pushed into
   that entry's scan, multi-entry conjuncts become extra join
   conditions on the latest entry they touch, and everything else
   (subqueries, outer references) stays as a residual filter.  A
   conjunct is **never** pushed below a LEFT JOIN's nullable side, and
   never through a derived (view/subquery) boundary — predicates on a
   declassifying view are evaluated above its label-stripping
   :class:`~repro.db.physical.ViewPlan` node, so they observe stripped
   labels only.
3. **Access-path selection** — pushed equality conjuncts of the form
   ``col = constant-expr`` are matched against the table's indexes; the
   best covering index (full key for hash indexes, any key prefix for
   ordered indexes) turns the scan into an index scan with the matched
   conjuncts consumed by the key and the rest kept as a residual
   predicate.
4. **Join-strategy selection** — equi-join conditions (``right.col =
   expr(left)``) drive an index-nested-loop join when the inner table
   has a usable index, otherwise a hash join; joins with no equi-pairs
   fall back to a nested-loop join.

The annotations are plain data (``AccessPath``/``JoinChoice``); the
lowering to physical operators lives in :mod:`repro.db.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import CatalogError, DatabaseError
from . import expressions as ex
from .logical import LogicalQuery, SourceEntry, collect_columns, \
    relayout, split_conjuncts
from .storage import Table

# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_FOLD_SCOPE = ex.Scope()

#: Node types that are safe to evaluate at plan time once every child is
#: a literal: deterministic, context-free, and side-effect free.
_FOLDABLE = (ex.Neg, ex.Not, ex.BinOp, ex.Compare, ex.IsNull, ex.Between,
             ex.Like)


def _eval_const(node: ex.Expr):
    return ex.ExprCompiler(_FOLD_SCOPE).compile(node)([], None)


def _literal(node: ex.Expr) -> bool:
    return isinstance(node, ex.Literal)


def fold_constants(node: ex.Expr) -> ex.Expr:
    """Bottom-up constant folding with TRUE/FALSE simplification.

    ``None`` literals (SQL UNKNOWN) are preserved — dropping them from
    AND/OR would change three-valued results that projections can
    observe.  Expressions that raise when evaluated (e.g. ``1/0``) are
    left unfolded so the error surfaces at execution time, as before.
    """
    if isinstance(node, (ex.Literal, ex.Param, ex.ColumnRef, ex.Star,
                         ex.SlotRef, ex.AggSlotRef, ex.Exists, ex.InSelect,
                         ex.ScalarSelect, ex.Aggregate)):
        return node
    if isinstance(node, ex.And):
        items = []
        for item in node.items:
            folded = fold_constants(item)
            if _literal(folded) and folded.value is True:
                continue
            if _literal(folded) and folded.value is False:
                return ex.Literal(False)
            items.append(folded)
        if not items:
            return ex.Literal(True)
        return items[0] if len(items) == 1 else ex.And(items)
    if isinstance(node, ex.Or):
        items = []
        for item in node.items:
            folded = fold_constants(item)
            if _literal(folded) and folded.value is False:
                continue
            if _literal(folded) and folded.value is True:
                return ex.Literal(True)
            items.append(folded)
        if not items:
            return ex.Literal(False)
        return items[0] if len(items) == 1 else ex.Or(items)
    if isinstance(node, ex.Neg):
        rebuilt = ex.Neg(fold_constants(node.operand))
    elif isinstance(node, ex.Not):
        rebuilt = ex.Not(fold_constants(node.operand))
    elif isinstance(node, ex.BinOp):
        rebuilt = ex.BinOp(node.op, fold_constants(node.left),
                           fold_constants(node.right))
    elif isinstance(node, ex.Compare):
        rebuilt = ex.Compare(node.op, fold_constants(node.left),
                             fold_constants(node.right))
    elif isinstance(node, ex.IsNull):
        rebuilt = ex.IsNull(fold_constants(node.operand), node.negated)
    elif isinstance(node, ex.Between):
        rebuilt = ex.Between(fold_constants(node.operand),
                             fold_constants(node.low),
                             fold_constants(node.high), node.negated)
    elif isinstance(node, ex.Like):
        rebuilt = ex.Like(fold_constants(node.operand),
                          fold_constants(node.pattern), node.negated)
    elif isinstance(node, ex.InList):
        return ex.InList(fold_constants(node.operand),
                         [fold_constants(i) for i in node.items],
                         node.negated)
    elif isinstance(node, ex.FuncCall):
        return ex.FuncCall(node.name,
                           [fold_constants(a) for a in node.args])
    elif isinstance(node, ex.Case):
        return ex.Case([(fold_constants(c), fold_constants(v))
                        for c, v in node.whens],
                       fold_constants(node.default)
                       if node.default is not None else None)
    else:
        return node
    if isinstance(rebuilt, _FOLDABLE) and _all_literal_children(rebuilt):
        try:
            return ex.Literal(_eval_const(rebuilt))
        except Exception:
            return rebuilt
    return rebuilt


def _all_literal_children(node: ex.Expr) -> bool:
    for attr in node.__slots__:
        child = getattr(node, attr)
        if isinstance(child, ex.Expr) and not _literal(child):
            return False
    return True


# ---------------------------------------------------------------------------
# access paths and join strategies (optimizer output)
# ---------------------------------------------------------------------------

@dataclass
class FullScanAccess:
    """Heap scan with the pushed conjuncts as the scan predicate."""

    conjuncts: List[ex.Expr]


@dataclass
class IndexEqAccess:
    """Index probe on ``key_columns``; the rest filters the result."""

    index: object
    key_columns: Tuple[str, ...]
    key_exprs: List[ex.Expr]
    residual: List[ex.Expr]


@dataclass
class IndexJoinChoice:
    """Inner side probed through a base-table index per left row."""

    index: object
    key_columns: Tuple[str, ...]
    key_exprs: List[ex.Expr]
    residual: List[ex.Expr]                  # on the combined row


@dataclass
class HashJoinChoice:
    """Equi-join: build on right columns, probe with left expressions."""

    left_exprs: List[ex.Expr]
    right_columns: List[str]
    residual: List[ex.Expr]


@dataclass
class NestedJoinChoice:
    residual: List[ex.Expr]


# ---------------------------------------------------------------------------
# shared matching helpers (also used by the engine's DML planner)
# ---------------------------------------------------------------------------

def constant_equality(conjunct, alias, local_scope):
    """Match ``col = constant-expr`` where the expr has no local
    column references.  Returns (column_name, value_expr) or (None,
    None)."""
    if not isinstance(conjunct, ex.Compare) or conjunct.op != "=":
        return None, None
    for col_side, val_side in ((conjunct.left, conjunct.right),
                               (conjunct.right, conjunct.left)):
        if not isinstance(col_side, ex.ColumnRef):
            continue
        if col_side.name == "_label":
            continue
        if col_side.table is not None and col_side.table != alias:
            continue
        try:
            local_scope.resolve(col_side.name, col_side.table)
        except CatalogError:
            continue
        refs: List[ex.ColumnRef] = []
        opaque = [False]
        collect_columns(val_side, refs, opaque)
        if opaque[0]:
            continue
        local = False
        for ref in refs:
            try:
                depth, _ = local_scope.resolve_depth(ref.name, ref.table)
            except CatalogError:
                local = True   # unresolvable: play safe, don't push
                break
            if depth == 0:
                local = True
                break
        if not local:
            return col_side.name, val_side
    return None, None


def best_index(table: Table, available: set):
    """Pick the best index for equality predicates on ``available``.

    Returns ``(index, n_key_columns)``.  A hash index needs every
    column covered; an ordered index can be probed on any covered
    *prefix* of its columns (B-tree-style).
    """
    from .indexes import OrderedIndex
    best = None
    best_len = 0
    for index in table.indexes.values():
        cols = index.columns
        if set(cols) <= available and len(cols) > best_len:
            best = index
            best_len = len(cols)
    if best is not None:
        return best, best_len
    for index in table.indexes.values():
        if not isinstance(index, OrderedIndex):
            continue
        n = 0
        for col in index.columns:
            if col in available:
                n += 1
            else:
                break
        if n > best_len:
            best = index
            best_len = n
    return best, best_len


def _covered_by(conjunct, covered_cols, alias, local_scope, eq_cols) -> bool:
    col, value = constant_equality(conjunct, alias, local_scope)
    return (col is not None and col in covered_cols
            and eq_cols.get(col) is value)


def _equi_pair(conjunct, entry: SourceEntry, left_aliases: set,
               scope: ex.Scope):
    """Match ``right.col = expr(left)`` (either side order)."""
    if not isinstance(conjunct, ex.Compare) or conjunct.op != "=":
        return None
    for col_side, other in ((conjunct.left, conjunct.right),
                            (conjunct.right, conjunct.left)):
        if not isinstance(col_side, ex.ColumnRef):
            continue
        if col_side.name == "_label":
            continue
        # The column must belong to the right entry.
        try:
            depth, index = scope.resolve_depth(col_side.name,
                                               col_side.table)
        except CatalogError:
            continue
        if depth != 0 or scope.entries[index][0] != entry.alias:
            continue
        # The other side must reference only left-side aliases (or
        # outer scopes / params / literals).
        refs: List[ex.ColumnRef] = []
        opaque = [False]
        collect_columns(other, refs, opaque)
        if opaque[0]:
            continue
        ok = True
        for ref in refs:
            depth_r, index_r = scope.resolve_depth(ref.name, ref.table)
            if depth_r == 0 and scope.entries[index_r][0] not in \
                    left_aliases:
                ok = False
                break
        if ok:
            return (col_side.name, other)
    return None


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------

class Optimizer:
    """Annotates logical queries with access paths and join strategies."""

    def __init__(self, catalog):
        self.catalog = catalog

    def optimize(self, query: LogicalQuery) -> LogicalQuery:
        if query.optimized:
            return query
        query.optimized = True
        if not query.entries:
            query.residual_where = [fold_constants(c)
                                    for c in query.where_conjuncts]
            return query
        self._reorder_entries(query)
        join_extra = self._classify_where(query)
        for i, entry in enumerate(query.entries):
            if entry.table is not None:
                entry.access = self._choose_access(entry, query.scope)
            if i > 0:
                self._choose_join(query, i, join_extra[i])
        return query

    # -- rule 2a: join reordering ------------------------------------------
    def _reorder_entries(self, query: LogicalQuery) -> None:
        """Lead an all-inner join with its most selective entry.

        For a chain of inner joins, ON conditions and WHERE conjuncts
        are interchangeable, so both pools merge and the entry that can
        be driven by an *index* on a local equality predicate becomes
        the leading (outermost) entry.  This turns "scan the big fact
        table, probe the filtered dimension" plans into "index-scan the
        filtered entry, index-probe the fact table".  Queries with LEFT
        JOINs keep their written order (reordering would change
        NULL-extension semantics), and an unqualified ``*`` pins the
        order too, because its output columns follow entry order.
        """
        entries = query.entries
        if len(entries) < 2 or any(e.join_kind != "inner"
                                   for e in entries[1:]):
            return
        if any(isinstance(item.expr, ex.Star) and item.expr.table is None
               for item in query.select.items):
            return
        # Merge ON conditions into the WHERE pool; classification will
        # redistribute every conjunct against the final order.
        pool = list(query.where_conjuncts)
        for entry in entries[1:]:
            pool.extend(split_conjuncts(entry.join_on))
            entry.join_on = None
        query.where_conjuncts = pool

        entry_index = {e.alias: i for i, e in enumerate(entries)}
        local_conjs: List[List[ex.Expr]] = [[] for _ in entries]
        for conjunct in pool:
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            collect_columns(conjunct, refs, opaque)
            if opaque[0]:
                continue
            touched = set()
            outer_ref = False
            for ref in refs:
                depth, index = query.scope.resolve_depth(ref.name,
                                                         ref.table)
                if depth > 0:
                    outer_ref = True
                    break
                touched.add(entry_index[query.scope.entries[index][0]])
            if not outer_ref and len(touched) == 1:
                local_conjs[touched.pop()].append(conjunct)

        def selectivity(i: int) -> int:
            entry = entries[i]
            if not local_conjs[i]:
                return 0
            if entry.table is None:
                return 1
            local_scope = ex.Scope(outer=query.scope.outer)
            local_scope.add_table(entry.alias, entry.columns)
            eq_columns = set()
            for conjunct in local_conjs[i]:
                col, _value = constant_equality(conjunct, entry.alias,
                                                local_scope)
                if col is not None:
                    eq_columns.add(col)
            if eq_columns and best_index(entry.table,
                                         eq_columns)[0] is not None:
                return 2
            return 1

        scores = [selectivity(i) for i in range(len(entries))]
        leader = max(range(len(entries)), key=lambda i: scores[i])
        if leader != 0 and scores[leader] > scores[0]:
            entries.insert(0, entries.pop(leader))
            entries[0].join_kind = "inner"
            relayout(query)

    # -- rule 2: predicate pushdown --------------------------------------
    def _classify_where(self, query: LogicalQuery) -> List[List[ex.Expr]]:
        """Distribute WHERE conjuncts; returns per-entry join extras."""
        entries = query.entries
        scope = query.scope
        entry_index = {e.alias: i for i, e in enumerate(entries)}
        join_extra: List[List[ex.Expr]] = [[] for _ in entries]
        for conjunct in query.where_conjuncts:
            conjunct = fold_constants(conjunct)
            if _literal(conjunct) and conjunct.value is True:
                continue
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            collect_columns(conjunct, refs, opaque)
            touched = set()
            local_only = True
            for ref in refs:
                depth, index = scope.resolve_depth(ref.name, ref.table)
                if depth > 0:
                    local_only = False
                    continue
                alias = scope.entries[index][0]
                touched.add(entry_index[alias])
            if opaque[0] or not local_only:
                query.residual_where.append(conjunct)
            elif len(touched) == 1:
                target = touched.pop()
                # Cannot push below a LEFT JOIN's nullable side.
                if entries[target].join_kind == "left":
                    query.residual_where.append(conjunct)
                else:
                    entries[target].pushed.append(conjunct)
            elif touched:
                join_extra[max(touched)].append(conjunct)
            else:
                query.residual_where.append(conjunct)
        return join_extra

    # -- rule 3: access-path selection ------------------------------------
    def _choose_access(self, entry: SourceEntry, scope_full: ex.Scope):
        local_scope = ex.Scope(outer=scope_full.outer)
        local_scope.add_table(entry.alias, entry.columns)
        eq_cols = {}
        for conjunct in entry.pushed:
            col, value = constant_equality(conjunct, entry.alias,
                                           local_scope)
            if col is not None and col not in eq_cols:
                eq_cols[col] = value
        index = None
        n_keys = 0
        if eq_cols:
            index, n_keys = best_index(entry.table, set(eq_cols))
        if index is None:
            return FullScanAccess(list(entry.pushed))
        key_columns = tuple(index.columns[:n_keys])
        covered = set(key_columns)
        residual = [c for c in entry.pushed
                    if not _covered_by(c, covered, entry.alias,
                                       local_scope, eq_cols)]
        return IndexEqAccess(index=index, key_columns=key_columns,
                             key_exprs=[eq_cols[c] for c in key_columns],
                             residual=residual)

    # -- rule 4: join-strategy selection ----------------------------------
    def _choose_join(self, query: LogicalQuery, i: int,
                     extra: List[ex.Expr]) -> None:
        entry = query.entries[i]
        scope = query.scope
        kind = entry.join_kind
        left_aliases = {e.alias for e in query.entries[:i]}
        on_conjuncts = [fold_constants(c)
                        for c in split_conjuncts(entry.join_on)]
        if kind == "inner":
            on_conjuncts = on_conjuncts + extra
        elif extra:
            # Multi-table WHERE conjuncts touching a left join's right
            # side must filter *after* the join.
            entry.post_filters = list(extra)

        eq_pairs: List[Tuple[str, ex.Expr]] = []   # (right col, left expr)
        residual: List[ex.Expr] = []
        for conjunct in on_conjuncts:
            pair = _equi_pair(conjunct, entry, left_aliases, scope)
            if pair is not None:
                eq_pairs.append(pair)
            else:
                residual.append(conjunct)

        if entry.table is not None and eq_pairs and kind in ("inner", "left"):
            index, n_keys = best_index(entry.table, {c for c, _ in eq_pairs})
            if index is not None:
                key_columns = tuple(index.columns[:n_keys])
                # One pair per key column drives the probe; every other
                # pair — a non-key column, or a *second* equality on the
                # same column (a.id = b.id AND b.id = c.id funnelled
                # onto b) — must survive as a residual condition.
                by_col: dict = {}
                leftover_pairs: List[Tuple[str, ex.Expr]] = []
                for col, expr in eq_pairs:
                    if col in key_columns and col not in by_col:
                        by_col[col] = expr
                    else:
                        leftover_pairs.append((col, expr))
                leftovers = [ex.Compare("=",
                                        ex.ColumnRef(c, entry.alias),
                                        expr)
                             for c, expr in leftover_pairs]
                pushed_extra = entry.pushed if kind == "inner" else []
                if kind == "left" and entry.pushed:
                    raise DatabaseError(
                        "internal: predicates pushed below a left join")
                entry.join = IndexJoinChoice(
                    index=index, key_columns=key_columns,
                    key_exprs=[by_col[c] for c in key_columns],
                    residual=residual + leftovers + pushed_extra)
                return
        if eq_pairs:
            entry.join = HashJoinChoice(
                left_exprs=[e for _, e in eq_pairs],
                right_columns=[c for c, _ in eq_pairs],
                residual=residual)
            return
        entry.join = NestedJoinChoice(residual=residual)
