"""The cost-based optimizer: the middle of the three planner layers.

Takes a :class:`~repro.db.logical.LogicalQuery` and annotates it with
execution strategy, applying these rule families in order:

1. **Constant folding** — literal-only subexpressions of WHERE and join
   conditions are evaluated at plan time (``1 = 1`` disappears from
   conjunct lists, ``2 + 3`` becomes ``5``).
2. **Join ordering** — for all-inner joins, ON and WHERE conjuncts merge
   into one pool and the entries are greedily reordered by *estimated
   filtered cardinality*: the smallest entry leads, and each next pick
   prefers an entry equi-joinable to what is already placed (avoiding
   cross products), smallest first.  Cardinalities come from the
   :mod:`repro.db.stats` subsystem when the table was ``ANALYZE``\\ d and
   from default selectivities over a cheap heap count otherwise.
   Queries with LEFT JOINs keep their written order (reordering would
   change NULL-extension semantics), and an unqualified ``*`` pins the
   order too, because its output columns follow entry order.
3. **Predicate pushdown** — each WHERE conjunct is classified by the
   FROM entries it references: single-entry conjuncts are pushed into
   that entry's scan, multi-entry conjuncts become extra join
   conditions on the latest entry they touch, and everything else
   (subqueries, outer references) stays as a residual filter.  A
   conjunct is **never** pushed below a LEFT JOIN's nullable side, and
   never through a derived (view/subquery) boundary — predicates on a
   declassifying view are evaluated above its label-stripping
   :class:`~repro.db.physical.ViewPlan` node, so they observe stripped
   labels only.
4. **Access-path selection** — for each base-table entry the optimizer
   enumerates a full heap scan, the best equality-index probe
   (``col = constant`` conjuncts against hash or ordered indexes), and
   ordered-index **range scans** (an equality prefix plus ``<``, ``<=``,
   ``>``, ``>=`` or ``BETWEEN`` bounds on the next index column, served
   by :meth:`~repro.db.indexes.OrderedIndex.scan_range`), then picks
   the cheapest by estimated cost.
5. **Join-strategy selection** — equi-join conditions (``right.col =
   expr(left)``) can be executed as an index-nested-loop join or a hash
   join; the optimizer costs both (probe count × fan-out vs build +
   probe) and picks the cheaper.  Joins with no equi-pairs fall back to
   a nested-loop join.

Every annotation carries estimated rows and cost (``est_rows`` /
``est_cost``), which the planner copies onto the physical operators so
``EXPLAIN`` can show them.  The annotations are plain data
(``AccessPath``/``JoinChoice``); the lowering to physical operators
lives in :mod:`repro.db.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CatalogError, DatabaseError
from . import expressions as ex
from .logical import LogicalDML, LogicalQuery, SourceEntry, \
    collect_columns, collect_slots, relayout, split_conjuncts
from .spill import (AGG_STATE_BYTES, BUCKET_ENTRY_BYTES,
                    estimate_spill_plan, estimated_tuple_bytes)
from .stats import (
    DEFAULT_DERIVED_ROWS,
    DEFAULT_EQ_SEL,
    DEFAULT_LIKE_SEL,
    DEFAULT_RANGE_SEL,
    DEFAULT_SEL,
)
from .storage import Table

# ---------------------------------------------------------------------------
# cost model constants
# ---------------------------------------------------------------------------

#: Cost of examining one heap row.
COST_ROW = 1.0
#: Fixed cost of one index lookup (bisection / hash probe).
COST_PROBE = 1.2
#: Cost of inserting one row into a hash-join build table.
COST_BUILD_ROW = 1.5
#: Cost of spilling one row through one grace-partition level: a write
#: to the spool plus the read back (both build and probe rows pay it).
#: Charging it makes a budget-breaking hash join visibly expensive, so
#: the optimizer prefers an index-nested-loop (no build memory) — or a
#: smaller build side — when ``work_mem`` is tight.
COST_SPILL_ROW = 0.4
#: Tables are never costed below this many rows: a plan cached while a
#: table is still empty must not lock in a full scan that a few inserts
#: later would be wrong (inserts do not bump the plan-cache epoch).
ROW_FLOOR = 10.0


def estimate_sort_spill(input_rows: float, input_bytes: float,
                        work_mem: int) -> Tuple[int, float, float]:
    """External-merge-sort estimate: ``(runs, est_mem, extra_cost)``.

    Zero runs means the sort is expected to fit ``work_mem`` and
    ``est_mem`` is the full materialized input; otherwise the input
    spools in budget-sized sorted runs (``ceil(bytes / work_mem)``),
    the peak resident footprint is one chunk (the budget itself — the
    k-way heap merge holds one row per run), and every row is charged
    one :data:`COST_SPILL_ROW` write+read cycle: the merge fan-in is
    unbounded, so a single merge pass always suffices.
    """
    partitions, _part_bytes, _levels = estimate_spill_plan(
        input_bytes, work_mem)
    if not partitions:
        return 0, input_bytes, 0.0
    runs = max(2, -int(-input_bytes // work_mem))
    return runs, float(work_mem), COST_SPILL_ROW * input_rows


def estimate_group_spill(input_rows: float, groups: float,
                         group_width: int, n_states: int,
                         work_mem: int) -> Tuple[int, float, float]:
    """Grace-aggregation estimate: ``(partitions, est_mem,
    extra_cost)`` for hash-aggregation (or DISTINCT, ``n_states=0``)
    group state under ``work_mem``.

    Group state is costed like the runtime charges it: key bytes
    (:func:`estimated_tuple_bytes` over the grouping columns) plus one
    :data:`AGG_STATE_BYTES` accumulator per aggregate spec plus
    hash-entry overhead, times the expected group count.  Overflow
    partitions the *state* via :func:`estimate_spill_plan`; each level
    re-spools the input rows routed past the resident groups, so the
    cost charge is per input row per level.
    """
    state_bytes = groups * (estimated_tuple_bytes(group_width)
                            + AGG_STATE_BYTES * n_states
                            + BUCKET_ENTRY_BYTES)
    partitions, part_bytes, levels = estimate_spill_plan(
        state_bytes, work_mem)
    if not partitions:
        return 0, state_bytes, 0.0
    return partitions, part_bytes, COST_SPILL_ROW * levels * input_rows

# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_FOLD_SCOPE = ex.Scope()

#: Node types that are safe to evaluate at plan time once every child is
#: a literal: deterministic, context-free, and side-effect free.
_FOLDABLE = (ex.Neg, ex.Not, ex.BinOp, ex.Compare, ex.IsNull, ex.Between,
             ex.Like)


def _eval_const(node: ex.Expr):
    return ex.ExprCompiler(_FOLD_SCOPE).compile(node)([], None)


def _literal(node: ex.Expr) -> bool:
    return isinstance(node, ex.Literal)


def fold_constants(node: ex.Expr) -> ex.Expr:
    """Bottom-up constant folding with TRUE/FALSE simplification.

    ``None`` literals (SQL UNKNOWN) are preserved — dropping them from
    AND/OR would change three-valued results that projections can
    observe.  Expressions that raise when evaluated (e.g. ``1/0``) are
    left unfolded so the error surfaces at execution time, as before.
    """
    if isinstance(node, (ex.Literal, ex.Param, ex.ColumnRef, ex.Star,
                         ex.SlotRef, ex.AggSlotRef, ex.Exists, ex.InSelect,
                         ex.ScalarSelect, ex.Aggregate)):
        return node
    if isinstance(node, ex.And):
        items = []
        for item in node.items:
            folded = fold_constants(item)
            if _literal(folded) and folded.value is True:
                continue
            if _literal(folded) and folded.value is False:
                return ex.Literal(False)
            items.append(folded)
        if not items:
            return ex.Literal(True)
        return items[0] if len(items) == 1 else ex.And(items)
    if isinstance(node, ex.Or):
        items = []
        for item in node.items:
            folded = fold_constants(item)
            if _literal(folded) and folded.value is False:
                continue
            if _literal(folded) and folded.value is True:
                return ex.Literal(True)
            items.append(folded)
        if not items:
            return ex.Literal(False)
        return items[0] if len(items) == 1 else ex.Or(items)
    if isinstance(node, ex.Neg):
        rebuilt = ex.Neg(fold_constants(node.operand))
    elif isinstance(node, ex.Not):
        rebuilt = ex.Not(fold_constants(node.operand))
    elif isinstance(node, ex.BinOp):
        rebuilt = ex.BinOp(node.op, fold_constants(node.left),
                           fold_constants(node.right))
    elif isinstance(node, ex.Compare):
        rebuilt = ex.Compare(node.op, fold_constants(node.left),
                             fold_constants(node.right))
    elif isinstance(node, ex.IsNull):
        rebuilt = ex.IsNull(fold_constants(node.operand), node.negated)
    elif isinstance(node, ex.Between):
        rebuilt = ex.Between(fold_constants(node.operand),
                             fold_constants(node.low),
                             fold_constants(node.high), node.negated)
    elif isinstance(node, ex.Like):
        rebuilt = ex.Like(fold_constants(node.operand),
                          fold_constants(node.pattern), node.negated)
    elif isinstance(node, ex.InList):
        return ex.InList(fold_constants(node.operand),
                         [fold_constants(i) for i in node.items],
                         node.negated)
    elif isinstance(node, ex.FuncCall):
        return ex.FuncCall(node.name,
                           [fold_constants(a) for a in node.args])
    elif isinstance(node, ex.Case):
        return ex.Case([(fold_constants(c), fold_constants(v))
                        for c, v in node.whens],
                       fold_constants(node.default)
                       if node.default is not None else None)
    else:
        return node
    if isinstance(rebuilt, _FOLDABLE) and _all_literal_children(rebuilt):
        try:
            return ex.Literal(_eval_const(rebuilt))
        except Exception:
            return rebuilt
    return rebuilt


def _all_literal_children(node: ex.Expr) -> bool:
    for attr in node.__slots__:
        child = getattr(node, attr)
        if isinstance(child, ex.Expr) and not _literal(child):
            return False
    return True


# ---------------------------------------------------------------------------
# access paths and join strategies (optimizer output)
# ---------------------------------------------------------------------------

@dataclass
class FullScanAccess:
    """Heap scan with the pushed conjuncts as the scan predicate."""

    conjuncts: List[ex.Expr]


@dataclass
class IndexEqAccess:
    """Index probe on ``key_columns``; the rest filters the result."""

    index: object
    key_columns: Tuple[str, ...]
    key_exprs: List[ex.Expr]
    residual: List[ex.Expr]


@dataclass
class IndexRangeAccess:
    """Ordered-index range scan: an equality prefix on ``eq_columns``
    plus bounds on ``range_column`` (the next index column), served by
    :meth:`~repro.db.indexes.OrderedIndex.scan_range`.  Either bound may
    be absent; the rest of the pushed conjuncts filter the result."""

    index: object
    eq_columns: Tuple[str, ...]
    eq_exprs: List[ex.Expr]
    range_column: str
    low_expr: Optional[ex.Expr]
    high_expr: Optional[ex.Expr]
    include_low: bool
    include_high: bool
    residual: List[ex.Expr]


@dataclass
class IndexJoinChoice:
    """Inner side probed through a base-table index per left row."""

    index: object
    key_columns: Tuple[str, ...]
    key_exprs: List[ex.Expr]
    residual: List[ex.Expr]                  # on the combined row
    est_rows: Optional[float] = None         # cumulative join output
    est_cost: Optional[float] = None         # cumulative cost


@dataclass
class HashJoinChoice:
    """Equi-join: build on right columns, probe with left expressions.

    ``est_mem`` is the expected peak resident build size in bytes (the
    per-partition share when the build is expected to spill) and
    ``est_spill_partitions`` the expected grace leaf-partition count
    (0: fits ``work_mem``); both are planner annotations for EXPLAIN.
    """

    left_exprs: List[ex.Expr]
    right_columns: List[str]
    residual: List[ex.Expr]
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None
    est_mem: Optional[float] = None
    est_spill_partitions: int = 0


@dataclass
class NestedJoinChoice:
    residual: List[ex.Expr]
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None
    est_mem: Optional[float] = None              # materialized inner side


# ---------------------------------------------------------------------------
# shared matching helpers (also used by the engine's DML planner)
# ---------------------------------------------------------------------------

_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _const_side(value_expr: ex.Expr, local_scope) -> bool:
    """True when the expression references no local columns and no
    subqueries, so it is constant per execution of this scan."""
    refs: List[ex.ColumnRef] = []
    opaque = [False]
    collect_columns(value_expr, refs, opaque)
    if opaque[0]:
        return False
    for ref in refs:
        try:
            depth, _ = local_scope.resolve_depth(ref.name, ref.table)
        except CatalogError:
            return False           # unresolvable: play safe, don't push
        if depth == 0:
            return False
    return True


def constant_comparison(conjunct, alias, local_scope):
    """Match ``col <op> constant-expr`` for ``=``, ``<``, ``<=``, ``>``,
    ``>=`` with the column on either side.  Returns ``(column, op,
    value_expr)`` with the operator normalized to column-on-the-left,
    or ``(None, None, None)``."""
    if not isinstance(conjunct, ex.Compare) or \
            conjunct.op not in ("=", "<", "<=", ">", ">="):
        return None, None, None
    sides = ((conjunct.left, conjunct.right, conjunct.op),
             (conjunct.right, conjunct.left,
              _FLIP_OP.get(conjunct.op, conjunct.op)))
    for col_side, val_side, op in sides:
        if not isinstance(col_side, ex.ColumnRef):
            continue
        if col_side.name == "_label":
            continue
        if col_side.table is not None and col_side.table != alias:
            continue
        try:
            local_scope.resolve(col_side.name, col_side.table)
        except CatalogError:
            continue
        if _const_side(val_side, local_scope):
            return col_side.name, op, val_side
    return None, None, None


def constant_equality(conjunct, alias, local_scope):
    """Match ``col = constant-expr``; returns (column_name, value_expr)
    or (None, None)."""
    col, op, value = constant_comparison(conjunct, alias, local_scope)
    if op == "=":
        return col, value
    return None, None


def _between_bounds(conjunct, alias, local_scope):
    """Match ``col BETWEEN const AND const`` (not negated); returns
    (column, low_expr, high_expr) or None."""
    if not isinstance(conjunct, ex.Between) or conjunct.negated:
        return None
    operand = conjunct.operand
    if not isinstance(operand, ex.ColumnRef) or operand.name == "_label":
        return None
    if operand.table is not None and operand.table != alias:
        return None
    try:
        local_scope.resolve(operand.name, operand.table)
    except CatalogError:
        return None
    if _const_side(conjunct.low, local_scope) and \
            _const_side(conjunct.high, local_scope):
        return operand.name, conjunct.low, conjunct.high
    return None


class _PredBounds:
    """Pushed conjuncts of one entry, classified per column.

    ``eq``/``lows``/``highs`` map a column to the first conjunct that
    constrains it that way: ``eq[col] = (conjunct, expr)``, bound slots
    are ``(conjunct, expr, inclusive)``.  A BETWEEN claims both bound
    slots atomically or none."""

    def __init__(self, conjuncts: List[ex.Expr], alias: str, local_scope):
        self.eq: Dict[str, Tuple] = {}
        self.lows: Dict[str, Tuple] = {}
        self.highs: Dict[str, Tuple] = {}
        for conjunct in conjuncts:
            col, op, value = constant_comparison(conjunct, alias,
                                                 local_scope)
            if col is not None:
                if op == "=":
                    self.eq.setdefault(col, (conjunct, value))
                elif op in (">", ">=") and col not in self.lows:
                    self.lows[col] = (conjunct, value, op == ">=")
                elif op in ("<", "<=") and col not in self.highs:
                    self.highs[col] = (conjunct, value, op == "<=")
                continue
            between = _between_bounds(conjunct, alias, local_scope)
            if between is not None:
                col, low, high = between
                if col not in self.lows and col not in self.highs:
                    self.lows[col] = (conjunct, low, True)
                    self.highs[col] = (conjunct, high, True)


def best_index(table: Table, available: set):
    """Pick the best index for equality predicates on ``available``.

    Returns ``(index, n_key_columns)``.  A hash index needs every
    column covered; an ordered index can be probed on any covered
    *prefix* of its columns (B-tree-style).
    """
    from .indexes import OrderedIndex
    best = None
    best_len = 0
    for index in table.indexes.values():
        cols = index.columns
        if set(cols) <= available and len(cols) > best_len:
            best = index
            best_len = len(cols)
    if best is not None:
        return best, best_len
    for index in table.indexes.values():
        if not isinstance(index, OrderedIndex):
            continue
        n = 0
        for col in index.columns:
            if col in available:
                n += 1
            else:
                break
        if n > best_len:
            best = index
            best_len = n
    return best, best_len


def _covered_by(conjunct, covered_cols, alias, local_scope, eq_cols) -> bool:
    col, value = constant_equality(conjunct, alias, local_scope)
    return (col is not None and col in covered_cols
            and eq_cols.get(col) is value)


def _equi_pair(conjunct, entry: SourceEntry, left_aliases: set,
               scope: ex.Scope):
    """Match ``right.col = expr(left)`` (either side order)."""
    if not isinstance(conjunct, ex.Compare) or conjunct.op != "=":
        return None
    for col_side, other in ((conjunct.left, conjunct.right),
                            (conjunct.right, conjunct.left)):
        if not isinstance(col_side, ex.ColumnRef):
            continue
        if col_side.name == "_label":
            continue
        # The column must belong to the right entry.
        try:
            depth, index = scope.resolve_depth(col_side.name,
                                               col_side.table)
        except CatalogError:
            continue
        if depth != 0 or scope.entries[index][0] != entry.alias:
            continue
        # The other side must reference only left-side aliases (or
        # outer scopes / params / literals).
        refs: List[ex.ColumnRef] = []
        opaque = [False]
        collect_columns(other, refs, opaque)
        if opaque[0]:
            continue
        ok = True
        for ref in refs:
            depth_r, index_r = scope.resolve_depth(ref.name, ref.table)
            if depth_r == 0 and scope.entries[index_r][0] not in \
                    left_aliases:
                ok = False
                break
        if ok:
            return (col_side.name, other)
    return None


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------

class Optimizer:
    """Annotates logical queries with access paths and join strategies,
    costing the alternatives from table statistics when available.

    ``naive=True`` disables every optimization: full heap scans, no
    join reordering, no predicate pushdown, nested-loop joins only,
    with every conjunct evaluated as a residual filter.  This is the
    reference executor of the differential test harness
    (``tests/test_differential.py``) — any plan the real optimizer
    picks must agree with the naive plan on rows, labels, and effects,
    because none of these choices may change *what* a statement sees
    or touches, only how fast it finds it.
    """

    def __init__(self, catalog, stats=None, naive: bool = False,
                 work_mem: int = 0):
        self.catalog = catalog
        self.stats = stats                   # StatsManager or None
        self.naive = naive
        #: Per-operator memory budget in bytes (0 = unbounded).  The
        #: optimizer only *costs* spilling with it — the executor reads
        #: the live budget from the database at run time.
        self.work_mem = work_mem

    def exec_workers(self, requested: int) -> int:
        """Worker-pool size for plans this optimizer produces.

        Naive mode pins serial execution — the reference executor of
        the differential harness must stay a single-process per-tuple
        ground truth — and platforms without ``fork`` cannot run the
        gang at all, so the planner never inserts exchange operators
        it could not honour.
        """
        if self.naive or requested < 2:
            return 0
        from .parallel import FORK_AVAILABLE
        return requested if FORK_AVAILABLE else 0

    def gather_workers(self, requested: int, row_estimate: float,
                       min_rows: int) -> int:
        """Cost gate for one exchange operator: forking a gang and
        shipping rows back costs a few milliseconds, so a scan only
        parallelizes when its candidate estimate amortizes the fan-out
        (``min_rows``, from ``REPRO_PARALLEL_MIN_ROWS``)."""
        if requested < 2 or row_estimate < min_rows:
            return 0
        return requested

    def exec_batch_size(self, requested: int) -> int:
        """Execution batch size for plans this optimizer produces.

        Naive mode pins row-at-a-time execution (batch size 0): the
        reference executor must drive one ``covers``/``visible`` check
        per tuple so the differential harness cross-checks the batched
        executor's amortizations — label-run memoization, the MVCC
        batch fast path, page-run touch accounting — against per-tuple
        ground truth, not against themselves.
        """
        return 0 if self.naive else requested

    def optimize_dml(self, query: LogicalDML) -> LogicalDML:
        """Annotate an UPDATE/DELETE target with its access path.

        Every WHERE conjunct is folded and pushed into the single
        target entry — there is no join sequence and no residual layer
        above the scan, so the access path's residual predicate is
        where non-key conjuncts (including subqueries) are evaluated.
        Access-path selection then runs the same costed enumeration as
        SELECT: equality probes, ordered-index range scans, full scan.
        """
        if query.optimized:
            return query
        query.optimized = True
        entry = query.entry
        for conjunct in query.where_conjuncts:
            folded = fold_constants(conjunct)
            if _literal(folded) and folded.value is True:
                continue
            entry.pushed.append(folded)
        entry.access = self._choose_access(entry, query.scope)
        return query

    def optimize(self, query: LogicalQuery) -> LogicalQuery:
        if query.optimized:
            return query
        query.optimized = True
        if not query.entries:
            query.residual_where = [fold_constants(c)
                                    for c in query.where_conjuncts]
            query.est_rows = 1.0
            query.est_cost = 0.0
            return query
        # Derived entries first: their estimates feed join ordering.
        for entry in query.entries:
            if entry.derived is not None:
                self.optimize(entry.derived)
        self._reorder_entries(query)
        join_extra = self._classify_where(query)
        if not self.naive:
            self._project_columns(query, join_extra)
        cum_rows = cum_cost = 0.0
        for i, entry in enumerate(query.entries):
            if entry.table is not None:
                entry.access = self._choose_access(entry, query.scope)
            else:
                self._estimate_derived(entry, query.scope)
            if i == 0:
                cum_rows, cum_cost = entry.est_rows, entry.est_cost
            else:
                self._choose_join(query, i, join_extra[i], cum_rows,
                                  cum_cost)
                cum_rows = entry.join.est_rows
                cum_cost = entry.join.est_cost
                cum_rows *= DEFAULT_SEL ** len(entry.post_filters)
        cum_rows *= DEFAULT_SEL ** len(query.residual_where)
        query.est_rows = cum_rows
        query.est_cost = cum_cost
        return query

    # -- statistics plumbing ----------------------------------------------
    def _stats_for(self, table: Table):
        if self.stats is None or table is None:
            return None
        return self.stats.get(table)

    def _base_rows(self, table: Table, stats) -> float:
        rows = stats.row_count if stats is not None else table.approx_rows
        return max(float(rows), ROW_FLOOR)

    def _column_stats(self, stats, column: str):
        if stats is None:
            return None
        return stats.columns.get(column)

    def _conjunct_selectivity(self, conjunct, alias, local_scope,
                              stats) -> float:
        """Estimated fraction of rows satisfying one pushed conjunct."""
        col, op, value = constant_comparison(conjunct, alias, local_scope)
        if col is not None:
            cs = self._column_stats(stats, col)
            if op == "=":
                return cs.eq_selectivity() if cs is not None \
                    else DEFAULT_EQ_SEL
            bound = value.value if isinstance(value, ex.Literal) else None
            if cs is not None and bound is not None:
                if op in (">", ">="):
                    return cs.range_selectivity(bound, None,
                                                include_low=(op == ">="))
                return cs.range_selectivity(None, bound,
                                            include_high=(op == "<="))
            return DEFAULT_RANGE_SEL
        between = _between_bounds(conjunct, alias, local_scope)
        if between is not None:
            col, low, high = between
            cs = self._column_stats(stats, col)
            if cs is not None and isinstance(low, ex.Literal) \
                    and isinstance(high, ex.Literal):
                return cs.range_selectivity(low.value, high.value)
            return DEFAULT_RANGE_SEL ** 2
        if isinstance(conjunct, ex.IsNull):
            cs = None
            if isinstance(conjunct.operand, ex.ColumnRef):
                cs = self._column_stats(stats, conjunct.operand.name)
            null_frac = cs.null_frac if cs is not None else 0.05
            return (1.0 - null_frac) if conjunct.negated else null_frac
        if isinstance(conjunct, ex.InList) and not conjunct.negated:
            eq = DEFAULT_EQ_SEL
            if isinstance(conjunct.operand, ex.ColumnRef):
                cs = self._column_stats(stats, conjunct.operand.name)
                if cs is not None:
                    eq = cs.eq_selectivity()
            return min(1.0, eq * len(conjunct.items))
        if isinstance(conjunct, ex.Like) and not conjunct.negated:
            return DEFAULT_LIKE_SEL
        return DEFAULT_SEL

    def _filtered_selectivity(self, conjuncts, alias, local_scope,
                              stats) -> float:
        sel = 1.0
        for conjunct in conjuncts:
            sel *= self._conjunct_selectivity(conjunct, alias, local_scope,
                                              stats)
        return sel

    def _local_scope(self, entry: SourceEntry, scope_full: ex.Scope):
        local_scope = ex.Scope(outer=scope_full.outer)
        local_scope.add_table(entry.alias, entry.columns)
        return local_scope

    def _estimate_derived(self, entry: SourceEntry,
                          scope_full: ex.Scope) -> None:
        inner_rows = entry.derived.est_rows \
            if entry.derived is not None and \
            entry.derived.est_rows is not None else DEFAULT_DERIVED_ROWS
        inner_cost = entry.derived.est_cost \
            if entry.derived is not None and \
            entry.derived.est_cost is not None else DEFAULT_DERIVED_ROWS
        local_scope = self._local_scope(entry, scope_full)
        sel = self._filtered_selectivity(entry.pushed, entry.alias,
                                         local_scope, None)
        entry.est_rows = inner_rows * sel
        entry.est_cost = inner_cost + COST_ROW * inner_rows

    # -- rule 2: join reordering -------------------------------------------
    def _reorder_entries(self, query: LogicalQuery) -> None:
        """Greedy cost-based ordering of an all-inner join sequence.

        For a chain of inner joins, ON conditions and WHERE conjuncts
        are interchangeable, so both pools merge; the entry with the
        smallest estimated filtered cardinality leads, and each later
        position prefers entries equi-joinable to the placed prefix
        (no cross products), smallest first.  This turns "scan the big
        fact table, probe the filtered dimension" plans into
        "index-scan the filtered entry, index-probe the fact table".
        Queries with LEFT JOINs keep their written order (reordering
        would change NULL-extension semantics), and an unqualified
        ``*`` pins the order too, because its output columns follow
        entry order.
        """
        entries = query.entries
        if self.naive:
            return
        if len(entries) < 2 or any(e.join_kind != "inner"
                                   for e in entries[1:]):
            return
        if any(isinstance(item.expr, ex.Star) and item.expr.table is None
               for item in query.select.items):
            return
        # Merge ON conditions into the WHERE pool; classification will
        # redistribute every conjunct against the final order.
        pool = list(query.where_conjuncts)
        for entry in entries[1:]:
            pool.extend(split_conjuncts(entry.join_on))
            entry.join_on = None
        query.where_conjuncts = pool

        entry_index = {e.alias: i for i, e in enumerate(entries)}
        local_conjs: List[List[ex.Expr]] = [[] for _ in entries]
        for conjunct in pool:
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            collect_columns(conjunct, refs, opaque)
            if opaque[0]:
                continue
            touched = set()
            outer_ref = False
            for ref in refs:
                depth, index = query.scope.resolve_depth(ref.name,
                                                         ref.table)
                if depth > 0:
                    outer_ref = True
                    break
                touched.add(entry_index[query.scope.entries[index][0]])
            if not outer_ref and len(touched) == 1:
                local_conjs[touched.pop()].append(conjunct)

        estimates: List[float] = []
        for i, entry in enumerate(entries):
            if entry.table is not None:
                stats = self._stats_for(entry.table)
                local_scope = self._local_scope(entry, query.scope)
                sel = self._filtered_selectivity(local_conjs[i],
                                                 entry.alias, local_scope,
                                                 stats)
                estimates.append(self._base_rows(entry.table, stats) * sel)
            else:
                inner = entry.derived.est_rows \
                    if entry.derived is not None and \
                    entry.derived.est_rows is not None \
                    else DEFAULT_DERIVED_ROWS
                local_scope = self._local_scope(entry, query.scope)
                sel = self._filtered_selectivity(local_conjs[i],
                                                 entry.alias, local_scope,
                                                 None)
                estimates.append(inner * sel)

        def joinable(j: int, placed_aliases: set) -> bool:
            for conjunct in pool:
                if _equi_pair(conjunct, entries[j], placed_aliases,
                              query.scope) is not None:
                    return True
            return False

        order: List[int] = []
        placed: set = set()
        remaining = list(range(len(entries)))
        while remaining:
            def rank(j: int):
                connected = not order or joinable(j, placed)
                return (0 if connected else 1, estimates[j], j)
            pick = min(remaining, key=rank)
            remaining.remove(pick)
            order.append(pick)
            placed.add(entries[pick].alias)

        if order != list(range(len(entries))):
            query.entries = [entries[j] for j in order]
            for entry in query.entries:
                entry.join_kind = "inner"
            relayout(query)

    # -- rule 3: predicate pushdown ----------------------------------------
    def _classify_where(self, query: LogicalQuery) -> List[List[ex.Expr]]:
        """Distribute WHERE conjuncts; returns per-entry join extras."""
        entries = query.entries
        scope = query.scope
        entry_index = {e.alias: i for i, e in enumerate(entries)}
        join_extra: List[List[ex.Expr]] = [[] for _ in entries]
        for conjunct in query.where_conjuncts:
            conjunct = fold_constants(conjunct)
            if _literal(conjunct) and conjunct.value is True:
                continue
            if self.naive:
                # No pushdown: every WHERE conjunct filters at the top,
                # after all joins — plain SQL WHERE semantics.
                query.residual_where.append(conjunct)
                continue
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            collect_columns(conjunct, refs, opaque)
            touched = set()
            local_only = True
            for ref in refs:
                depth, index = scope.resolve_depth(ref.name, ref.table)
                if depth > 0:
                    local_only = False
                    continue
                alias = scope.entries[index][0]
                touched.add(entry_index[alias])
            if opaque[0] or not local_only:
                query.residual_where.append(conjunct)
            elif len(touched) == 1:
                target = touched.pop()
                # Cannot push below a LEFT JOIN's nullable side.
                if entries[target].join_kind == "left":
                    query.residual_where.append(conjunct)
                else:
                    entries[target].pushed.append(conjunct)
            elif touched:
                join_extra[max(touched)].append(conjunct)
            else:
                query.residual_where.append(conjunct)
        return join_extra

    # -- rule 3b: projection pushdown --------------------------------------
    def _project_columns(self, query: LogicalQuery,
                         join_extra: List[List[ex.Expr]]) -> None:
        """Compute each base-table entry's *needed* column set.

        Walks every expression evaluated **above** the scans — output
        items, residual WHERE, join conditions (ON plus the multi-table
        WHERE conjuncts in ``join_extra``), GROUP BY, HAVING, ORDER BY,
        LIMIT/OFFSET — and resolves each column reference and ``*``-slot
        back to its source entry.  Entries whose referenced set is
        narrower than their schema get ``entry.needed`` so the scan
        materializes only those stored columns.

        Pushed scan predicates (``entry.pushed`` and access-path
        residuals) are deliberately *not* walked: they evaluate against
        stored tuple versions below materialization, so they never
        constrain which columns the scan must copy out.  The ``_label``
        pseudo-column is ignored too — labels always ride along
        per-row, because the information-flow rules are tuple-granular.

        Conservative bail-outs (every entry keeps full width): any
        subquery anywhere (its correlated interior may read arbitrary
        outer columns), and any reference the scope cannot resolve.
        """
        entries = query.entries
        scope = query.scope
        select = query.select
        exprs: List[ex.Expr] = [expr for expr, _name in query.items]
        exprs.extend(query.residual_where)
        for extra in join_extra:
            exprs.extend(extra)
        for entry in entries[1:]:
            exprs.extend(split_conjuncts(entry.join_on))
        exprs.extend(select.group_by)
        if select.having is not None:
            exprs.append(select.having)
        for order_item in select.order_by:
            expr = order_item.expr
            # Mirror the planner's _resolve_order_expr: ordinals and
            # bare output aliases name select items already walked.
            if isinstance(expr, ex.Literal) and isinstance(expr.value,
                                                           int):
                continue
            if isinstance(expr, ex.ColumnRef) and expr.table is None \
                    and expr.name in query.columns:
                continue
            exprs.append(expr)
        if select.limit is not None:
            exprs.append(select.limit)
        if select.offset is not None:
            exprs.append(select.offset)

        refs: List[ex.ColumnRef] = []
        slots: List[int] = []
        opaque = [False]
        for expr in exprs:
            collect_columns(expr, refs, opaque)
            collect_slots(expr, slots)
        if opaque[0]:
            return

        starts: List[int] = []
        base = 0
        for entry in entries:
            starts.append(base)
            base += entry.width

        needed: List[set] = [set() for _ in entries]

        def note(flat: int) -> None:
            for j in range(len(entries) - 1, -1, -1):
                if flat >= starts[j]:
                    local = flat - starts[j]
                    if local < len(entries[j].columns):
                        needed[j].add(local)
                    return

        for ref in refs:
            try:
                depth, flat = scope.resolve_depth(ref.name, ref.table)
            except CatalogError:
                return                       # unresolvable: play safe
            if depth:
                continue                     # outer scopes aren't ours
            note(flat)
        for slot in slots:
            if not 0 <= slot < base:
                return
            note(slot)

        for j, entry in enumerate(entries):
            if entry.table is None:
                continue                     # derived: opaque boundary
            if len(needed[j]) < len(entry.columns):
                entry.needed = tuple(sorted(needed[j]))

    # -- rule 4: access-path selection -------------------------------------
    def _choose_access(self, entry: SourceEntry, scope_full: ex.Scope):
        from .indexes import OrderedIndex
        local_scope = self._local_scope(entry, scope_full)
        bounds = _PredBounds(entry.pushed, entry.alias, local_scope)
        stats = self._stats_for(entry.table)
        rows = self._base_rows(entry.table, stats)
        total_sel = self._filtered_selectivity(entry.pushed, entry.alias,
                                               local_scope, stats)
        pushed = entry.pushed
        # Projection pushdown makes a narrow scan cheaper per row: it
        # copies fewer cells out of the heap.  The factor is applied
        # uniformly to every candidate's per-row term (visibility and
        # predicate work don't shrink), so it never flips the access
        # choice for one entry — it lowers the entry's est_cost so join
        # costing credits narrow build/probe sides.
        width_factor = 1.0
        if entry.needed is not None:
            width_factor = 0.5 + 0.5 * (len(entry.needed) + 1) \
                / (len(entry.columns) + 1)

        # Candidate 1: full heap scan (always available).
        candidates: List[Tuple[float, int, object]] = [
            (COST_ROW * rows * width_factor, 2, FullScanAccess(list(pushed)))]

        # Candidate 2: best equality-index probe.
        eq_cols = {col: value for col, (_c, value) in bounds.eq.items()}
        if eq_cols:
            index, n_keys = best_index(entry.table, set(eq_cols))
            if index is not None:
                key_columns = tuple(index.columns[:n_keys])
                covered = set(key_columns)
                key_sel = self._filtered_selectivity(
                    [bounds.eq[c][0] for c in key_columns],
                    entry.alias, local_scope, stats)
                residual = [c for c in pushed
                            if not _covered_by(c, covered, entry.alias,
                                               local_scope, eq_cols)]
                cost = COST_PROBE + COST_ROW * rows * key_sel \
                    * width_factor
                candidates.append((cost, 0, IndexEqAccess(
                    index=index, key_columns=key_columns,
                    key_exprs=[eq_cols[c] for c in key_columns],
                    residual=residual)))

        # Candidate 3: ordered-index range scans (eq prefix + bounds on
        # the next index column).
        for index in entry.table.indexes.values():
            if not isinstance(index, OrderedIndex):
                continue
            prefix: List[str] = []
            for col in index.columns:
                if col in bounds.eq:
                    prefix.append(col)
                else:
                    break
            if len(prefix) >= len(index.columns):
                continue                     # fully covered: eq path wins
            range_col = index.columns[len(prefix)]
            low = bounds.lows.get(range_col)
            high = bounds.highs.get(range_col)
            if low is None and high is None:
                continue
            consumed = {id(bounds.eq[c][0]) for c in prefix}
            range_conjs = []
            if low is not None:
                consumed.add(id(low[0]))
                range_conjs.append(low[0])
            if high is not None:
                consumed.add(id(high[0]))
                range_conjs.append(high[0])
            key_sel = self._filtered_selectivity(
                [bounds.eq[c][0] for c in prefix], entry.alias,
                local_scope, stats)
            seen = set()
            for conjunct in range_conjs:
                if id(conjunct) in seen:
                    continue
                seen.add(id(conjunct))
                key_sel *= self._conjunct_selectivity(
                    conjunct, entry.alias, local_scope, stats)
            residual = [c for c in pushed if id(c) not in consumed]
            cost = COST_PROBE + COST_ROW * rows * key_sel * width_factor
            candidates.append((cost, 1, IndexRangeAccess(
                index=index, eq_columns=tuple(prefix),
                eq_exprs=[bounds.eq[c][1] for c in prefix],
                range_column=range_col,
                low_expr=low[1] if low is not None else None,
                high_expr=high[1] if high is not None else None,
                include_low=low[2] if low is not None else True,
                include_high=high[2] if high is not None else True,
                residual=residual)))

        if self.naive:
            cost, _priority, access = candidates[0]   # the full scan
        else:
            cost, _priority, access = min(candidates,
                                          key=lambda c: (c[0], c[1]))
        entry.est_rows = rows * total_sel
        entry.est_cost = cost
        return access

    # -- rule 5: join-strategy selection -----------------------------------
    def _row_bytes(self, entry: SourceEntry, stats) -> float:
        """Expected in-memory bytes of one execution row from this entry.

        Prefers per-column widths measured at ANALYZE time
        (:attr:`~repro.db.stats.TableStats.avg_row_bytes`) over the
        synthetic width-only formula, and restricts the sum to the
        projected column set when pushdown narrowed the entry —
        projected-away slots ride along as ``None`` at 8 bytes each, so
        a narrow build side earns a matching memory-budget credit here
        and at run time (:func:`~repro.db.spill.estimate_row_bytes`).
        """
        if entry.table is None:
            return estimated_tuple_bytes(len(entry.columns))
        names = entry.columns if entry.needed is None \
            else [entry.columns[p] for p in entry.needed]
        stripped = len(entry.columns) - len(names)
        measured = stats.avg_row_bytes(names) if stats is not None else None
        if measured is not None:
            return measured + 8.0 * stripped
        return estimated_tuple_bytes(len(names)) + 8.0 * stripped

    def _join_pair_selectivity(self, table: Table, column: str,
                               stats) -> float:
        """P(right.col = probe value) per right row."""
        cs = self._column_stats(stats, column)
        if cs is not None and cs.ndv > 0:
            return cs.eq_selectivity()
        for _unique, index in table.unique_indexes:
            if index.columns == (column,):
                return 1.0 / self._base_rows(table, stats)
        return DEFAULT_EQ_SEL

    def _choose_join(self, query: LogicalQuery, i: int,
                     extra: List[ex.Expr], left_rows: float,
                     left_cost: float) -> None:
        entry = query.entries[i]
        scope = query.scope
        kind = entry.join_kind
        left_aliases = {e.alias for e in query.entries[:i]}
        on_conjuncts = [fold_constants(c)
                        for c in split_conjuncts(entry.join_on)]
        if kind == "inner":
            on_conjuncts = on_conjuncts + extra
        elif extra:
            # Multi-table WHERE conjuncts touching a left join's right
            # side must filter *after* the join.
            entry.post_filters = list(extra)

        eq_pairs: List[Tuple[str, ex.Expr]] = []   # (right col, left expr)
        residual: List[ex.Expr] = []
        if self.naive:
            # No equi-pair extraction: every ON condition stays a
            # residual filter on the nested-loop join at this level.
            residual = list(on_conjuncts)
        else:
            for conjunct in on_conjuncts:
                pair = _equi_pair(conjunct, entry, left_aliases, scope)
                if pair is not None:
                    eq_pairs.append(pair)
                else:
                    residual.append(conjunct)

        table = entry.table
        stats = self._stats_for(table) if table is not None else None
        right_rows = entry.est_rows if entry.est_rows is not None \
            else DEFAULT_DERIVED_ROWS
        right_cost = entry.est_cost if entry.est_cost is not None \
            else right_rows
        pair_sel = 1.0
        if table is not None:
            for col, _expr in eq_pairs:
                pair_sel *= self._join_pair_selectivity(table, col, stats)
        elif eq_pairs:
            pair_sel = min(1.0, 1.0 / max(right_rows, 1.0)) \
                if right_rows else DEFAULT_EQ_SEL
        out_rows = left_rows * right_rows * pair_sel \
            * DEFAULT_SEL ** len(residual)
        if kind == "left":
            out_rows = max(out_rows, left_rows)
        hash_cost = left_cost + right_cost + COST_BUILD_ROW * right_rows \
            + COST_ROW * left_rows + COST_ROW * out_rows
        # Memory budget: a build side expected to exceed work_mem pays
        # one spool write + read per row per grace level — on build
        # *and* probe rows — which is exactly what makes the optimizer
        # prefer an index join (no build memory) or a smaller build
        # side when the budget is tight.
        row_bytes = self._row_bytes(entry, stats)
        build_bytes = right_rows * row_bytes
        spill_partitions, part_bytes, spill_levels = estimate_spill_plan(
            build_bytes, self.work_mem)
        if spill_partitions:
            hash_cost += COST_SPILL_ROW * spill_levels \
                * (right_rows + left_rows)

        if table is not None and eq_pairs and kind in ("inner", "left"):
            index, n_keys = best_index(table, {c for c, _ in eq_pairs})
            if index is not None:
                key_columns = tuple(index.columns[:n_keys])
                # One pair per key column drives the probe; every other
                # pair — a non-key column, or a *second* equality on the
                # same column (a.id = b.id AND b.id = c.id funnelled
                # onto b) — must survive as a residual condition.
                by_col: dict = {}
                leftover_pairs: List[Tuple[str, ex.Expr]] = []
                for col, expr in eq_pairs:
                    if col in key_columns and col not in by_col:
                        by_col[col] = expr
                    else:
                        leftover_pairs.append((col, expr))
                leftovers = [ex.Compare("=",
                                        ex.ColumnRef(c, entry.alias),
                                        expr)
                             for c, expr in leftover_pairs]
                pushed_extra = entry.pushed if kind == "inner" else []
                if kind == "left" and entry.pushed:
                    raise DatabaseError(
                        "internal: predicates pushed below a left join")
                # Probes hit the base table (pushed predicates filter
                # per probe), so fan-out uses the unfiltered row count.
                base = self._base_rows(table, stats)
                key_sel = 1.0
                for col in key_columns:
                    key_sel *= self._join_pair_selectivity(table, col,
                                                           stats)
                matches = max(base * key_sel, 0.0)
                index_cost = left_cost + left_rows * (COST_PROBE
                                                      + COST_ROW * matches)
                if index_cost <= hash_cost:
                    entry.join = IndexJoinChoice(
                        index=index, key_columns=key_columns,
                        key_exprs=[by_col[c] for c in key_columns],
                        residual=residual + leftovers + pushed_extra,
                        est_rows=out_rows, est_cost=index_cost)
                    return
        if eq_pairs:
            entry.join = HashJoinChoice(
                left_exprs=[e for _, e in eq_pairs],
                right_columns=[c for c, _ in eq_pairs],
                residual=residual, est_rows=out_rows, est_cost=hash_cost,
                est_mem=part_bytes,
                est_spill_partitions=spill_partitions)
            return
        nested_out = left_rows * right_rows * DEFAULT_SEL ** len(residual)
        if kind == "left":
            nested_out = max(nested_out, left_rows)
        entry.join = NestedJoinChoice(
            residual=residual, est_rows=nested_out,
            est_cost=left_cost + right_cost
            + COST_ROW * left_rows * max(right_rows, 1.0),
            est_mem=right_rows * row_bytes)
