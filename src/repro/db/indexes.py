"""Secondary indexes: hash (equality) and ordered (range) indexes.

Indexes map key values to tuple ids; they contain entries for *all*
versions, and lookups filter by MVCC visibility and by label afterwards —
exactly how the paper's prototype reuses PostgreSQL's indexes, which
"already had to be prepared to deal with multiple versions" (section 7.1).
This is also why polyinstantiation needed no special support: a unique
index may legitimately hold several live tids for one key, distinguished
only by label.

The paper notes (section 7.1) that IFDB does *not* provide label-inverted
indexes; neither do we, and scans filter labels tuple-by-tuple.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.counters import CounterGroup


class IndexCounters(CounterGroup):
    """Process-wide index-probe counters (diff before/after, like
    ``rules.COUNTERS``).  ``lookups`` counts equality probes
    (:meth:`HashIndex.lookup` / :meth:`OrderedIndex.lookup`),
    ``range_scans`` ordered-range scans.  The batched
    ``IndexLoopJoin`` dedupes duplicate outer keys to one probe per
    distinct key per batch; the join microbenchmark diffs these
    counters to prove it.  Registered as the ``index`` group of the
    unified :data:`repro.db.metrics.REGISTRY` — prefer registry
    scopes / per-statement deltas over hand-diffing this object.
    Accumulates per thread (:class:`~repro.core.counters.CounterGroup`);
    ``snapshot()`` sums across threads."""

    FIELDS = ("lookups", "range_scans")


#: The module-wide counter instance (see :class:`IndexCounters`).
COUNTERS = IndexCounters()


class HashIndex:
    """Equality index: key tuple -> list of tids."""

    def __init__(self, name: str, columns: Sequence[str],
                 positions: Sequence[int], unique: bool = False):
        self.name = name
        self.columns = tuple(columns)
        self.positions = tuple(positions)
        self.unique = unique
        self._map: Dict[Tuple, List[int]] = {}

    def key_of(self, values: Tuple) -> Tuple:
        positions = self.positions
        if len(positions) == 1:
            return (values[positions[0]],)
        return tuple(values[p] for p in positions)

    def insert(self, values: Tuple, tid: int) -> None:
        self._map.setdefault(self.key_of(values), []).append(tid)

    def lookup(self, key: Tuple) -> List[int]:
        COUNTERS.lookups += 1
        return self._map.get(key, [])

    def remove(self, values: Tuple, tid: int) -> None:
        """Physically drop an entry (vacuum only; MVCC never needs this)."""
        tids = self._map.get(self.key_of(values))
        if tids and tid in tids:
            tids.remove(tid)
            if not tids:
                del self._map[self.key_of(values)]

    def __len__(self) -> int:
        return sum(len(v) for v in self._map.values())


class OrderedIndex:
    """Sorted index supporting range scans (B-tree stand-in).

    Entries are ``(key, tid)`` kept sorted; inserts use bisection.  Keys
    must be homogeneous per column so Python comparison is total.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 positions: Sequence[int], unique: bool = False):
        self.name = name
        self.columns = tuple(columns)
        self.positions = tuple(positions)
        self.unique = unique
        self._entries: List[Tuple[Tuple, int]] = []

    def key_of(self, values: Tuple) -> Tuple:
        positions = self.positions
        if len(positions) == 1:
            return (values[positions[0]],)
        return tuple(values[p] for p in positions)

    def insert(self, values: Tuple, tid: int) -> None:
        bisect.insort(self._entries, (self.key_of(values), tid))

    def remove(self, values: Tuple, tid: int) -> None:
        entry = (self.key_of(values), tid)
        idx = bisect.bisect_left(self._entries, entry)
        if idx < len(self._entries) and self._entries[idx] == entry:
            del self._entries[idx]

    def lookup(self, key: Tuple) -> List[int]:
        """All tids whose key starts with ``key`` (exact match when the
        key covers every indexed column)."""
        COUNTERS.lookups += 1
        return list(self.scan_prefix(key))

    def scan_prefix(self, prefix: Tuple) -> Iterator[int]:
        """Tids whose key starts with ``prefix``, in key order."""
        entries = self._entries
        lo = bisect.bisect_left(entries, (prefix,))
        for i in range(lo, len(entries)):
            key, tid = entries[i]
            if key[:len(prefix)] != prefix:
                break
            yield tid

    def scan_range(self, low: Optional[Tuple], high: Optional[Tuple],
                   *, include_low: bool = True,
                   include_high: bool = True) -> Iterator[int]:
        """Tids with ``low <= key <= high`` (bounds optional), in order."""
        COUNTERS.range_scans += 1
        entries = self._entries
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(entries, (low,))
        else:
            start = bisect.bisect_right(entries, (low + (_SENTINEL,),))
        for i in range(start, len(entries)):
            key, tid = entries[i]
            if high is not None:
                trimmed = key[:len(high)]
                if trimmed > high or (trimmed == high and not include_high):
                    break
            yield tid

    def scan_all(self) -> Iterator[int]:
        for _key, tid in self._entries:
            yield tid

    def __len__(self) -> int:
        return len(self._entries)


class _Sentinel:
    """Compares greater than everything (for exclusive lower bounds)."""

    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True


_SENTINEL = _Sentinel()
