"""The planner facade: logical plan → optimizer → physical operators.

Planning a SELECT is a three-stage pipeline:

1. :func:`repro.db.logical.build_logical` resolves the AST against the
   catalog into a :class:`~repro.db.logical.LogicalQuery`;
2. :class:`repro.db.optimizer.Optimizer` annotates it with access paths
   (index vs heap scan), join strategies (index / hash / nested loop),
   pushed-down predicates, and folded constants;
3. this module *lowers* the annotated tree to the pull-based physical
   operators of :mod:`repro.db.physical`, compiling expressions to
   closures along the way, and attaches one-line ``explain``
   annotations so ``EXPLAIN`` can print exactly the tree that executes.

Query by Label stays enforced in the physical scan operators (the
paper's section 7.1 invariant): nothing in this pipeline can surface a
tuple the process may not see, because the label check happens at the
layer that reads tuples, below every optimization decision.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from ..core.labels import EMPTY_LABEL
from ..errors import DatabaseError
from ..sql import ast
from . import expressions as ex
from .catalog import Catalog
from .logical import LogicalQuery, SourceEntry, build_dml_logical, \
    build_logical
from .optimizer import (
    COST_ROW,
    DEFAULT_SEL,
    FullScanAccess,
    HashJoinChoice,
    IndexEqAccess,
    IndexJoinChoice,
    IndexRangeAccess,
    Optimizer,
    estimate_group_spill,
    estimate_sort_spill,
)
from .physical import (
    AggregateNode,
    AggSpec,
    DeterministicOrder,
    Distinct,
    ExecContext,
    ExecRow,
    Filter,
    Gather,
    HashJoin,
    IndexLoopJoin,
    IndexRangeScan,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Plan,
    PreparedDML,
    PreparedSelect,
    Project,
    Scan,
    SingleRow,
    Sort,
    TopN,
    ViewPlan,
    explain_plan,
    stamp_batch_size,
)
from .spill import estimated_tuple_bytes

__all__ = [
    "AggregateNode", "AggSpec", "DeterministicOrder", "Distinct",
    "ExecContext", "ExecRow", "Filter", "Gather", "HashJoin",
    "IndexLoopJoin", "IndexRangeScan", "IndexScan", "Limit",
    "NestedLoopJoin", "Plan", "Planner", "PreparedDML",
    "PreparedSelect", "Project", "Scan", "SingleRow", "Sort", "TopN",
    "ViewPlan", "explain_plan",
]


class Planner:
    """Plans SELECTs and DML against the catalog via the three layers.

    ``naive=True`` builds reference plans with every optimization off
    (see :class:`~repro.db.optimizer.Optimizer`); the differential test
    harness uses it as the known-good executor.
    """

    def __init__(self, catalog: Catalog, registry, stats=None,
                 naive: bool = False, batch_size: int = 0,
                 work_mem: int = 0, workers: int = 0):
        self.catalog = catalog
        self.registry = registry
        self.optimizer = Optimizer(catalog, stats=stats, naive=naive,
                                   work_mem=work_mem)
        #: Execution batch size stamped onto lowered plans; the
        #: optimizer pins it to 0 (row-at-a-time) in naive mode so the
        #: differential harness's reference executor stays per-tuple.
        self.batch_size = self.optimizer.exec_batch_size(batch_size)
        #: Worker-pool size for parallel-safe subtrees (0 = serial;
        #: naive mode and fork-less platforms pin 0).
        self.workers = self.optimizer.exec_workers(workers)
        #: Fan-out cost floor, overridable for tests and small rigs.
        try:
            self.parallel_min_rows = int(
                os.environ.get("REPRO_PARALLEL_MIN_ROWS", "") or 0)
        except ValueError:
            self.parallel_min_rows = 0
        if self.parallel_min_rows <= 0:
            from .parallel import DEFAULT_MIN_ROWS
            self.parallel_min_rows = DEFAULT_MIN_ROWS

    # -- public entry points ----------------------------------------------
    def plan_select(self, select: ast.Select,
                    outer_scope: Optional[ex.Scope] = None,
                    batched: bool = True) -> PreparedSelect:
        """Plan a SELECT.  ``batched=False`` skips the batch stamping:
        expression-embedded subqueries (EXISTS, IN, scalar) pass it
        because their consumers short-circuit — EXISTS stops at the
        first row, a scalar subquery at the second — and draining a
        whole RowBatch per probe would throw that away.
        """
        query = build_logical(select, self.catalog, outer_scope,
                              EMPTY_LABEL, [])
        self.optimizer.optimize(query)
        prepared = self._lower(query)
        if batched:
            if self.workers >= 2:
                prepared.plan = self._parallelize(prepared.plan)
            stamp_batch_size(prepared.plan, self.batch_size)
        return prepared

    # -- parallel exchange insertion --------------------------------------
    #: Child pointers the parallelizer rewires (the physical tree's
    #: full child-attribute vocabulary).
    _PARALLEL_CHILD_ATTRS = ("child", "left", "right", "inner")

    def _parallel_safe_scan(self, scan: Scan) -> bool:
        """Proof obligations for running a scan subtree in a forked
        worker (see ARCHITECTURE.md, "Parallel execution"):

        * plain full heap scan (``type is Scan``) — the only access
          path with a partitionable chunk domain;
        * predicate, if any, reads real columns only
          (``predicate_on_values``) — in particular no subqueries, so
          no nested statement execution inside a worker;
        * no declassifying views: their authority re-validation and
          audit-trail records must happen in the coordinator process
          (a worker's audit rows would die with it).

        Everything below the check is read-only against the MVCC
        snapshot and the label rules' memo tables, both of which a
        forked child inherits copy-on-write.
        """
        return ((scan.predicate is None or scan.predicate_on_values)
                and not scan.view_grants
                and not scan.declass)

    def _parallelize(self, plan: Plan) -> Plan:
        """Bottom-up exchange insertion: wrap parallel-safe full scans
        whose candidate estimate clears the fan-out cost gate in a
        :class:`Gather`, and hand the worker pool to hash joins and
        aggregates for their grace-partition phases."""
        for attr in self._PARALLEL_CHILD_ATTRS:
            child = getattr(plan, attr, None)
            if isinstance(child, Plan):
                setattr(plan, attr, self._parallelize(child))
        if isinstance(plan, (HashJoin, AggregateNode)):
            plan.workers = self.workers
        if type(plan) is Scan and self._parallel_safe_scan(plan):
            workers = self.optimizer.gather_workers(
                self.workers, plan.table.approx_rows,
                self.parallel_min_rows)
            if workers:
                gather = Gather(plan, workers)
                gather.est_rows = plan.est_rows
                gather.est_cost = plan.est_cost
                return gather
        return plan

    def plan_dml(self, statement) -> PreparedDML:
        """Plan an UPDATE/DELETE through the same three layers as SELECT.

        The target scan comes out of the identical logical →
        access-path-selection → lowering pipeline (so equality probes,
        ``IndexRangeScan`` for range predicates, and stats-driven
        costing all apply), but execution pulls ``versions()`` instead
        of ``rows()``: the session needs the physical tuple versions to
        stamp ``xmax`` and to run the write-rule equality check.
        """
        query = build_dml_logical(statement, self.catalog)
        self.optimizer.optimize_dml(query)
        plan = self._lower_entry(query.entry, query.scope)
        stamp_batch_size(plan, self.batch_size)
        assignments: List[Tuple[int, Callable]] = []
        if isinstance(statement, ast.Update):
            schema = query.entry.table.schema
            compiler = self.compiler(query.scope)
            for column, expr in statement.assignments:
                assignments.append((schema.position(column),
                                    compiler.compile(expr)))
        return PreparedDML(plan, assignments)

    def compiler(self, scope: ex.Scope) -> ex.ExprCompiler:
        return ex.ExprCompiler(scope, catalog=self.catalog, planner=self)

    # -- lowering: annotated logical tree → physical operators ------------
    def _lower(self, query: LogicalQuery) -> PreparedSelect:
        scope = query.scope
        compiler = self.compiler(scope)
        if not query.entries:
            plan: Plan = SingleRow()
            for conjunct in query.residual_where:
                plan = self._filter(plan, conjunct, compiler)
            return self._finish_select(query, plan, compiler)

        plan = self._lower_entry(query.entries[0], scope)
        left_width = query.entries[0].width
        for i in range(1, len(query.entries)):
            entry = query.entries[i]
            plan = self._lower_join(plan, left_width, entry, scope, compiler)
            left_width += entry.width
            for conjunct in entry.post_filters:
                plan = self._filter(plan, conjunct, compiler)
        for conjunct in query.residual_where:
            plan = self._filter(plan, conjunct, compiler)
        return self._finish_select(query, plan, compiler)

    def _filter(self, child: Plan, conjunct: ex.Expr,
                compiler: ex.ExprCompiler) -> Plan:
        plan = Filter(child, compiler.compile(conjunct),
                      batch_predicate=ex.compile_batch(compiler, conjunct)
                      if self.batch_size else None)
        plan.explain = "Filter (%s)" % ex.to_sql(conjunct)
        if child.est_rows is not None:
            plan.est_rows = child.est_rows * DEFAULT_SEL
            plan.est_cost = (child.est_cost or 0.0) \
                + COST_ROW * child.est_rows
        return plan

    @staticmethod
    def _annotate(plan: Plan, est_rows, est_cost) -> Plan:
        plan.est_rows = est_rows
        plan.est_cost = est_cost
        return plan

    @staticmethod
    def _passthrough(plan: Plan, child: Plan) -> Plan:
        """Copy the child's estimates onto a rows-preserving operator."""
        plan.est_rows = child.est_rows
        plan.est_cost = child.est_cost
        return plan

    def _local_compiler(self, entry: SourceEntry, scope_full: ex.Scope):
        local_scope = ex.Scope(outer=scope_full.outer)
        local_scope.add_table(entry.alias, entry.columns)
        return local_scope, self.compiler(local_scope)

    def _conjunction(self, conjuncts: List[ex.Expr],
                     compiler: ex.ExprCompiler) -> Optional[Callable]:
        if not conjuncts:
            return None
        if len(conjuncts) == 1:
            return compiler.compile(conjuncts[0])
        return compiler.compile(ex.And(conjuncts))

    @staticmethod
    def _on_values(conjuncts: List[ex.Expr]) -> bool:
        """May the scan predicate run on the bare stored tuple?

        True when every conjunct references only real columns (no
        ``_label``, no subqueries), so the scan can evaluate it against
        ``version.values`` and skip the output-row copy for rejected
        rows — in every mode, and entirely on predicate-free paths.
        """
        return bool(conjuncts) and all(ex.reads_columns_only(c)
                                       for c in conjuncts)

    @staticmethod
    def _relation(entry: SourceEntry) -> str:
        name = entry.relation_name or entry.alias
        if entry.alias != name:
            return "%s (%s)" % (name, entry.alias)
        return name

    def _lower_entry(self, entry: SourceEntry, scope_full: ex.Scope) -> Plan:
        _local_scope, local_compiler = self._local_compiler(entry, scope_full)
        if entry.derived is not None:
            self.optimizer.optimize(entry.derived)
            inner = self._lower(entry.derived)
            plan: Plan = ViewPlan(inner.plan)
            plan.explain = ("View %s" if entry.relation_name
                            else "Subquery %s") % self._relation(entry)
            self._passthrough(plan, inner.plan)
            # Predicates stay above the label-stripping boundary: they
            # see the view's output (stripped) labels, never the inner
            # tuples' raw labels.
            for conjunct in entry.pushed:
                plan = self._filter(plan, conjunct, local_compiler)
            if entry.pushed:
                self._annotate(plan, entry.est_rows, entry.est_cost)
            return plan
        access = entry.access
        if isinstance(access, IndexEqAccess):
            key_fns = [local_compiler.compile(e) for e in access.key_exprs]
            predicate = self._conjunction(access.residual, local_compiler)
            plan = IndexScan(entry.table, access.index, key_fns, predicate,
                             entry.declass, entry.view_grants,
                             predicate_on_values=self._on_values(
                                 access.residual),
                             needed=entry.needed)
            plan.explain = "IndexScan %s using %s (%s)%s" % (
                self._relation(entry), access.index.name,
                self._key_text(access.key_columns, access.key_exprs),
                self._filter_text(access.residual))
            return self._annotate(plan, entry.est_rows, entry.est_cost)
        if isinstance(access, IndexRangeAccess):
            eq_fns = [local_compiler.compile(e) for e in access.eq_exprs]
            low_fn = (local_compiler.compile(access.low_expr)
                      if access.low_expr is not None else None)
            high_fn = (local_compiler.compile(access.high_expr)
                       if access.high_expr is not None else None)
            predicate = self._conjunction(access.residual, local_compiler)
            plan = IndexRangeScan(entry.table, access.index, eq_fns,
                                  low_fn, high_fn, access.include_low,
                                  access.include_high, predicate,
                                  entry.declass, entry.view_grants,
                                  predicate_on_values=self._on_values(
                                      access.residual),
                                  needed=entry.needed)
            plan.explain = "IndexRangeScan %s using %s (%s)%s" % (
                self._relation(entry), access.index.name,
                self._range_key_text(access),
                self._filter_text(access.residual))
            return self._annotate(plan, entry.est_rows, entry.est_cost)
        conjuncts = access.conjuncts if isinstance(access, FullScanAccess) \
            else list(entry.pushed)
        predicate = self._conjunction(conjuncts, local_compiler)
        plan = Scan(entry.table, predicate, entry.declass, entry.view_grants,
                    predicate_on_values=self._on_values(conjuncts),
                    needed=entry.needed)
        plan.explain = "Scan %s%s" % (self._relation(entry),
                                      self._filter_text(conjuncts))
        return self._annotate(plan, entry.est_rows, entry.est_cost)

    @staticmethod
    def _key_text(key_columns, key_exprs) -> str:
        return ", ".join("%s = %s" % (col, ex.to_sql(expr))
                         for col, expr in zip(key_columns, key_exprs))

    @staticmethod
    def _range_key_text(access: IndexRangeAccess) -> str:
        parts = ["%s = %s" % (col, ex.to_sql(expr))
                 for col, expr in zip(access.eq_columns, access.eq_exprs)]
        if access.low_expr is not None:
            parts.append("%s %s %s" % (
                access.range_column, ">=" if access.include_low else ">",
                ex.to_sql(access.low_expr)))
        if access.high_expr is not None:
            parts.append("%s %s %s" % (
                access.range_column, "<=" if access.include_high else "<",
                ex.to_sql(access.high_expr)))
        return ", ".join(parts)

    @staticmethod
    def _filter_text(conjuncts: List[ex.Expr]) -> str:
        if not conjuncts:
            return ""
        return " filter (%s)" % " AND ".join(ex.to_sql(c)
                                             for c in conjuncts)

    def _lower_join(self, left: Plan, left_width: int, entry: SourceEntry,
                    scope: ex.Scope, compiler: ex.ExprCompiler) -> Plan:
        choice = entry.join
        kind = entry.join_kind
        if isinstance(choice, IndexJoinChoice):
            key_fns = [compiler.compile(e) for e in choice.key_exprs]
            residual = self._conjunction(choice.residual, compiler)
            plan = IndexLoopJoin(left, entry.table, choice.index, key_fns,
                                 residual, kind, entry.declass,
                                 entry.view_grants, entry.width)
            plan.explain = "IndexLoopJoin (%s) %s using %s (%s)%s" % (
                kind, self._relation(entry), choice.index.name,
                self._key_text(choice.key_columns, choice.key_exprs),
                self._filter_text(choice.residual))
            return self._annotate(plan, choice.est_rows, choice.est_cost)
        right_plan = self._lower_entry(entry, scope)
        if isinstance(choice, HashJoinChoice):
            left_key_fns = [compiler.compile(e) for e in choice.left_exprs]
            right_key_fns = [compiler.compile(ex.ColumnRef(c, entry.alias))
                             for c in choice.right_columns]
            residual_fn = self._conjunction(choice.residual, compiler)
            plan = HashJoin(left, right_plan, left_key_fns, right_key_fns,
                            residual_fn, kind, entry.width, left_width)
            plan.explain = "HashJoin (%s) on (%s)%s" % (
                kind,
                ", ".join("%s.%s = %s" % (entry.alias, col, ex.to_sql(e))
                          for col, e in zip(choice.right_columns,
                                            choice.left_exprs)),
                self._filter_text(choice.residual))
            plan.est_mem = choice.est_mem
            plan.est_spill_partitions = choice.est_spill_partitions
            return self._annotate(plan, choice.est_rows, choice.est_cost)
        residual_fn = self._conjunction(choice.residual, compiler)
        batch_on = None
        if self.batch_size and choice.residual:
            batch_on = ex.compile_batch(
                compiler, choice.residual[0] if len(choice.residual) == 1
                else ex.And(list(choice.residual)))
        plan = NestedLoopJoin(left, right_plan, kind, residual_fn,
                              entry.width, batch_on=batch_on)
        plan.explain = "NestedLoopJoin (%s)%s" % (
            kind, self._filter_text(choice.residual))
        plan.est_mem = choice.est_mem
        return self._annotate(plan, choice.est_rows, choice.est_cost)

    # -- select list, grouping, ordering ----------------------------------
    def _finish_select(self, query: LogicalQuery, plan: Plan,
                       compiler: ex.ExprCompiler) -> PreparedSelect:
        select = query.select
        items = query.items
        names = query.columns
        has_aggregates = (bool(select.group_by)
                          or any(ex.contains_aggregate(expr)
                                 for expr, _ in items)
                          or (select.having is not None
                              and ex.contains_aggregate(select.having)))

        if has_aggregates:
            plan, post_compiler, rewrite_map = self._plan_aggregation(
                select, plan, compiler, items)
            # Post-aggregation row width: group keys then aggregates
            # (used below to recognize identity projections).
            identity_width = len(plan.group_fns) + len(plan.specs)
            out_exprs = [ex.rewrite(expr, rewrite_map) for expr, _ in items]
            out_fns = [post_compiler.compile(expr) for expr in out_exprs]
            out_compiler = post_compiler
            if select.having is not None:
                having = ex.rewrite(select.having, rewrite_map)
                plan = self._filter(plan, having, post_compiler)
            order_compiler = post_compiler
            order_rewrite = rewrite_map
        else:
            out_exprs = [expr for expr, _ in items]
            out_fns = [compiler.compile(expr) for expr in out_exprs]
            out_compiler = compiler
            if select.having is not None:
                raise DatabaseError("HAVING requires GROUP BY or aggregates")
            order_compiler = compiler
            order_rewrite = {}
            # A non-aggregated input row always ends in _label slots the
            # select list cannot cover, so it never matches an identity
            # projection.
            identity_width = None

        # ORDER BY before projection (so it can reference input columns),
        # with support for output aliases and 1-based positions.
        # ORDER BY … LIMIT (no DISTINCT between them) rewrites to a
        # single bounded-heap TopN absorbing the Limit node: everything
        # separating the two — Project — is 1:1, so applying the limit
        # at the sort is semantics-preserving and a small limit never
        # sorts (or spills) the full input.  Naive/reference plans keep
        # the literal Sort + Limit pair.
        topn = None
        if select.order_by:
            key_fns = []
            descending = []
            order_texts = []
            for order_item in select.order_by:
                expr = order_item.expr
                resolved = self._resolve_order_expr(expr, items, names)
                key_fns.append(order_compiler.compile(
                    ex.rewrite(resolved, order_rewrite)))
                descending.append(order_item.descending)
                order_texts.append(ex.to_sql(resolved)
                                   + (" DESC" if order_item.descending
                                      else ""))
            if (select.limit is not None and not select.distinct
                    and not self.optimizer.naive):
                limit_fn = compiler.compile(select.limit)
                offset_fn = (compiler.compile(select.offset)
                             if select.offset is not None else None)
                topn = TopN(plan, key_fns, descending, limit_fn, offset_fn)
                topn.explain = "TopN [%s] (%s)" % (
                    ", ".join(order_texts), self._limit_text(select))
                sort: Plan = topn
            else:
                sort = Sort(plan, key_fns, descending)
                sort.explain = "Sort [%s]" % ", ".join(order_texts)
            self._passthrough(sort, plan)
            sort_width = (identity_width if identity_width is not None
                          else query.width)
            self._cost_sort(sort, plan, sort_width,
                            self._topn_bound(select) if topn is not None
                            else None)
            plan = sort

        # A projection whose every output expression is SlotRef(i), in
        # order, covering the whole post-aggregation row is the
        # identity (e.g. ``SELECT grp, COUNT(*) … GROUP BY grp``) —
        # elide the no-op node; output names live in PreparedSelect.
        identity = (identity_width is not None
                    and len(out_exprs) == identity_width
                    and all(isinstance(e, ex.SlotRef) and e.slot == i
                            for i, e in enumerate(out_exprs)))
        if not identity:
            batch_fns = [ex.compile_batch(out_compiler, expr)
                         for expr in out_exprs] if self.batch_size else None
            project = Project(plan, out_fns, batch_fns=batch_fns)
            project.explain = "Project [%s]" % ", ".join(names)
            self._passthrough(project, plan)
            plan = project
        if select.distinct:
            distinct = Distinct(plan)
            self._passthrough(distinct, plan)
            self._cost_distinct(distinct, plan, len(names))
            plan = distinct
        if (select.limit is not None or select.offset is not None) \
                and topn is None:
            limit_fn = (compiler.compile(select.limit)
                        if select.limit is not None else None)
            offset_fn = (compiler.compile(select.offset)
                         if select.offset is not None else None)
            limit = Limit(plan, limit_fn, offset_fn)
            limit.explain = "Limit (%s)" % self._limit_text(select)
            self._passthrough(limit, plan)
            plan = limit
        return PreparedSelect(plan, list(names))

    @staticmethod
    def _limit_text(select) -> str:
        parts = []
        if select.limit is not None:
            parts.append("limit %s" % ex.to_sql(select.limit))
        if select.offset is not None:
            parts.append("offset %s" % ex.to_sql(select.offset))
        return ", ".join(parts)

    @staticmethod
    def _topn_bound(select) -> Optional[Tuple[int, int]]:
        """``(limit, offset)`` when both are plain integer literals (the
        common case the optimizer can size the TopN heap from); None
        for parameterized/expression limits — those conservatively get
        the full-sort estimate, matching the runtime's worst case."""
        limit = select.limit
        if not (isinstance(limit, ex.Literal) and isinstance(
                limit.value, int) and not isinstance(limit.value, bool)):
            return None
        offset = 0
        if select.offset is not None:
            if not (isinstance(select.offset, ex.Literal) and isinstance(
                    select.offset.value, int)
                    and not isinstance(select.offset.value, bool)):
                return None
            offset = select.offset.value
        return limit.value, offset

    def _cost_sort(self, sort: Plan, child: Plan, width: int,
                   topn_bound: Optional[Tuple[int, int]]) -> None:
        """Attach sort estimates: full sorts get external-merge run
        counts via :func:`estimate_sort_spill`; a TopN with a literal
        bound gets its heap footprint (and the full-sort fallback
        estimate when even the heap would break the budget)."""
        child_rows = child.est_rows
        if child_rows is None:
            return
        row_bytes = estimated_tuple_bytes(width)
        input_bytes = child_rows * row_bytes
        work_mem = self.optimizer.work_mem
        if topn_bound is not None:
            limit, offset = topn_bound
            n = max(limit + offset, 0)
            held = min(child_rows, float(n))
            sort.est_rows = min(child_rows, float(max(limit, 0)))
            heap_bytes = held * row_bytes
            if work_mem and heap_bytes > work_mem:
                runs, est_mem, extra = estimate_sort_spill(
                    child_rows, input_bytes, work_mem)
                sort.est_runs = runs
                sort.est_mem = est_mem
            else:
                extra = 0.0
                sort.est_mem = heap_bytes
            sort.est_cost = (child.est_cost or 0.0) \
                + COST_ROW * child_rows + extra
            return
        runs, est_mem, extra = estimate_sort_spill(
            child_rows, input_bytes, work_mem)
        sort.est_runs = runs
        sort.est_mem = est_mem
        sort.est_cost = (child.est_cost or 0.0) \
            + COST_ROW * child_rows + extra

    def _cost_distinct(self, distinct: Plan, child: Plan,
                       width: int) -> None:
        """DISTINCT is group state with no accumulators: cost it like
        grace aggregation with zero specs (worst case, every input row
        a distinct group)."""
        child_rows = child.est_rows
        if child_rows is None:
            return
        partitions, est_mem, extra = estimate_group_spill(
            child_rows, child_rows, width, 0, self.optimizer.work_mem)
        distinct.est_mem = est_mem
        distinct.est_spill_partitions = partitions
        distinct.est_cost = (child.est_cost or 0.0) \
            + COST_ROW * child_rows + extra

    def _resolve_order_expr(self, expr, items, names):
        if isinstance(expr, ex.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise DatabaseError(
                    "ORDER BY position %d out of range" % position)
            return items[position - 1][0]
        if isinstance(expr, ex.ColumnRef) and expr.table is None:
            if expr.name in names:
                return items[names.index(expr.name)][0]
        return expr

    def _plan_aggregation(self, select, plan, compiler, items):
        group_exprs = list(select.group_by)
        aggregates: List[ex.Aggregate] = []
        for expr, _name in items:
            ex.collect_aggregates(expr, aggregates)
        if select.having is not None:
            ex.collect_aggregates(select.having, aggregates)
        for order_item in select.order_by:
            ex.collect_aggregates(order_item.expr, aggregates)

        group_fns = [compiler.compile(g) for g in group_exprs]
        specs = []
        for agg in aggregates:
            arg_fn = compiler.compile(agg.arg) if agg.arg is not None else None
            specs.append(AggSpec(agg.func, arg_fn, agg.distinct))

        node = AggregateNode(plan, group_fns, specs,
                             global_agg=not group_exprs)
        node.explain = "Aggregate [%s]%s" % (
            ", ".join(ex.to_sql(a) for a in aggregates),
            " group by [%s]" % ", ".join(ex.to_sql(g) for g in group_exprs)
            if group_exprs else "")
        child_rows = plan.est_rows
        if child_rows is not None:
            # Without NDV stats on the grouping expressions the group
            # count defaults to the input cardinality — the worst case
            # for memory, which is what the spill estimate must plan
            # for.  Global aggregates hold exactly one group and never
            # spill.
            groups = child_rows if group_exprs else 1.0
            partitions, est_mem, extra = estimate_group_spill(
                child_rows, groups, len(group_exprs), len(specs),
                self.optimizer.work_mem)
            node.est_rows = groups
            node.est_mem = est_mem
            node.est_spill_partitions = partitions
            node.est_cost = (plan.est_cost or 0.0) \
                + COST_ROW * child_rows + extra

        # Post-aggregation rows: group values then aggregate results.
        rewrite_map: Dict[ex.Expr, ex.Expr] = {}
        for slot, group_expr in enumerate(group_exprs):
            rewrite_map[group_expr] = ex.SlotRef(slot)
        for slot, agg in enumerate(aggregates):
            rewrite_map[agg] = ex.SlotRef(len(group_exprs) + slot)

        post_scope = ex.Scope(outer=compiler.scope.outer)
        post_compiler = self.compiler(post_scope)
        return node, post_compiler, rewrite_map
