"""Query planning and execution.

The planner turns a parsed ``Select`` into a tree of plan nodes; each node
yields ``(values, label, ilabel)`` triples.  Query by Label is enforced at
the bottom of this tree, in the scan nodes, mirroring the paper's design
decision (section 7.1): visibility — MVCC *and* label confinement — is
decided "at the layer that reads and writes tuples in tables", so nothing
a higher layer does can surface a tuple the process may not see.

Label flow through operators:

* scans emit the tuple's label (stripped of any enclosing declassifying
  view's tags);
* joins emit the union of the joined rows' labels;
* aggregation emits the union of the group's labels;
* projection/sort/limit pass labels through.

Because scans filter to ``LT ⊆ LP``, every emitted label is covered by
the process label — reading query results never contaminates the process
(that is the point of Query by Label, section 4.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..core.rules import covers, strip
from ..errors import AuthorityError, CatalogError, DatabaseError
from ..sql import ast
from . import expressions as ex
from .catalog import Catalog, ViewDef
from .storage import Table

ExecRow = Tuple[list, Label, Label]          # (values, label, ilabel)


class ExecContext:
    """Per-execution state threaded through plan nodes and expressions."""

    __slots__ = ("session", "params", "outer_stack", "read_label",
                 "read_ilabel", "principal", "registry", "authority",
                 "ifc_enabled")

    def __init__(self, session, params: tuple, read_label: Label,
                 read_ilabel: Label, principal: Optional[int]):
        self.session = session
        self.params = params
        self.outer_stack: list = []
        self.read_label = read_label
        self.read_ilabel = read_ilabel
        self.principal = principal
        self.authority = session.db.authority
        self.registry = self.authority.tags
        self.ifc_enabled = session.db.ifc_enabled

    def now(self) -> float:
        return self.session.db.clock()


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

class Plan:
    """Base class: a pull-based operator producing ExecRows."""

    def rows(self, ctx: ExecContext) -> Iterator[ExecRow]:
        raise NotImplementedError


class SingleRow(Plan):
    """SELECT without FROM: one empty input row."""

    def rows(self, ctx):
        yield [], EMPTY_LABEL, EMPTY_LABEL


class Scan(Plan):
    """Label-filtered, MVCC-filtered scan of a base table.

    ``declass`` is the union of tags declassified by enclosing
    declassifying views; ``view_grants`` lists (view, tags) pairs whose
    authority must be re-validated at execution time.  Emitted rows carry
    the *stripped* label, and visibility requires the stripped label to
    be covered by the process label — an invisible tuple stays invisible
    no matter what the query looks like.
    """

    def __init__(self, table: Table, predicate: Optional[Callable],
                 declass: Label, view_grants: List[Tuple[ViewDef, Label]]):
        self.table = table
        self.predicate = predicate
        self.declass = declass
        self.view_grants = view_grants

    def _check_view_authority(self, ctx: ExecContext) -> None:
        for view, tags in self.view_grants:
            for tag_id in tags:
                if not ctx.authority.has_authority(view.principal, tag_id):
                    raise AuthorityError(
                        "declassifying view %r lost authority for tag %d "
                        "(revoked?)" % (view.name, tag_id))

    def _candidates(self, ctx: ExecContext):
        return self.table.all_versions()

    def rows(self, ctx):
        if ctx.ifc_enabled and self.view_grants:
            self._check_view_authority(ctx)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        predicate = self.predicate
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        for version in self._candidates(ctx):
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            if check_labels:
                label = version.label
                if declass:
                    label = strip(registry, label, declass)
                if not covers(registry, label, read_label):
                    continue
            else:
                label = version.label
            values = list(version.values)
            values.append(label)
            if predicate is not None:
                if not predicate(values, ctx):
                    continue
            yield values, label, version.ilabel


class IndexScan(Scan):
    """Scan driven by an index lookup; key computed per execution."""

    def __init__(self, table: Table, index, key_fns: List[Callable],
                 predicate: Optional[Callable], declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]]):
        super().__init__(table, predicate, declass, view_grants)
        self.index = index
        self.key_fns = key_fns

    def _candidates(self, ctx):
        key = tuple(fn([], ctx) for fn in self.key_fns)
        if any(k is None for k in key):
            return iter(())
        return self.table.versions_for_tids(self.index.lookup(key))


class Filter(Plan):
    def __init__(self, child: Plan, predicate: Callable):
        self.child = child
        self.predicate = predicate

    def rows(self, ctx):
        predicate = self.predicate
        for values, label, ilabel in self.child.rows(ctx):
            if predicate(values, ctx):
                yield values, label, ilabel


class NestedLoopJoin(Plan):
    """Generic join; materializes the right side once per execution."""

    def __init__(self, left: Plan, right: Plan, kind: str,
                 on: Optional[Callable], right_width: int):
        self.left = left
        self.right = right
        self.kind = kind
        self.on = on
        self.right_width = right_width

    def rows(self, ctx):
        right_rows = list(self.right.rows(ctx))
        on = self.on
        outer = self.kind == "left"
        pad = [None] * self.right_width
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            matched = False
            for rvalues, rlabel, rilabel in right_rows:
                combined = lvalues + rvalues
                if on is not None and not on(combined, ctx):
                    continue
                matched = True
                yield (combined, llabel.union(rlabel),
                       lilabel.union(rilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class IndexLoopJoin(Plan):
    """Join where the inner side is a base-table index lookup.

    The key functions reference only left-side columns (checked at plan
    time), so they are evaluated against the left row padded to full
    width.  Residual ON conditions are applied to the combined row.
    """

    def __init__(self, left: Plan, table: Table, index,
                 key_fns: List[Callable], residual: Optional[Callable],
                 kind: str, declass: Label,
                 view_grants: List[Tuple[ViewDef, Label]],
                 right_width: int):
        self.left = left
        self.table = table
        self.index = index
        self.key_fns = key_fns
        self.residual = residual
        self.kind = kind
        self.declass = declass
        self.view_grants = view_grants
        self.right_width = right_width

    def rows(self, ctx):
        if ctx.ifc_enabled and self.view_grants:
            for view, tags in self.view_grants:
                for tag_id in tags:
                    if not ctx.authority.has_authority(view.principal, tag_id):
                        raise AuthorityError(
                            "declassifying view %r lost authority"
                            % view.name)
        session = ctx.session
        txn = session.transaction
        txn_manager = session.db.txn_manager
        table = self.table
        registry = ctx.registry
        read_label = ctx.read_label
        declass = self.declass
        check_labels = ctx.ifc_enabled
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        key_fns = self.key_fns
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            probe = lvalues + pad
            key = tuple(fn(probe, ctx) for fn in key_fns)
            matched = False
            if not any(k is None for k in key):
                for version in table.versions_for_tids(
                        self.index.lookup(key)):
                    table.touch(version)
                    if not txn_manager.visible(version, txn):
                        continue
                    label = version.label
                    if check_labels:
                        if declass:
                            label = strip(registry, label, declass)
                        if not covers(registry, label, read_label):
                            continue
                    rvalues = list(version.values)
                    rvalues.append(label)
                    combined = lvalues + rvalues
                    if residual is not None and not residual(combined, ctx):
                        continue
                    matched = True
                    yield (combined, llabel.union(label),
                           lilabel.union(version.ilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class HashJoin(Plan):
    """Equi-join: hash the right side, probe with left rows."""

    def __init__(self, left: Plan, right: Plan, left_key_fns: List[Callable],
                 right_key_fns: List[Callable], residual: Optional[Callable],
                 kind: str, right_width: int, left_width: int):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.residual = residual
        self.kind = kind
        self.right_width = right_width
        self.left_width = left_width

    def rows(self, ctx):
        buckets: Dict[tuple, list] = {}
        pad_left = [None] * self.left_width
        for rvalues, rlabel, rilabel in self.right.rows(ctx):
            probe = pad_left + rvalues
            key = tuple(fn(probe, ctx) for fn in self.right_key_fns)
            if any(k is None for k in key):
                continue
            buckets.setdefault(key, []).append((rvalues, rlabel, rilabel))
        residual = self.residual
        outer = self.kind == "left"
        pad = [None] * self.right_width
        for lvalues, llabel, lilabel in self.left.rows(ctx):
            probe = lvalues + pad
            key = tuple(fn(probe, ctx) for fn in self.left_key_fns)
            matched = False
            if not any(k is None for k in key):
                for rvalues, rlabel, rilabel in buckets.get(key, ()):
                    combined = lvalues + rvalues
                    if residual is not None and not residual(combined, ctx):
                        continue
                    matched = True
                    yield (combined, llabel.union(rlabel),
                           lilabel.union(rilabel))
            if outer and not matched:
                yield lvalues + pad, llabel, lilabel


class AggSpec:
    """One aggregate computation: function, argument, distinct flag."""

    __slots__ = ("func", "arg_fn", "distinct")

    def __init__(self, func: str, arg_fn: Optional[Callable], distinct: bool):
        self.func = func
        self.arg_fn = arg_fn
        self.distinct = distinct


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("func", "distinct", "seen", "count", "total", "best")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.seen = set() if distinct else None
        self.count = 0
        self.total = None
        self.best = None

    def add(self, value) -> None:
        if self.func == "COUNT" and value is _STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "MIN":
            if self.best is None or value < self.best:
                self.best = value
        elif self.func == "MAX":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.best


_STAR = object()


class AggregateNode(Plan):
    """GROUP BY + aggregate evaluation.

    Output rows are ``group_key_values + aggregate_results``; downstream
    expressions were rewritten by the planner to slot references.
    """

    def __init__(self, child: Plan, group_fns: List[Callable],
                 specs: List[AggSpec], global_agg: bool):
        self.child = child
        self.group_fns = group_fns
        self.specs = specs
        self.global_agg = global_agg

    def rows(self, ctx):
        groups: Dict[tuple, list] = {}
        labels: Dict[tuple, Label] = {}
        ilabels: Dict[tuple, Label] = {}
        order: List[tuple] = []
        group_fns = self.group_fns
        specs = self.specs
        for values, label, ilabel in self.child.rows(ctx):
            key = tuple(fn(values, ctx) for fn in group_fns)
            states = groups.get(key)
            if states is None:
                states = [_AggState(s.func, s.distinct) for s in specs]
                groups[key] = states
                labels[key] = label
                ilabels[key] = ilabel
                order.append(key)
            else:
                labels[key] = labels[key].union(label)
                ilabels[key] = ilabels[key].union(ilabel)
            for spec, state in zip(specs, states):
                if spec.arg_fn is None:
                    state.add(_STAR)
                else:
                    state.add(spec.arg_fn(values, ctx))
        if not groups and self.global_agg:
            states = [_AggState(s.func, s.distinct) for s in specs]
            yield ([] + [s.result() for s in states], EMPTY_LABEL,
                   EMPTY_LABEL)
            return
        for key in order:
            states = groups[key]
            yield (list(key) + [s.result() for s in states], labels[key],
                   ilabels[key])


class Project(Plan):
    def __init__(self, child: Plan, fns: List[Callable]):
        self.child = child
        self.fns = fns

    def rows(self, ctx):
        fns = self.fns
        for values, label, ilabel in self.child.rows(ctx):
            yield [fn(values, ctx) for fn in fns], label, ilabel


class Sort(Plan):
    """ORDER BY; NULLs sort last ascending, first descending."""

    def __init__(self, child: Plan, key_fns: List[Callable],
                 descending: List[bool]):
        self.child = child
        self.key_fns = key_fns
        self.descending = descending

    def rows(self, ctx):
        rows = list(self.child.rows(ctx))
        # Stable multi-key sort: apply keys from last to first.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            def sort_key(row, fn=fn):
                value = fn(row[0], ctx)
                return (value is None, value)
            rows.sort(key=sort_key, reverse=desc)
        return iter(rows)


class Distinct(Plan):
    def __init__(self, child: Plan):
        self.child = child

    def rows(self, ctx):
        seen = set()
        for values, label, ilabel in self.child.rows(ctx):
            key = tuple(values)
            if key in seen:
                continue
            seen.add(key)
            yield values, label, ilabel


class Limit(Plan):
    def __init__(self, child: Plan, limit_fn: Optional[Callable],
                 offset_fn: Optional[Callable]):
        self.child = child
        self.limit_fn = limit_fn
        self.offset_fn = offset_fn

    def rows(self, ctx):
        limit = self.limit_fn([], ctx) if self.limit_fn else None
        offset = self.offset_fn([], ctx) if self.offset_fn else 0
        produced = 0
        skipped = 0
        for row in self.child.rows(ctx):
            if skipped < (offset or 0):
                skipped += 1
                continue
            if limit is not None and produced >= limit:
                return
            produced += 1
            yield row


class DeterministicOrder(Plan):
    """Countermeasure for the tuple-allocation channel (section 7.3).

    Orders rows by a deterministic function of their values so heap
    placement cannot leak the relative order of modifications.  The
    prototype leaves this off by default; the engine exposes it as the
    ``deterministic_order`` flag.
    """

    def __init__(self, child: Plan):
        self.child = child

    def rows(self, ctx):
        rows = list(self.child.rows(ctx))
        rows.sort(key=lambda row: tuple(
            (v is None, str(type(v).__name__), str(v)) for v in row[0]))
        return iter(rows)


# ---------------------------------------------------------------------------
# Prepared select
# ---------------------------------------------------------------------------

class PreparedSelect:
    """A planned SELECT: the plan tree plus output column names."""

    def __init__(self, plan: Plan, columns: List[str]):
        self.plan = plan
        self.columns = columns


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

def _collect_columns(node: ex.Expr, out: List[ex.ColumnRef],
                     opaque: List[bool]) -> None:
    """Collect column references; mark opaque if subqueries are present."""
    if isinstance(node, ex.ColumnRef):
        out.append(node)
        return
    if isinstance(node, (ex.Exists, ex.InSelect, ex.ScalarSelect)):
        opaque[0] = True
        if isinstance(node, ex.InSelect):
            _collect_columns(node.operand, out, opaque)
        return
    for attr in getattr(node, "__slots__", ()):
        child = getattr(node, attr)
        if isinstance(child, ex.Expr):
            _collect_columns(child, out, opaque)
        elif isinstance(child, tuple):
            for item in child:
                if isinstance(item, ex.Expr):
                    _collect_columns(item, out, opaque)
                elif isinstance(item, tuple) and len(item) == 2:
                    for x in item:
                        if isinstance(x, ex.Expr):
                            _collect_columns(x, out, opaque)


def _split_conjuncts(node: Optional[ex.Expr]) -> List[ex.Expr]:
    if node is None:
        return []
    if isinstance(node, ex.And):
        result = []
        for item in node.items:
            result.extend(_split_conjuncts(item))
        return result
    return [node]


class _FromEntry:
    """Planner bookkeeping for one FROM item."""

    __slots__ = ("alias", "plan", "width", "columns", "local_scope",
                 "table", "declass", "view_grants", "join_kind", "join_on")

    def __init__(self):
        self.table = None
        self.declass = EMPTY_LABEL
        self.view_grants = []
        self.join_kind = "inner"
        self.join_on = None


class Planner:
    """Plans SELECT/UPDATE/DELETE against the current catalog."""

    def __init__(self, catalog: Catalog, registry):
        self.catalog = catalog
        self.registry = registry

    # -- public entry points -------------------------------------------------
    def plan_select(self, select: ast.Select,
                    outer_scope: Optional[ex.Scope] = None) -> PreparedSelect:
        return self._plan_select(select, outer_scope, EMPTY_LABEL, [])

    def compiler(self, scope: ex.Scope) -> ex.ExprCompiler:
        return ex.ExprCompiler(scope, catalog=self.catalog, planner=self)

    # -- FROM items -----------------------------------------------------------
    def _flatten_from(self, items: List[ast.FromItem]) -> List[Tuple]:
        """Flatten the FROM clause into a left-deep join sequence.

        Returns [(item, kind, on_expr)]; the first entry's kind/on are
        ignored.  Explicit JOIN trees are flattened left-to-right, which
        is valid for inner and left joins in a left-deep evaluation.
        """
        sequence: List[Tuple] = []

        def walk(item, kind="inner", on=None):
            if isinstance(item, ast.Join):
                walk(item.left, kind, on)
                walk(item.right, item.kind, item.on)
            else:
                sequence.append((item, kind, on))

        for index, item in enumerate(items):
            walk(item, "inner", None)
        return sequence

    def _entry_for(self, item, declass_in: Label,
                   grants_in: List) -> _FromEntry:
        """Resolve one FROM item to a plannable entry (table/view/subquery)."""
        entry = _FromEntry()
        if isinstance(item, ast.TableRef):
            name = item.name
            if self.catalog.is_view(name):
                view = self.catalog.get_view(name)
                entry.alias = item.effective_alias
                entry.columns = list(view.columns)
                declass = declass_in
                grants = list(grants_in)
                if view.is_declassifying:
                    declass = declass_in.union(view.declassify)
                    grants = grants + [(view, view.declassify)]
                inner = self._plan_select_core(view.select, None, declass,
                                               grants)
                entry.plan = _ViewPlan(inner.plan)
                entry.width = len(view.columns) + 1
                return entry
            table = self.catalog.get_table(name)
            entry.alias = item.effective_alias
            entry.table = table
            entry.columns = table.schema.column_names
            entry.width = len(entry.columns) + 1
            entry.declass = declass_in
            entry.view_grants = list(grants_in)
            entry.plan = None        # built later, after predicate pushdown
            return entry
        if isinstance(item, ast.SubqueryRef):
            inner = self._plan_select_core(item.select, None, declass_in,
                                           list(grants_in))
            entry.alias = item.alias
            entry.columns = list(inner.columns)
            entry.plan = _ViewPlan(inner.plan)
            entry.width = len(entry.columns) + 1
            return entry
        raise DatabaseError("unsupported FROM item %r" % (item,))

    # -- core select planning ---------------------------------------------
    def _plan_select(self, select, outer_scope, declass, grants):
        return self._plan_select_core(select, outer_scope, declass, grants)

    def _plan_select_core(self, select: ast.Select,
                          outer_scope: Optional[ex.Scope],
                          declass: Label, grants: List) -> PreparedSelect:
        if not select.from_items:
            return self._plan_no_from(select, outer_scope)

        sequence = self._flatten_from(select.from_items)
        entries: List[_FromEntry] = []
        scope = ex.Scope(outer=outer_scope)
        for item, kind, on in sequence:
            entry = self._entry_for(item, declass, grants)
            entry.join_kind = kind
            entry.join_on = on
            if any(e.alias == entry.alias for e in entries):
                raise CatalogError("duplicate table alias %r" % entry.alias)
            entries.append(entry)
            scope.add_table(entry.alias, entry.columns)

        compiler = self.compiler(scope)

        # Classify WHERE conjuncts by which FROM entries they touch.
        conjuncts = _split_conjuncts(select.where)
        entry_index = {e.alias: i for i, e in enumerate(entries)}
        pushed: List[List[ex.Expr]] = [[] for _ in entries]
        join_extra: List[List[ex.Expr]] = [[] for _ in entries]
        residual_where: List[ex.Expr] = []
        for conjunct in conjuncts:
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            _collect_columns(conjunct, refs, opaque)
            touched = set()
            local_only = True
            for ref in refs:
                depth, index = scope.resolve_depth(ref.name, ref.table)
                if depth > 0:
                    local_only = False
                    continue
                alias = scope.entries[index][0]
                touched.add(entry_index[alias])
            if opaque[0] or not local_only:
                residual_where.append(conjunct)
            elif len(touched) == 1:
                target = touched.pop()
                # Cannot push below a LEFT JOIN's nullable side.
                if entries[target].join_kind == "left":
                    residual_where.append(conjunct)
                else:
                    pushed[target].append(conjunct)
            elif touched:
                latest = max(touched)
                join_extra[latest].append(conjunct)
            else:
                residual_where.append(conjunct)

        # Build the base plan for entry 0.
        plan = self._build_entry_plan(entries[0], pushed[0], scope, compiler)
        left_width = entries[0].width

        # Join the remaining entries left-deep.
        for i in range(1, len(entries)):
            entry = entries[i]
            on_conjuncts = _split_conjuncts(entry.join_on)
            if entry.join_kind == "inner":
                on_conjuncts = on_conjuncts + join_extra[i]
            plan = self._build_join(plan, left_width, entries, i,
                                    on_conjuncts, pushed[i], scope, compiler)
            left_width += entry.width
            if entry.join_kind == "left" and join_extra[i]:
                # Multi-table WHERE conjuncts touching a left join's right
                # side must filter *after* the join.
                for conjunct in join_extra[i]:
                    plan = Filter(plan, compiler.compile(conjunct))

        for conjunct in residual_where:
            plan = Filter(plan, compiler.compile(conjunct))

        return self._finish_select(select, plan, scope, compiler)

    def _plan_no_from(self, select: ast.Select,
                      outer_scope) -> PreparedSelect:
        scope = ex.Scope(outer=outer_scope)
        compiler = self.compiler(scope)
        plan: Plan = SingleRow()
        if select.where is not None:
            plan = Filter(plan, compiler.compile(select.where))
        return self._finish_select(select, plan, scope, compiler)

    # -- scans and joins -------------------------------------------------
    def _build_entry_plan(self, entry: _FromEntry, pushed: List[ex.Expr],
                          scope_full: ex.Scope,
                          compiler_full: ex.ExprCompiler) -> Plan:
        if entry.plan is not None:       # view or subquery, already planned
            plan = entry.plan
            if pushed:
                local_scope, local_compiler = self._local_compiler(entry,
                                                                   scope_full)
                for conjunct in pushed:
                    plan = Filter(plan, local_compiler.compile(conjunct))
            return plan
        # Base table: try to turn pushed equality conjuncts into an index
        # scan.
        local_scope, local_compiler = self._local_compiler(entry, scope_full)
        table = entry.table
        eq_cols: Dict[str, ex.Expr] = {}
        rest: List[ex.Expr] = []
        for conjunct in pushed:
            col, value = self._constant_equality(conjunct, entry.alias,
                                                 local_scope)
            if col is not None and col not in eq_cols:
                eq_cols[col] = value
            else:
                rest.append(conjunct)
        index = None
        n_keys = 0
        if eq_cols:
            index, n_keys = self._best_index(table, set(eq_cols))
        if index is not None:
            key_columns = index.columns[:n_keys]
            covered = set(key_columns)
            key_fns = [local_compiler.compile(eq_cols[c])
                       for c in key_columns]
            residual = [c for c in pushed
                        if not self._covered_by(c, covered, entry.alias,
                                                local_scope, eq_cols)]
            predicate = self._conjunction(residual, local_compiler)
            return IndexScan(table, index, key_fns, predicate,
                             entry.declass, entry.view_grants)
        predicate = self._conjunction(pushed, local_compiler)
        return Scan(table, predicate, entry.declass, entry.view_grants)

    def _covered_by(self, conjunct, covered_cols, alias, local_scope,
                    eq_cols) -> bool:
        col, value = self._constant_equality(conjunct, alias, local_scope)
        return (col is not None and col in covered_cols
                and eq_cols.get(col) is value)

    def _local_compiler(self, entry: _FromEntry, scope_full: ex.Scope):
        local_scope = ex.Scope(outer=scope_full.outer)
        local_scope.add_table(entry.alias, entry.columns)
        return local_scope, self.compiler(local_scope)

    def _conjunction(self, conjuncts: List[ex.Expr],
                     compiler: ex.ExprCompiler) -> Optional[Callable]:
        if not conjuncts:
            return None
        if len(conjuncts) == 1:
            return compiler.compile(conjuncts[0])
        return compiler.compile(ex.And(conjuncts))

    def _constant_equality(self, conjunct, alias, local_scope):
        """Match ``col = constant-expr`` where the expr has no local
        column references.  Returns (column_name, value_expr) or (None,
        None)."""
        if not isinstance(conjunct, ex.Compare) or conjunct.op != "=":
            return None, None
        for col_side, val_side in ((conjunct.left, conjunct.right),
                                   (conjunct.right, conjunct.left)):
            if not isinstance(col_side, ex.ColumnRef):
                continue
            if col_side.name == "_label":
                continue
            if col_side.table is not None and col_side.table != alias:
                continue
            try:
                local_scope.resolve(col_side.name, col_side.table)
            except CatalogError:
                continue
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            _collect_columns(val_side, refs, opaque)
            if opaque[0]:
                continue
            local = False
            for ref in refs:
                try:
                    depth, _ = local_scope.resolve_depth(ref.name, ref.table)
                except CatalogError:
                    local = True   # unresolvable: play safe, don't push
                    break
                if depth == 0:
                    local = True
                    break
            if not local:
                return col_side.name, val_side
        return None, None

    def _best_index(self, table: Table, available: set):
        """Pick the best index for equality predicates on ``available``.

        Returns ``(index, n_key_columns)``.  A hash index needs every
        column covered; an ordered index can be probed on any covered
        *prefix* of its columns (B-tree-style).
        """
        from .indexes import OrderedIndex
        best = None
        best_len = 0
        for index in table.indexes.values():
            cols = index.columns
            if set(cols) <= available and len(cols) > best_len:
                best = index
                best_len = len(cols)
        if best is not None:
            return best, best_len
        for index in table.indexes.values():
            if not isinstance(index, OrderedIndex):
                continue
            n = 0
            for col in index.columns:
                if col in available:
                    n += 1
                else:
                    break
            if n > best_len:
                best = index
                best_len = n
        return best, best_len

    def _build_join(self, left: Plan, left_width: int,
                    entries: List[_FromEntry], i: int,
                    on_conjuncts: List[ex.Expr], pushed: List[ex.Expr],
                    scope: ex.Scope, compiler: ex.ExprCompiler) -> Plan:
        entry = entries[i]
        kind = entry.join_kind
        left_aliases = {e.alias for e in entries[:i]}

        # Find equi-join conditions: right.col = expr(left side only).
        eq_pairs: List[Tuple[str, ex.Expr]] = []   # (right col, left expr)
        residual: List[ex.Expr] = []
        for conjunct in on_conjuncts:
            pair = self._equi_pair(conjunct, entry, left_aliases, scope)
            if pair is not None:
                eq_pairs.append(pair)
            else:
                residual.append(conjunct)

        residual_fn = self._conjunction(residual, compiler)

        if entry.table is not None and eq_pairs and kind in ("inner", "left"):
            index, n_keys = self._best_index(entry.table,
                                             {c for c, _ in eq_pairs})
            if index is not None:
                key_columns = index.columns[:n_keys]
                by_col = dict(eq_pairs)
                key_fns = [compiler.compile(by_col[c])
                           for c in key_columns]
                # Conditions on indexed cols already consumed; the rest
                # (including pushed single-table predicates) become
                # residual on the combined row.
                leftovers = [ex.Compare("=",
                                        ex.ColumnRef(c, entry.alias),
                                        by_col[c])
                             for c, _ in eq_pairs
                             if c not in key_columns]
                extra = leftovers + (pushed if kind == "inner" else [])
                if kind == "left" and pushed:
                    raise DatabaseError(
                        "internal: predicates pushed below a left join")
                full_residual = self._conjunction(residual + extra, compiler)
                return IndexLoopJoin(left, entry.table, index, key_fns,
                                     full_residual, kind, entry.declass,
                                     entry.view_grants, entry.width)

        right_plan = self._build_entry_plan(entry, pushed, scope, compiler)
        if eq_pairs:
            left_key_fns = [compiler.compile(e) for _, e in eq_pairs]
            right_key_fns = [compiler.compile(ex.ColumnRef(c, entry.alias))
                             for c, _ in eq_pairs]
            return HashJoin(left, right_plan, left_key_fns, right_key_fns,
                            residual_fn, kind, entry.width, left_width)
        return NestedLoopJoin(left, right_plan, kind, residual_fn,
                              entry.width)

    def _equi_pair(self, conjunct, entry: _FromEntry, left_aliases: set,
                   scope: ex.Scope):
        """Match ``right.col = expr(left)`` (either side order)."""
        if not isinstance(conjunct, ex.Compare) or conjunct.op != "=":
            return None
        for col_side, other in ((conjunct.left, conjunct.right),
                                (conjunct.right, conjunct.left)):
            if not isinstance(col_side, ex.ColumnRef):
                continue
            if col_side.name == "_label":
                continue
            # The column must belong to the right entry.
            try:
                depth, index = scope.resolve_depth(col_side.name,
                                                   col_side.table)
            except CatalogError:
                continue
            if depth != 0 or scope.entries[index][0] != entry.alias:
                continue
            # The other side must reference only left-side aliases (or
            # outer scopes / params / literals).
            refs: List[ex.ColumnRef] = []
            opaque = [False]
            _collect_columns(other, refs, opaque)
            if opaque[0]:
                continue
            ok = True
            for ref in refs:
                depth_r, index_r = scope.resolve_depth(ref.name, ref.table)
                if depth_r == 0 and scope.entries[index_r][0] not in \
                        left_aliases:
                    ok = False
                    break
            if ok:
                return (col_side.name, other)
        return None

    # -- select list, grouping, ordering ------------------------------------
    def _expand_items(self, select: ast.Select,
                      scope: ex.Scope) -> List[Tuple[ex.Expr, str]]:
        """Expand ``*`` and name the output columns."""
        items: List[Tuple[ex.Expr, str]] = []
        for item in select.items:
            if isinstance(item.expr, ex.Star):
                positions = scope.star_positions(item.expr.table)
                names = scope.star_names(item.expr.table)
                for pos, name in zip(positions, names):
                    items.append((ex.SlotRef(pos), name))
            else:
                name = item.alias or self._default_name(item.expr)
                items.append((item.expr, name))
        return items

    @staticmethod
    def _default_name(expr: ex.Expr) -> str:
        if isinstance(expr, ex.ColumnRef):
            return expr.name
        if isinstance(expr, ex.FuncCall):
            return expr.name.lower()
        if isinstance(expr, ex.Aggregate):
            return expr.func.lower()
        return "?column?"

    def _finish_select(self, select: ast.Select, plan: Plan,
                       scope: ex.Scope,
                       compiler: ex.ExprCompiler) -> PreparedSelect:
        items = self._expand_items(select, scope)
        names = [name for _, name in items]
        has_aggregates = (bool(select.group_by)
                          or any(ex.contains_aggregate(expr)
                                 for expr, _ in items)
                          or (select.having is not None
                              and ex.contains_aggregate(select.having)))

        if has_aggregates:
            plan, post_compiler, rewrite_map = self._plan_aggregation(
                select, plan, scope, compiler, items)
            out_fns = [post_compiler.compile(ex.rewrite(expr, rewrite_map))
                       for expr, _ in items]
            if select.having is not None:
                having_fn = post_compiler.compile(
                    ex.rewrite(select.having, rewrite_map))
                plan = Filter(plan, having_fn)
            order_compiler = post_compiler
            order_rewrite = rewrite_map
        else:
            out_fns = [compiler.compile(expr) for expr, _ in items]
            if select.having is not None:
                raise DatabaseError("HAVING requires GROUP BY or aggregates")
            order_compiler = compiler
            order_rewrite = {}

        # ORDER BY before projection (so it can reference input columns),
        # with support for output aliases and 1-based positions.
        if select.order_by:
            key_fns = []
            descending = []
            for order_item in select.order_by:
                expr = order_item.expr
                resolved = self._resolve_order_expr(expr, items, names)
                key_fns.append(order_compiler.compile(
                    ex.rewrite(resolved, order_rewrite)))
                descending.append(order_item.descending)
            plan = Sort(plan, key_fns, descending)

        plan = Project(plan, out_fns)
        if select.distinct:
            plan = Distinct(plan)
        if select.limit is not None or select.offset is not None:
            limit_fn = (compiler.compile(select.limit)
                        if select.limit is not None else None)
            offset_fn = (compiler.compile(select.offset)
                         if select.offset is not None else None)
            plan = Limit(plan, limit_fn, offset_fn)
        return PreparedSelect(plan, names)

    def _resolve_order_expr(self, expr, items, names):
        if isinstance(expr, ex.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(items):
                raise DatabaseError(
                    "ORDER BY position %d out of range" % position)
            return items[position - 1][0]
        if isinstance(expr, ex.ColumnRef) and expr.table is None:
            if expr.name in names:
                return items[names.index(expr.name)][0]
        return expr

    def _plan_aggregation(self, select, plan, scope, compiler, items):
        group_exprs = list(select.group_by)
        aggregates: List[ex.Aggregate] = []
        for expr, _name in items:
            ex.collect_aggregates(expr, aggregates)
        if select.having is not None:
            ex.collect_aggregates(select.having, aggregates)
        for order_item in select.order_by:
            ex.collect_aggregates(order_item.expr, aggregates)

        group_fns = [compiler.compile(g) for g in group_exprs]
        specs = []
        for agg in aggregates:
            arg_fn = compiler.compile(agg.arg) if agg.arg is not None else None
            specs.append(AggSpec(agg.func, arg_fn, agg.distinct))

        node = AggregateNode(plan, group_fns, specs,
                             global_agg=not group_exprs)

        # Post-aggregation rows: group values then aggregate results.
        rewrite_map: Dict[ex.Expr, ex.Expr] = {}
        for slot, group_expr in enumerate(group_exprs):
            rewrite_map[group_expr] = ex.SlotRef(slot)
        for slot, agg in enumerate(aggregates):
            rewrite_map[agg] = ex.SlotRef(len(group_exprs) + slot)

        post_scope = ex.Scope(outer=scope.outer)
        post_compiler = self.compiler(post_scope)
        return node, post_compiler, rewrite_map


class _ViewPlan(Plan):
    """Adapts a planned view/subquery: appends the row label as the
    ``_label`` pseudo-column so outer scopes can reference it."""

    def __init__(self, inner: Plan):
        self.inner = inner

    def rows(self, ctx):
        for values, label, ilabel in self.inner.rows(ctx):
            yield values + [label], label, ilabel
