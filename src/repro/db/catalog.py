"""The catalog: tables, views, functions, procedures, and triggers.

IFDB-specific catalog objects:

* **Declassifying views** (section 4.3) carry a bound declassification
  label and the principal whose authority backs it; creation requires the
  creator to hold that authority, and every use re-checks it (so revoking
  the creator's authority disables the view).
* **Stored authority closures** (sections 3.3, 4.3): procedures and
  triggers may be bound to a principal; when they run, they run with that
  principal's authority instead of the caller's.

The catalog carries a version counter so prepared-plan caches can
invalidate on DDL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..errors import CatalogError
from .schema import TableSchema
from .storage import Table

BEFORE = "before"
AFTER = "after"
DEFERRED = "deferred"

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"


@dataclass
class ViewDef:
    """A view; ``declassify`` non-empty makes it a declassifying view."""

    name: str
    select: object                        # parsed Select statement
    columns: List[str]                    # output column names
    declassify: Label = EMPTY_LABEL
    principal: Optional[int] = None       # authority backing the declassify

    @property
    def is_declassifying(self) -> bool:
        return len(self.declassify) > 0


@dataclass
class FunctionDef:
    """A scalar function callable from SQL expressions.

    ``needs_context=True`` functions receive the execution context as
    their first argument (giving access to the session and registry).
    """

    name: str
    fn: Callable
    needs_context: bool = False


@dataclass
class ProcedureDef:
    """A stored procedure; ``closure_principal`` makes it an authority
    closure (it runs with that principal's authority, section 4.3)."""

    name: str
    fn: Callable
    closure_principal: Optional[int] = None


@dataclass
class TriggerDef:
    """A trigger (section 5.2.3).

    Ordinary triggers run with the authority (and label) of the process
    whose statement fired them.  Closure triggers run with the bound
    principal's authority in an isolated label context seeded with the
    statement label, so their contamination does not flow back into the
    firing process.  ``DEFERRED`` triggers run at commit with the label
    of the *statement*, never the commit label.
    """

    name: str
    table: str
    events: FrozenSet[str]
    timing: str
    fn: Callable
    closure_principal: Optional[int] = None


class Catalog:
    """All schema objects of one database."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        self.views: Dict[str, ViewDef] = {}
        self.functions: Dict[str, FunctionDef] = {}
        self.procedures: Dict[str, ProcedureDef] = {}
        self.triggers: Dict[str, TriggerDef] = {}
        self._triggers_by_table: Dict[str, List[TriggerDef]] = {}
        # referencing-table lookup for FK restrict checks:
        # referenced table -> [(referencing table name, fk)]
        self._referencing: Dict[str, List[Tuple[str, object]]] = {}
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    # -- tables -------------------------------------------------------
    def add_table(self, table: Table) -> None:
        name = table.name
        if name in self.tables or name in self.views:
            raise CatalogError("relation %r already exists" % name)
        for fk in table.schema.foreign_keys:
            ref = self.get_table(fk.ref_table)
            for col in fk.ref_columns:
                ref.schema.position(col)
            if not any(set(u.columns) == set(fk.ref_columns)
                       for u in ref.schema.uniques):
                raise CatalogError(
                    "foreign key %r references %s(%s) which is not unique"
                    % (fk.name, fk.ref_table, ", ".join(fk.ref_columns)))
            self._referencing.setdefault(fk.ref_table, []).append((name, fk))
        self.tables[name] = table
        self._bump()

    def get_table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError("table %r does not exist" % name) from None

    def drop_table(self, name: str) -> None:
        table = self.get_table(name)
        if self._referencing.get(name):
            raise CatalogError(
                "cannot drop %r: other tables reference it" % name)
        for fk in table.schema.foreign_keys:
            refs = self._referencing.get(fk.ref_table, [])
            self._referencing[fk.ref_table] = [
                (t, f) for t, f in refs if t != name]
        del self.tables[name]
        self._triggers_by_table.pop(name, None)
        self.triggers = {k: v for k, v in self.triggers.items()
                         if v.table != name}
        self._bump()

    def referencing_foreign_keys(self, table_name: str):
        """Foreign keys in other tables that reference ``table_name``."""
        return self._referencing.get(table_name, [])

    # -- views -----------------------------------------------------------
    def add_view(self, view: ViewDef) -> None:
        if view.name in self.tables or view.name in self.views:
            raise CatalogError("relation %r already exists" % view.name)
        self.views[view.name] = view
        self._bump()

    def get_view(self, name: str) -> ViewDef:
        try:
            return self.views[name]
        except KeyError:
            raise CatalogError("view %r does not exist" % name) from None

    def drop_view(self, name: str) -> None:
        self.get_view(name)
        del self.views[name]
        self._bump()

    def is_view(self, name: str) -> bool:
        return name in self.views

    def relation_exists(self, name: str) -> bool:
        return name in self.tables or name in self.views

    # -- functions / procedures ---------------------------------------------
    def add_function(self, fn_def: FunctionDef) -> None:
        key = fn_def.name.upper()
        if key in self.functions:
            raise CatalogError("function %r already exists" % fn_def.name)
        self.functions[key] = fn_def
        self._bump()

    def has_function(self, name: str) -> bool:
        return name.upper() in self.functions

    def get_function(self, name: str) -> FunctionDef:
        try:
            return self.functions[name.upper()]
        except KeyError:
            raise CatalogError("function %r does not exist" % name) from None

    def add_procedure(self, proc: ProcedureDef) -> None:
        if proc.name in self.procedures:
            raise CatalogError("procedure %r already exists" % proc.name)
        self.procedures[proc.name] = proc
        self._bump()

    def get_procedure(self, name: str) -> ProcedureDef:
        try:
            return self.procedures[name]
        except KeyError:
            raise CatalogError("procedure %r does not exist" % name) from None

    # -- triggers ---------------------------------------------------------
    def add_trigger(self, trigger: TriggerDef) -> None:
        if trigger.name in self.triggers:
            raise CatalogError("trigger %r already exists" % trigger.name)
        self.get_table(trigger.table)
        self.triggers[trigger.name] = trigger
        self._triggers_by_table.setdefault(trigger.table, []).append(trigger)
        self._bump()

    def triggers_for(self, table: str, event: str,
                     timing: str) -> List[TriggerDef]:
        return [t for t in self._triggers_by_table.get(table, ())
                if event in t.events and t.timing == timing]

    def drop_trigger(self, name: str) -> None:
        trigger = self.triggers.pop(name, None)
        if trigger is None:
            raise CatalogError("trigger %r does not exist" % name)
        self._triggers_by_table[trigger.table].remove(trigger)
        self._bump()
