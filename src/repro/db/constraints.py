"""Constraint enforcement under information flow control (section 5.2).

The interesting cases are the ones where naive enforcement would leak:

* **Uniqueness** (5.2.1): a conflict with a tuple the inserter *can see*
  raises; a conflict with an invisible higher-labelled tuple must NOT
  raise (that would reveal the tuple's existence) — the insert proceeds
  and the table is *polyinstantiated*.  Readers with higher labels see
  both tuples and treat the duplication as a mistake to clean up.
* **Foreign keys** (5.2.2): inserting a referencing tuple reveals the
  parent's existence, and deletes of parents reveal referencing tuples.
  The Foreign Key Rule requires the inserter to hold declassification
  authority for the symmetric difference of the two labels and to name
  those tags explicitly in a ``DECLASSIFYING`` clause.
* **Label constraints** (5.2.4): ``MATCH LABEL`` foreign keys pin a
  tuple's label to its parent's label (preventing polyinstantiation when
  combined with a uniqueness constraint), and ``LABEL CHECK`` expressions
  validate ``_label`` directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.labels import Label
from ..core.rules import covers, same_contamination, symmetric_difference
from ..errors import (
    AuthorityError,
    CheckViolation,
    ForeignKeyViolation,
    IFCViolation,
    LabelConstraintViolation,
    UniqueViolation,
)
from .expressions import ExprCompiler, Scope
from .schema import ForeignKeyConstraint, TableSchema
from .storage import Table


def _table_row_compiler(db, table: Table) -> ExprCompiler:
    """Compiler for expressions over one table's row (plus ``_label``)."""
    scope = Scope()
    scope.add_table(table.name, table.schema.column_names)
    return ExprCompiler(scope, catalog=db.catalog, planner=db.planner)


def compiled_checks(db, table: Table) -> List[Tuple[str, object]]:
    """Lazily compile and cache the table's CHECK constraint expressions."""
    cache = getattr(table, "_check_fns", None)
    if cache is None or getattr(table, "_check_version", -1) != \
            db.catalog.version:
        compiler = _table_row_compiler(db, table)
        cache = [(c.name, compiler.compile(c.expr))
                 for c in table.schema.checks]
        table._check_fns = cache
        table._check_version = db.catalog.version
    return cache


def compiled_label_checks(db, table: Table) -> List[Tuple[str, object]]:
    cache = getattr(table, "_label_check_fns", None)
    if cache is None or getattr(table, "_label_check_version", -1) != \
            db.catalog.version:
        compiler = _table_row_compiler(db, table)
        cache = [(c.name, compiler.compile(c.expr))
                 for c in table.schema.label_checks]
        table._label_check_fns = cache
        table._label_check_version = db.catalog.version
    return cache


def check_checks(db, ctx, table: Table, values: Tuple, label: Label) -> None:
    """CHECK constraints: NULL (unknown) passes, false fails (SQL rule)."""
    fns = compiled_checks(db, table)
    if not fns:
        return
    row = list(values) + [label]
    for name, fn in fns:
        result = fn(row, ctx)
        if result is not None and not result:
            raise CheckViolation(
                "row violates CHECK constraint %r on table %s"
                % (name, table.name))


def check_label_constraints(db, ctx, table: Table, values: Tuple,
                            label: Label) -> None:
    """LABEL CHECK constraints (section 5.2.4)."""
    fns = compiled_label_checks(db, table)
    if not fns:
        return
    row = list(values) + [label]
    for name, fn in fns:
        result = fn(row, ctx)
        if not result:           # NULL here is a constraint bug; fail closed
            raise LabelConstraintViolation(
                "label %r violates label constraint %r on table %s"
                % (label, name, table.name))


def check_unique(db, session, table: Table, values: Tuple, label: Label,
                 *, exclude_tid: Optional[int] = None) -> None:
    """Uniqueness with polyinstantiation (section 5.2.1).

    A conflicting tuple that is visible to the acting context (MVCC-live
    and label-covered) raises :class:`UniqueViolation`.  Conflicts hidden
    by labels are permitted silently; the table records how often this
    happened so tests and operators can observe polyinstantiation.
    """
    txn = session.transaction
    txn_manager = db.txn_manager
    acting = session.acting
    registry = db.authority.tags
    ifc = db.ifc_enabled
    for unique, index in table.unique_indexes:
        key = index.key_of(values)
        if any(k is None for k in key):       # SQL: NULLs never conflict
            continue
        for version in table.versions_for_tids(index.lookup(key)):
            if version.tid == exclude_tid:
                continue
            table.touch(version)
            if not txn_manager.visible(version, txn):
                continue
            if not ifc:
                raise UniqueViolation(
                    "duplicate key %r violates unique constraint %r"
                    % (key, unique.name))
            if covers(registry, version.label, acting.label):
                raise UniqueViolation(
                    "duplicate key %r violates unique constraint %r"
                    % (key, unique.name))
            # Invisible conflict: polyinstantiate rather than leak.
            table.polyinstantiation_count += 1


def _parent_candidates(db, session, fk: ForeignKeyConstraint,
                       key: Tuple) -> List:
    """MVCC-visible parent tuples matching the key, *ignoring labels*.

    The FK rule deliberately looks through labels: the whole point is to
    decide whether the inserter may learn of the parent's existence.
    """
    parent = db.catalog.get_table(fk.ref_table)
    index = parent.find_index(fk.ref_columns)
    txn = session.transaction
    txn_manager = db.txn_manager
    candidates = []
    if index is not None:
        versions = parent.versions_for_tids(index.lookup(key))
    else:
        positions = parent.schema.positions_of(fk.ref_columns)
        versions = (v for v in parent.all_versions()
                    if tuple(v.values[p] for p in positions) == key)
    for version in versions:
        parent.touch(version)
        if txn_manager.visible(version, txn):
            candidates.append(version)
    return candidates


def check_fk_insert(db, session, table: Table, values: Tuple, label: Label,
                    declassifying: Label) -> None:
    """The Foreign Key Rule (section 5.2.2) for inserts/updated children.

    For each foreign key: a parent must exist; and unless the child and
    parent labels carry the same contamination, the acting principal must
    have authority for every tag named in the DECLASSIFYING clause and
    the clause must cover the symmetric difference ``LA △ LB``.
    """
    if not table.schema.foreign_keys:
        return
    acting = session.acting
    registry = db.authority.tags
    authority = db.authority
    for fk in table.schema.foreign_keys:
        positions = table.schema.positions_of(fk.columns)
        key = tuple(values[p] for p in positions)
        if any(k is None for k in key):       # SQL: NULL FK is not checked
            continue
        candidates = _parent_candidates(db, session, fk, key)
        if not candidates:
            raise ForeignKeyViolation(
                "insert into %s violates foreign key %r: no row %r in %s"
                % (table.name, fk.name, key, fk.ref_table))
        if not db.ifc_enabled:
            continue
        last_error: Optional[Exception] = None
        satisfied = False
        for parent in candidates:
            if fk.match_label and not same_contamination(
                    registry, label, parent.label):
                last_error = LabelConstraintViolation(
                    "foreign key %r requires MATCH LABEL: child label %r "
                    "does not match parent label %r"
                    % (fk.name, label, parent.label))
                continue
            difference = symmetric_difference(label, parent.label)
            if not difference:
                satisfied = True
                break
            if not covers(registry, difference, declassifying):
                last_error = IFCViolation(
                    "foreign key %r links labels %r and %r; the tags in "
                    "their symmetric difference must be named in a "
                    "DECLASSIFYING clause (section 5.2.2)"
                    % (fk.name, label, parent.label))
                continue
            missing = [t for t in declassifying
                       if not authority.has_authority(acting.principal, t)]
            if missing:
                last_error = AuthorityError(
                    "DECLASSIFYING clause names tags %r but the acting "
                    "principal lacks authority for them"
                    % (registry.names(missing),))
                continue
            satisfied = True
            break
        if not satisfied:
            raise last_error if last_error is not None else \
                ForeignKeyViolation(
                    "foreign key %r could not be satisfied" % fk.name)


def check_fk_restrict(db, session, table: Table, old_values: Tuple) -> None:
    """RESTRICT semantics for deletes (and key updates) of parent rows.

    Referencing rows are found *ignoring labels*: the resulting failure
    may reveal their existence, which the Foreign Key Rule already made
    acceptable by charging the original inserter for the declassification
    (section 5.2.2's deletion discussion).
    """
    referencing = db.catalog.referencing_foreign_keys(table.name)
    if not referencing:
        return
    txn = session.transaction
    txn_manager = db.txn_manager
    for child_name, fk in referencing:
        child = db.catalog.get_table(child_name)
        parent_positions = table.schema.positions_of(fk.ref_columns)
        key = tuple(old_values[p] for p in parent_positions)
        index = child.find_index(fk.columns)
        if index is not None:
            versions = child.versions_for_tids(index.lookup(key))
        else:
            child_positions = child.schema.positions_of(fk.columns)
            versions = (v for v in child.all_versions()
                        if tuple(v.values[p] for p in child_positions) == key)
        for version in versions:
            child.touch(version)
            if txn_manager.visible(version, txn):
                raise ForeignKeyViolation(
                    "delete from %s would orphan rows in %s (foreign key %r)"
                    % (table.name, child_name, fk.name))
