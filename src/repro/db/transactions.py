"""Transactions: snapshot isolation, write sets, and commit labels.

The engine implements MVCC snapshot isolation like the PostgreSQL base
IFDB was built on (section 5.1): each transaction reads from a snapshot
taken at ``BEGIN`` and write-write conflicts abort the second writer
("first committer wins").  A ``SERIALIZABLE`` mode is also provided; under
it the *transaction clearance rule* applies (raising the process label
mid-transaction requires authority for the added tag).

The IFDB-specific machinery here is the **commit label** check: a
transaction may commit only if its label at the commit point is covered by
the label of every tuple in its write set.  This closes the covert channel
of section 5.1 (write low, read high, then abort-or-commit).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.labels import Label
from ..core.rules import may_commit
from ..errors import IFCViolation, TransactionError

IN_PROGRESS = "in_progress"
COMMITTED = "committed"
ABORTED = "aborted"

#: Isolation levels.
SNAPSHOT = "snapshot"          # PostgreSQL's default; what the prototype uses
SERIALIZABLE = "serializable"  # enables the clearance rule


class Snapshot:
    """The set of transaction effects visible to a transaction."""

    __slots__ = ("xmax", "in_progress", "min_in_progress")

    def __init__(self, xmax: int, in_progress: frozenset):
        self.xmax = xmax                  # first xid NOT visible
        self.in_progress = in_progress    # xids live when snapshot was taken
        #: Smallest in-flight xid at snapshot time (None when none were):
        #: any xmin below it is definitely not in ``in_progress``, which
        #: lets the batched executor's MVCC fast path avoid the set
        #: membership test per tuple (see ``committed_horizon``).
        self.min_in_progress = min(in_progress) if in_progress else None

    def sees_xid(self, xid: int, status: str) -> bool:
        """Did ``xid`` commit before this snapshot was taken?"""
        return (status == COMMITTED and xid < self.xmax
                and xid not in self.in_progress)


class WriteRecord:
    """One entry in a transaction's write set.

    Serves two consumers: the commit-label rule (``table``/``label``)
    and the write-ahead log (``tid``/``prev_tid``/``kind`` describe the
    heap effect so ``db/wal.py`` can serialize the transaction as one
    replayable record).  For updates ``tid`` is the *new* version and
    ``prev_tid`` the version whose ``xmax`` was stamped; replay needs
    both ends of the chain.
    """

    __slots__ = ("table", "tid", "label", "kind", "prev_tid")

    def __init__(self, table: str, tid: int, label: Label, kind: str,
                 prev_tid: Optional[int] = None):
        self.table = table
        self.tid = tid
        self.label = label
        self.kind = kind               # "insert" | "update" | "delete"
        self.prev_tid = prev_tid       # updates: the superseded version


class DeferredAction:
    """A trigger or constraint check postponed to commit time.

    Per section 5.2.3, deferred triggers must run with the label (and
    principal) of the *statement* that queued them, not the commit label,
    so both are captured here.
    """

    __slots__ = ("fn", "label", "ilabel", "principal", "description")

    def __init__(self, fn: Callable, label: Label, ilabel: Label,
                 principal: int, description: str = ""):
        self.fn = fn
        self.label = label
        self.ilabel = ilabel
        self.principal = principal
        self.description = description


class Transaction:
    """An open transaction."""

    def __init__(self, xid: int, snapshot: Snapshot, isolation: str):
        self.xid = xid
        self.snapshot = snapshot
        self.isolation = isolation
        self.write_set: List[WriteRecord] = []
        self.deferred: List[DeferredAction] = []
        self.status = IN_PROGRESS

    def record_write(self, table: str, tid: int, label: Label,
                     kind: str, prev_tid: Optional[int] = None) -> None:
        self.write_set.append(WriteRecord(table, tid, label, kind,
                                          prev_tid))

    def defer(self, action: DeferredAction) -> None:
        self.deferred.append(action)


class TransactionManager:
    """Assigns xids, tracks statuses, and takes snapshots."""

    def __init__(self):
        self._next_xid = 1
        self._status: Dict[int, str] = {}
        self._active: Set[int] = set()
        self.commits = 0
        #: Commits whose write set was non-empty.  Replayed transactions
        #: (``db/wal.py`` applies heap effects directly, bypassing
        #: ``record_write``) do not count, which is what lets
        #: ``Database.recover`` tell "fresh database, safe to replay"
        #: from "this database has written on its own".
        self.write_commits = 0
        self.aborts = 0
        self._committed_prefix = 1     # see committed_horizon()
        #: Aborted xids whose heap versions may still exist.  A full
        #: database vacuum removes every aborted-created version, so it
        #: clears this set (``aborted_reclaimed``), letting the
        #: committed horizon advance past old rollbacks.
        self._aborted_unreclaimed: Set[int] = set()

    # -- lifecycle -----------------------------------------------------
    def begin(self, isolation: str = SNAPSHOT) -> Transaction:
        xid = self._next_xid
        self._next_xid += 1
        self._status[xid] = IN_PROGRESS
        snapshot = Snapshot(xmax=xid, in_progress=frozenset(self._active))
        self._active.add(xid)
        return Transaction(xid, snapshot, isolation)

    def check_commit_label(self, txn: Transaction, commit_label: Label,
                           registry) -> None:
        """Enforce the commit-label rule (section 5.1)."""
        for record in txn.write_set:
            if not may_commit(registry, commit_label, record.label):
                raise IFCViolation(
                    "transaction commit label %r exceeds the label %r of a "
                    "tuple written to %s; the transaction may not commit"
                    % (commit_label, record.label, record.table))

    def commit(self, txn: Transaction) -> None:
        if txn.status != IN_PROGRESS:
            raise TransactionError("transaction %d is %s" % (txn.xid,
                                                             txn.status))
        txn.status = COMMITTED
        self._status[txn.xid] = COMMITTED
        self._active.discard(txn.xid)
        self.commits += 1
        if txn.write_set:
            self.write_commits += 1

    def abort(self, txn: Transaction) -> None:
        if txn.status != IN_PROGRESS:
            raise TransactionError("transaction %d is %s" % (txn.xid,
                                                             txn.status))
        txn.status = ABORTED
        self._status[txn.xid] = ABORTED
        self._active.discard(txn.xid)
        self._aborted_unreclaimed.add(txn.xid)
        self.aborts += 1

    # -- status queries -------------------------------------------------
    def status_of(self, xid: int) -> str:
        return self._status.get(xid, ABORTED)

    def is_committed(self, xid: int) -> bool:
        return self._status.get(xid) == COMMITTED

    def is_aborted(self, xid: int) -> bool:
        return self._status.get(xid, ABORTED) == ABORTED

    def committed_horizon(self) -> int:
        """First xid not safe to skip per-row checks for (amortized O(1)).

        Every xid strictly below the returned value is either COMMITTED
        or an aborted transaction with no surviving heap versions, so a
        tuple version with ``xmin`` below it (and below the snapshot's
        ``xmax`` and ``min_in_progress``) is created-visible without
        consulting per-xid status — the precondition of the batched
        executor's whole-batch MVCC fast path.  The pointer only moves
        forward; it stalls at the oldest active xid, or at an aborted
        xid whose dead versions may still linger in a heap (the fast
        path must not reach past those — such batches fall back to
        per-row :meth:`visible`).  A full database vacuum reclaims
        every aborted-created version and calls
        :meth:`aborted_reclaimed`, un-stalling the horizon.
        """
        ptr = self._committed_prefix
        status = self._status
        unreclaimed = self._aborted_unreclaimed
        while True:
            verdict = status.get(ptr)
            if verdict == COMMITTED or (verdict == ABORTED
                                        and ptr not in unreclaimed):
                ptr += 1
            else:
                break
        self._committed_prefix = ptr
        return ptr

    def aborted_reclaimed(self) -> None:
        """Every aborted-created heap version has been vacuumed away
        (a *full* database vacuum just finished), so aborted xids no
        longer pin the committed horizon.  An aborted transaction can
        never write again, and new aborts re-enter the set."""
        self._aborted_unreclaimed.clear()

    def oldest_active_xid(self) -> int:
        """Horizon for vacuum: versions dead before this are reclaimable."""
        if self._active:
            return min(self._active)
        return self._next_xid

    # -- MVCC visibility -------------------------------------------------
    def visible(self, version, txn: Transaction) -> bool:
        """Is this tuple version visible to the transaction's snapshot?

        Standard MVCC: created by us or by a transaction committed before
        our snapshot, and not deleted by us or by such a transaction.
        Label checks are applied separately, *on top of* this (section
        7.1 — IFDB extends the code that ignores irrelevant versions).
        """
        xmin = version.xmin
        if xmin == txn.xid:
            created_visible = True
        else:
            created_visible = txn.snapshot.sees_xid(xmin, self.status_of(xmin))
        if not created_visible:
            return False
        xmax = version.xmax
        if xmax is None:
            return True
        if xmax == txn.xid:
            return False                      # we deleted it ourselves
        return not txn.snapshot.sees_xid(xmax, self.status_of(xmax))

    def delete_conflicts(self, version, txn: Transaction) -> bool:
        """Would stamping ``xmax`` on this version conflict?

        True when another transaction already deleted/updated the version
        and did not abort — the "first committer wins" rule of snapshot
        isolation.  (A real server would wait for an in-progress writer;
        the simulation aborts immediately, which only makes conflicts
        more visible.)
        """
        xmax = version.xmax
        if xmax is None or xmax == txn.xid:
            return False
        return not self.is_aborted(xmax)
