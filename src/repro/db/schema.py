"""Table schemas and constraint definitions.

A :class:`TableSchema` is the static description of a table: columns,
primary key, uniqueness constraints, foreign keys, CHECK constraints, and
IFDB's *label constraints* (section 5.2.4).

Two IFDB-specific knobs appear on constraints:

* ``ForeignKeyConstraint.match_label`` — the paper's "simple label
  constraints as a type of foreign key constraint": the referencing
  tuple's label must equal the referenced tuple's label.  Combined with a
  uniqueness constraint this prevents polyinstantiation, because the
  required label for a key is pinned by its parent row.
* ``LabelCheckConstraint`` — an arbitrary boolean expression over the
  tuple's columns and its ``_label``, the trigger-style label constraint
  of section 5.2.4 expressed declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CatalogError, TypeError_
from .expressions import Expr
from .types import SQLType


@dataclass
class Column:
    """One column: name, SQL type, nullability, optional default value."""

    name: str
    type: SQLType
    not_null: bool = False
    default: object = None
    has_default: bool = False

    def __post_init__(self):
        if self.default is not None:
            self.has_default = True


@dataclass
class UniqueConstraint:
    name: str
    columns: Tuple[str, ...]


@dataclass
class ForeignKeyConstraint:
    """A foreign key, subject to the Foreign Key Rule (section 5.2.2)."""

    name: str
    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]
    match_label: bool = False      # label constraint variant (section 5.2.4)
    deferred: bool = False         # checked at commit with statement label


@dataclass
class CheckConstraint:
    name: str
    expr: Expr


@dataclass
class LabelCheckConstraint:
    """A constraint over the tuple's ``_label`` (and columns)."""

    name: str
    expr: Expr


class TableSchema:
    """Static description of a table."""

    def __init__(self, name: str, columns: Sequence[Column],
                 primary_key: Optional[Sequence[str]] = None,
                 uniques: Sequence[UniqueConstraint] = (),
                 foreign_keys: Sequence[ForeignKeyConstraint] = (),
                 checks: Sequence[CheckConstraint] = (),
                 label_checks: Sequence[LabelCheckConstraint] = ()):
        if not columns:
            raise CatalogError("table %r must have at least one column" % name)
        self.name = name
        self.columns: List[Column] = list(columns)
        self.positions: Dict[str, int] = {}
        for index, column in enumerate(self.columns):
            if column.name in self.positions:
                raise CatalogError(
                    "duplicate column %r in table %r" % (column.name, name))
            if column.name == "_label":
                raise CatalogError(
                    "_label is a reserved system column (section 4.2)")
            self.positions[column.name] = index
        self.primary_key: Optional[Tuple[str, ...]] = (
            tuple(primary_key) if primary_key else None)
        self.uniques: List[UniqueConstraint] = list(uniques)
        if self.primary_key:
            self.uniques.insert(0, UniqueConstraint(
                name="%s_pkey" % name, columns=self.primary_key))
        self.foreign_keys: List[ForeignKeyConstraint] = list(foreign_keys)
        self.checks: List[CheckConstraint] = list(checks)
        self.label_checks: List[LabelCheckConstraint] = list(label_checks)
        self._validate()

    def _validate(self) -> None:
        for unique in self.uniques:
            for col in unique.columns:
                if col not in self.positions:
                    raise CatalogError(
                        "unique constraint %r names unknown column %r"
                        % (unique.name, col))
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self.positions:
                    raise CatalogError(
                        "foreign key %r names unknown column %r"
                        % (fk.name, col))

    # -- helpers -----------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def position(self, name: str) -> int:
        try:
            return self.positions[name]
        except KeyError:
            raise CatalogError(
                "column %r does not exist in table %r"
                % (name, self.name)) from None

    def positions_of(self, names: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position(n) for n in names)

    def coerce_row(self, values: Sequence) -> Tuple:
        """Type-check and coerce a full-width row; enforce NOT NULL."""
        if len(values) != len(self.columns):
            raise TypeError_(
                "table %r expects %d values, got %d"
                % (self.name, len(self.columns), len(values)))
        out = []
        for column, value in zip(self.columns, values):
            if value is None:
                if column.not_null:
                    raise TypeError_(
                        "null value in column %r of table %r violates "
                        "NOT NULL" % (column.name, self.name))
                out.append(None)
            else:
                out.append(column.type.coerce(value))
        return tuple(out)

    def row_data_size(self, values: Sequence) -> int:
        """Byte size of the data payload (labels accounted separately)."""
        total = 0
        for column, value in zip(self.columns, values):
            if value is None:
                total += 1
            else:
                total += column.type.size_of(value)
        return total
