"""Table statistics: ANALYZE, equi-depth histograms, and selectivity.

``ANALYZE [table]`` collects, per table, the row count and per-column
NDV (number of distinct values), min/max, null fraction, and an
equi-depth histogram.  The cost-based optimizer
(:mod:`repro.db.optimizer`) turns these into cardinality estimates:
equality selectivity from NDV, range selectivity from the histogram,
and join fan-out from the inner column's NDV.

**Versioning.**  Stats are stamped with the same
``(catalog.version, tags.version)`` epoch as the prepared-plan caches
and remember the identity of the table object they describe, so DDL —
``DROP INDEX``, ``DROP TABLE``, schema changes — can never leave a
stale histogram behind: dropping a table forgets its stats, and a
table recreated under the same name (the only way a schema can change;
there is no ALTER TABLE) fails the identity check and is re-collected.
Unrelated DDL merely re-stamps the epoch — other relations' DDL cannot
change this table's data distribution.  On top of that, each table
carries a modification counter (inserts, updates, deletes); once it
drifts past a threshold relative to the analyzed row count, the stats
are refreshed automatically — on the next planning pass that consults
them, and by a periodic sweep the engine runs every few hundred
statements.  A refresh changes plan *optimality*, never correctness,
so instead of clearing the whole prepared-plan cache (which measurably
stalls steady-state workloads like DBT-2 with replan storms) it evicts
only the cached plans that read the refreshed table
(:meth:`repro.db.engine.Database.invalidate_plans_for`).

**Information flow.**  Statistics collection reads every live tuple
version regardless of label, like the vacuum garbage collector, which
the paper exempts from the flow rules (section 7.1).  Stats influence
only plan *shape* — which EXPLAIN already exposes — never which tuples
a query may return; Query by Label stays enforced in the scans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.counters import CounterGroup
from .spill import estimate_value_bytes


class StatsCounters(CounterGroup):
    """Process-wide statistics-subsystem counters (registered as the
    ``stats`` group of :data:`repro.db.metrics.REGISTRY`; diff
    before/after like the other families).  ``tables_collected`` counts
    per-table collections from any trigger (explicit ``ANALYZE``,
    drift refresh, stale-source recollection); ``drift_refreshes``
    counts only the automatic ones — the background planner work that
    can surprise a latency measurement, which is why EXPLAIN ANALYZE
    excludes this group from per-operator attribution (a sweep fires
    during planning, outside any operator)."""

    FIELDS = ("tables_collected", "drift_refreshes")


#: The module-wide counter instance (see :class:`StatsCounters`).
COUNTERS = StatsCounters()

# ---------------------------------------------------------------------------
# default selectivities (used when stats are absent or bounds are
# parameters whose values are unknown at plan time)
# ---------------------------------------------------------------------------

#: ``col = constant`` on a column with no statistics.
DEFAULT_EQ_SEL = 0.005
#: One-sided inequality (``col > constant``) with no usable histogram.
DEFAULT_RANGE_SEL = 1.0 / 3.0
#: ``col LIKE pattern``.
DEFAULT_LIKE_SEL = 0.15
#: Any predicate the estimator cannot classify.
DEFAULT_SEL = 0.25
#: Output-row guess for a derived (view/subquery) FROM entry whose
#: inner query could not be estimated.
DEFAULT_DERIVED_ROWS = 100.0

#: Equi-depth histogram resolution.
HISTOGRAM_BUCKETS = 64

#: Auto-refresh: re-analyze once modifications since the last collection
#: exceed ``max(REFRESH_MIN_MODS, REFRESH_FRACTION * row_count)``.  The
#: thresholds are deliberately lazy: a growing table is re-collected
#: roughly once per 50% growth (logarithmically often), and a small but
#: update-heavy table (TPC-C's Stock) only once per ``REFRESH_MIN_MODS``
#: writes — unlike PostgreSQL's autoanalyze this collection runs
#: synchronously inside a planning pass, so its cost (and the replans
#: its evictions cause) must stay off steady-state hot paths.
REFRESH_FRACTION = 0.5
REFRESH_MIN_MODS = 2048

#: Collection samples at most this many rows per table (evenly strided);
#: histograms and fractions stay accurate while only O(sample) values
#: are ever materialized and sorted (the heap itself is walked without
#: copying, so a refresh of a large table stays cheap).
SAMPLE_ROWS = 10000


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class Histogram:
    """Equi-depth histogram: ``edges[i]..edges[i+1]`` holds ``counts[i]``
    values, each bucket covering roughly ``total / len(counts)`` rows.

    Built from the sorted non-null column values; estimation
    interpolates linearly inside numeric buckets and falls back to the
    bucket midpoint for non-numeric types.
    """

    __slots__ = ("edges", "counts", "total")

    def __init__(self, edges: List, counts: List[int], total: int):
        self.edges = edges
        self.counts = counts
        self.total = total

    @classmethod
    def build(cls, sorted_values: List,
              buckets: int = HISTOGRAM_BUCKETS) -> Optional["Histogram"]:
        n = len(sorted_values)
        if n == 0:
            return None
        b = max(1, min(buckets, n))
        edges = [sorted_values[0]]
        counts: List[int] = []
        prev = 0
        for i in range(1, b + 1):
            hi = round(i * n / b)
            if hi <= prev:
                continue
            edges.append(sorted_values[hi - 1])
            counts.append(hi - prev)
            prev = hi
        return cls(edges, counts, n)

    def fraction_below(self, value, inclusive: bool = True) -> Optional[float]:
        """Estimated fraction of values ``<= value`` (or ``< value``).

        Returns ``None`` when ``value`` is not comparable with the
        histogram's type (mixed-type data); callers fall back to the
        default selectivities.
        """
        if not self.total:
            return 0.0
        edges = self.edges
        try:
            if value < edges[0]:
                return 0.0
            if value > edges[-1] or (inclusive and value == edges[-1]):
                return 1.0
        except TypeError:
            return None
        cum = 0.0
        for i, count in enumerate(self.counts):
            lo, hi = edges[i], edges[i + 1]
            if value > hi or (inclusive and value == hi):
                cum += count
                continue
            if value < lo or (not inclusive and value == lo):
                break
            frac = 0.5
            if _numeric(value) and _numeric(lo) and _numeric(hi) and hi > lo:
                frac = (value - lo) / (hi - lo)
            cum += frac * count
            break
        return min(max(cum / self.total, 0.0), 1.0)


class ColumnStats:
    """Statistics for one column of an analyzed table."""

    __slots__ = ("ndv", "null_frac", "min_value", "max_value", "histogram",
                 "avg_width")

    def __init__(self, ndv: int, null_frac: float, min_value, max_value,
                 histogram: Optional[Histogram],
                 avg_width: Optional[float] = None):
        self.ndv = ndv
        self.null_frac = null_frac
        self.min_value = min_value
        self.max_value = max_value
        self.histogram = histogram
        #: Average in-memory bytes of one value, measured over the
        #: ANALYZE sample with the spill estimator's accounting
        #: (:func:`~repro.db.spill.estimate_value_bytes`); ``None``
        #: when the table was empty at collection time.
        self.avg_width = avg_width

    def eq_selectivity(self) -> float:
        """``col = constant``: assume the distinct values are uniform."""
        if self.ndv <= 0:
            return 0.0
        return (1.0 - self.null_frac) / self.ndv

    def range_selectivity(self, low, high, include_low: bool = True,
                          include_high: bool = True) -> float:
        """``low <op> col <op> high`` with either bound optional.

        NULLs never satisfy a range predicate, so every path — the
        histogram estimate *and* the defaults used when there is no
        histogram (all-null column, incomparable types) — scales by the
        non-null fraction; an all-null column estimates 0.
        """
        default = (DEFAULT_RANGE_SEL if low is None or high is None
                   else DEFAULT_RANGE_SEL ** 2) * (1.0 - self.null_frac)
        hist = self.histogram
        if hist is None:
            return default
        hi_frac = 1.0
        if high is not None:
            hi_frac = hist.fraction_below(high, inclusive=include_high)
        lo_frac = 0.0
        if low is not None:
            # Fraction strictly below the lower bound (or <= for an
            # exclusive bound) is what the range excludes.
            lo_frac = hist.fraction_below(low, inclusive=not include_low)
        if hi_frac is None or lo_frac is None:
            return default
        return max(hi_frac - lo_frac, 0.0) * (1.0 - self.null_frac)

    def __repr__(self):
        return ("ColumnStats(ndv=%d, null_frac=%.3f, min=%r, max=%r)"
                % (self.ndv, self.null_frac, self.min_value, self.max_value))


class TableStats:
    """Everything ANALYZE collected for one table, plus its freshness
    anchors (the catalog/tag epoch, the modification counter, and the
    identity of the table object the numbers describe)."""

    __slots__ = ("table_name", "row_count", "columns", "epoch",
                 "mods_at_collect", "source")

    def __init__(self, table_name: str, row_count: int,
                 columns: Dict[str, ColumnStats], epoch: Tuple[int, int],
                 mods_at_collect: int, source=None):
        self.table_name = table_name
        self.row_count = row_count
        self.columns = columns
        self.epoch = epoch
        self.mods_at_collect = mods_at_collect
        self.source = source

    def avg_row_bytes(self, columns=None) -> Optional[float]:
        """Measured average bytes of one execution row built from the
        given columns (every analyzed column when ``None``).

        Sums the per-column :attr:`~ColumnStats.avg_width` values over
        a 64-byte row container — the same shape
        :func:`~repro.db.spill.estimate_row_bytes` charges at run time
        — so the optimizer's spill costing can budget what ANALYZE
        actually saw instead of guessing from the column count.
        Returns ``None`` when any requested column lacks a measured
        width (empty table at collection, unknown name); callers fall
        back to :func:`~repro.db.spill.estimated_tuple_bytes`.
        """
        names = self.columns if columns is None else columns
        total = 64.0                     # the row list + pointer slots
        for name in names:
            cs = self.columns.get(name)
            if cs is None or cs.avg_width is None:
                return None
            total += cs.avg_width
        return total

    def __repr__(self):
        return ("TableStats(%s, rows=%d, epoch=%r)"
                % (self.table_name, self.row_count, self.epoch))


def _live(version, txn_manager) -> bool:
    """Live for estimation purposes: the creating transaction did not
    abort, and any deleting/superseding transaction did (an aborted
    ``xmax`` leaves the version visible — the same notion MVCC
    visibility applies, approximated for concurrent writers)."""
    if txn_manager.is_aborted(version.xmin):
        return False
    return version.xmax is None or txn_manager.is_aborted(version.xmax)


def collect_table_stats(table, txn_manager, epoch: Tuple[int, int],
                        buckets: int = HISTOGRAM_BUCKETS) -> TableStats:
    """Scan a table's live versions and build its statistics.

    Two passes over the heap: the first counts live versions (no
    copying), the second materializes an evenly strided sample of at
    most ``SAMPLE_ROWS`` rows — fractions and histogram shapes stay
    representative while memory and sort cost stay O(sample).  NDV is
    taken from the sample and therefore underestimates very-high-
    cardinality columns; selectivities only get *less* aggressive from
    that, which is the safe direction.
    """
    row_count = 0
    for version in table.all_versions():
        if _live(version, txn_manager):
            row_count += 1
    stride = 1 if row_count <= SAMPLE_ROWS else -(-row_count // SAMPLE_ROWS)
    rows: List[Tuple] = []
    seen = 0
    for version in table.all_versions():
        if not _live(version, txn_manager):
            continue
        if seen % stride == 0:
            rows.append(version.values)
        seen += 1
    sampled = len(rows)
    columns: Dict[str, ColumnStats] = {}
    for position, name in enumerate(table.schema.column_names):
        values = [r[position] for r in rows]
        non_null = [v for v in values if v is not None]
        null_frac = (1.0 - len(non_null) / sampled) if sampled else 0.0
        ndv = len(set(non_null))
        avg_width = (sum(estimate_value_bytes(v) for v in values) / sampled
                     if sampled else None)
        try:
            ordered = sorted(non_null)
        except TypeError:
            # Mixed incomparable types: keep NDV/null/width info, skip
            # the order-dependent pieces.
            columns[name] = ColumnStats(ndv, null_frac, None, None, None,
                                        avg_width)
            continue
        min_value = ordered[0] if ordered else None
        max_value = ordered[-1] if ordered else None
        histogram = Histogram.build(ordered, buckets)
        columns[name] = ColumnStats(ndv, null_frac, min_value, max_value,
                                    histogram, avg_width)
    return TableStats(table.name, row_count, columns, epoch,
                      table.modifications, source=table)


class StatsManager:
    """Holds per-table statistics and keeps them fresh.

    ``version`` bumps on every collection, refresh, or forget (it is
    observable introspection state); each (re)collection also evicts
    the cached plans reading that table so they are replanned against
    the new estimates.  Only tables that were ANALYZEd at least once
    participate in auto-refresh — an un-analyzed table simply has no
    stats and the optimizer uses its default selectivities.
    """

    def __init__(self, db):
        self._db = db
        self._stats: Dict[str, TableStats] = {}
        self.version = 0

    # ------------------------------------------------------------------
    def _epoch(self) -> Tuple[int, int]:
        return (self._db.catalog.version, self._db.authority.tags.version)

    def analyze(self, table_name: Optional[str] = None) -> List[str]:
        """Collect statistics for one table (or every table)."""
        catalog = self._db.catalog
        if table_name is not None:
            tables = [catalog.get_table(table_name)]
        else:
            tables = list(catalog.tables.values())
        epoch = self._epoch()
        for table in tables:
            self._stats[table.name] = collect_table_stats(
                table, self._db.txn_manager, epoch)
            COUNTERS.tables_collected += 1
            self._db.invalidate_plans_for(table.name)
        if tables:
            self.version += 1
        return [t.name for t in tables]

    def get(self, table) -> Optional[TableStats]:
        """Fresh statistics for ``table``, or ``None`` if never analyzed.

        Stale stats — collected from a *different* table object (the
        name was dropped and recreated; this engine has no ALTER TABLE,
        so a schema can only change that way) or past the modification
        drift threshold — are re-collected on the spot, evicting the
        cached plans built from the old numbers.  Unrelated DDL or tag
        registration merely re-stamps the epoch: the histograms
        describe table *data*, which other relations' DDL cannot touch,
        and re-collecting every analyzed table after each DDL would be
        its own replan storm.
        """
        stats = self._stats.get(table.name)
        if stats is None:
            return None
        if stats.source is not table or self._drifted(table, stats):
            return self._refresh(table)
        if stats.epoch != self._epoch():
            stats.epoch = self._epoch()
        return stats

    def refresh_drifted(self) -> List[str]:
        """Refresh every analyzed table whose modification counter has
        drifted past the threshold (the engine's periodic sweep; cheap
        when nothing drifted: one counter compare per analyzed table)."""
        refreshed = []
        for name in list(self._stats):
            table = self._db.catalog.tables.get(name)
            if table is None:
                self.forget(name)
                continue
            if self._drifted(table, self._stats[name]):
                self._refresh(table)
                refreshed.append(name)
        return refreshed

    def _drifted(self, table, stats: TableStats) -> bool:
        mods = table.modifications - stats.mods_at_collect
        return mods > max(REFRESH_MIN_MODS,
                          REFRESH_FRACTION * stats.row_count)

    def _refresh(self, table) -> TableStats:
        stats = collect_table_stats(table, self._db.txn_manager,
                                    self._epoch())
        COUNTERS.tables_collected += 1
        COUNTERS.drift_refreshes += 1
        self._stats[table.name] = stats
        self.version += 1
        self._db.invalidate_plans_for(table.name)
        return stats

    def forget(self, table_name: str) -> None:
        """Drop a table's statistics (``DROP TABLE``)."""
        if self._stats.pop(table_name, None) is not None:
            self.version += 1

    def analyzed(self) -> List[str]:
        return sorted(self._stats)

    def peek(self, table_name: str) -> Optional[TableStats]:
        """The stored stats without freshness checks (introspection)."""
        return self._stats.get(table_name)
