"""Logical query plans: the first of the three planner layers.

``build_logical`` turns a parsed :class:`~repro.sql.ast.Select` into a
:class:`LogicalQuery` — FROM items resolved against the catalog into a
left-deep join sequence, the name scope built, ``*`` expanded, and the
WHERE clause split into conjuncts.  No execution strategy is chosen
here: access paths and join algorithms are optimizer annotations
(:mod:`repro.db.optimizer`), and the annotated tree is lowered to
physical operators by :mod:`repro.db.planner`.

Views and subqueries in FROM become *derived* entries holding their own
recursively built :class:`LogicalQuery`.  A declassifying view extends
the ``declass`` label and grant list flowing down to the scans beneath
it — the enforcement point stays in the scans (section 7.1), and the
derived boundary is opaque to the optimizer so no predicate is ever
evaluated against a pre-declassification label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..errors import CatalogError, DatabaseError
from ..sql import ast
from . import expressions as ex
from .catalog import Catalog
from .storage import Table


def split_conjuncts(node: Optional[ex.Expr]) -> List[ex.Expr]:
    """Flatten a boolean expression into its top-level AND conjuncts."""
    if node is None:
        return []
    if isinstance(node, ex.And):
        result = []
        for item in node.items:
            result.extend(split_conjuncts(item))
        return result
    return [node]


def collect_columns(node: ex.Expr, out: List[ex.ColumnRef],
                    opaque: List[bool]) -> None:
    """Collect column references; mark opaque if subqueries are present."""
    if isinstance(node, ex.ColumnRef):
        out.append(node)
        return
    if isinstance(node, (ex.Exists, ex.InSelect, ex.ScalarSelect)):
        opaque[0] = True
        if isinstance(node, ex.InSelect):
            collect_columns(node.operand, out, opaque)
        return
    for attr in getattr(node, "__slots__", ()):
        child = getattr(node, attr)
        if isinstance(child, ex.Expr):
            collect_columns(child, out, opaque)
        elif isinstance(child, tuple):
            for item in child:
                if isinstance(item, ex.Expr):
                    collect_columns(item, out, opaque)
                elif isinstance(item, tuple) and len(item) == 2:
                    for x in item:
                        if isinstance(x, ex.Expr):
                            collect_columns(x, out, opaque)


def collect_slots(node: ex.Expr, out: List[int]) -> None:
    """Collect flat row positions read via :class:`~…expressions.SlotRef`
    (``*`` expansion emits them, so projection analysis must see them
    alongside named column references).  Subquery interiors are skipped
    — :func:`collect_columns` already marks those opaque."""
    if isinstance(node, ex.SlotRef):
        out.append(node.slot)
        return
    if isinstance(node, (ex.Exists, ex.InSelect, ex.ScalarSelect)):
        if isinstance(node, ex.InSelect):
            collect_slots(node.operand, out)
        return
    for attr in getattr(node, "__slots__", ()):
        child = getattr(node, attr)
        if isinstance(child, ex.Expr):
            collect_slots(child, out)
        elif isinstance(child, tuple):
            for item in child:
                if isinstance(item, ex.Expr):
                    collect_slots(item, out)
                elif isinstance(item, tuple) and len(item) == 2:
                    for x in item:
                        if isinstance(x, ex.Expr):
                            collect_slots(x, out)


@dataclass
class SourceEntry:
    """One FROM item in the left-deep join sequence.

    Exactly one of ``table`` (base table) or ``derived`` (view or
    subquery) is set.  The ``pushed``/``access``/``join``/``post_filters``
    fields start empty and are filled in by the optimizer.
    """

    alias: str
    columns: List[str]
    width: int                                   # columns + _label
    join_kind: str = "inner"                     # "inner" | "left"
    join_on: Optional[ex.Expr] = None
    table: Optional[Table] = None
    declass: Label = EMPTY_LABEL
    view_grants: List = field(default_factory=list)
    derived: Optional["LogicalQuery"] = None
    relation_name: Optional[str] = None          # table/view name for EXPLAIN
    # ---- optimizer annotations -------------------------------------
    pushed: List[ex.Expr] = field(default_factory=list)
    access: Optional[object] = None              # AccessPath (base tables)
    join: Optional[object] = None                # JoinChoice (entries 1..n)
    post_filters: List[ex.Expr] = field(default_factory=list)
    est_rows: Optional[float] = None             # after pushed predicates
    est_cost: Optional[float] = None             # cost of producing them
    #: Projection pushdown: sorted stored-column positions anything
    #: above this entry's scan reads (None = all columns — the default,
    #: and always the case for DML targets and naive plans).
    needed: Optional[Tuple[int, ...]] = None


@dataclass
class LogicalQuery:
    """A resolved SELECT: sources, scope, expanded items, conjuncts."""

    select: ast.Select
    entries: List[SourceEntry]
    scope: ex.Scope
    items: List[Tuple[ex.Expr, str]]             # (expr, output name)
    columns: List[str]
    where_conjuncts: List[ex.Expr]
    # ---- optimizer annotations -------------------------------------
    residual_where: List[ex.Expr] = field(default_factory=list)
    optimized: bool = False
    est_rows: Optional[float] = None             # estimated output rows
    est_cost: Optional[float] = None             # estimated total cost

    @property
    def width(self) -> int:
        """Flat execution-row width the select list evaluates over:
        the sum of entry widths (each contributes its columns plus the
        ``_label`` pseudo-column).  The planner's sort/aggregate spill
        estimates size pre-projection rows with it."""
        return sum(entry.width for entry in self.entries)


@dataclass
class LogicalDML:
    """A resolved UPDATE/DELETE: the target table as a single
    :class:`SourceEntry` so the optimizer's access-path enumeration —
    equality probes, ordered-index range scans, stats-driven costing —
    applies to DML target selection exactly as it does to SELECT scans.

    DML targets are always base tables (the catalog rejects views), so
    the entry never carries declassification, and there is no join
    sequence: the optimizer's only job here is pushing the WHERE
    conjuncts into the entry and choosing its access path.
    """

    entry: SourceEntry
    scope: ex.Scope
    where_conjuncts: List[ex.Expr]
    # ---- optimizer annotations -------------------------------------
    optimized: bool = False


def _flatten_from(items: List[ast.FromItem]) -> List[Tuple]:
    """Flatten the FROM clause into a left-deep join sequence.

    Returns [(item, kind, on_expr)]; the first entry's kind/on are
    ignored.  Explicit JOIN trees are flattened left-to-right, which
    is valid for inner and left joins in a left-deep evaluation.
    """
    sequence: List[Tuple] = []

    def walk(item, kind="inner", on=None):
        if isinstance(item, ast.Join):
            walk(item.left, kind, on)
            walk(item.right, item.kind, item.on)
        else:
            sequence.append((item, kind, on))

    for item in items:
        walk(item, "inner", None)
    return sequence


def _entry_for(item, catalog: Catalog, declass_in: Label,
               grants_in: List) -> SourceEntry:
    """Resolve one FROM item to a source entry (table/view/subquery)."""
    if isinstance(item, ast.TableRef):
        name = item.name
        if catalog.is_view(name):
            view = catalog.get_view(name)
            declass = declass_in
            grants = list(grants_in)
            if view.is_declassifying:
                declass = declass_in.union(view.declassify)
                grants = grants + [(view, view.declassify)]
            inner = build_logical(view.select, catalog, None, declass,
                                  grants)
            return SourceEntry(alias=item.effective_alias,
                               columns=list(view.columns),
                               width=len(view.columns) + 1,
                               derived=inner, relation_name=name)
        table = catalog.get_table(name)
        columns = table.schema.column_names
        return SourceEntry(alias=item.effective_alias, columns=columns,
                           width=len(columns) + 1, table=table,
                           declass=declass_in,
                           view_grants=list(grants_in),
                           relation_name=name)
    if isinstance(item, ast.SubqueryRef):
        inner = build_logical(item.select, catalog, None, declass_in,
                              list(grants_in))
        return SourceEntry(alias=item.alias, columns=list(inner.columns),
                           width=len(inner.columns) + 1, derived=inner)
    raise DatabaseError("unsupported FROM item %r" % (item,))


def _default_name(expr: ex.Expr) -> str:
    if isinstance(expr, ex.ColumnRef):
        return expr.name
    if isinstance(expr, ex.FuncCall):
        return expr.name.lower()
    if isinstance(expr, ex.Aggregate):
        return expr.func.lower()
    return "?column?"


def _expand_items(select: ast.Select,
                  scope: ex.Scope) -> List[Tuple[ex.Expr, str]]:
    """Expand ``*`` and name the output columns."""
    items: List[Tuple[ex.Expr, str]] = []
    for item in select.items:
        if isinstance(item.expr, ex.Star):
            positions = scope.star_positions(item.expr.table)
            names = scope.star_names(item.expr.table)
            for pos, name in zip(positions, names):
                items.append((ex.SlotRef(pos), name))
        else:
            name = item.alias or _default_name(item.expr)
            items.append((item.expr, name))
    return items


def relayout(query: LogicalQuery) -> None:
    """Rebuild scope and expanded items after the optimizer reorders
    ``query.entries`` (column positions follow entry order)."""
    scope = ex.Scope(outer=query.scope.outer)
    for entry in query.entries:
        scope.add_table(entry.alias, entry.columns)
    query.scope = scope
    query.items = _expand_items(query.select, scope)
    query.columns = [name for _, name in query.items]


def build_dml_logical(statement, catalog: Catalog) -> LogicalDML:
    """Resolve a parsed UPDATE/DELETE into a logical DML plan.

    The target is resolved like a one-table FROM clause: the scope
    exposes the table's columns plus the ``_label`` pseudo-column, so
    WHERE predicates and UPDATE SET expressions compile exactly as they
    would in a single-table SELECT.
    """
    table = catalog.get_table(statement.table)
    columns = table.schema.column_names
    entry = SourceEntry(alias=table.name, columns=columns,
                        width=len(columns) + 1, table=table,
                        relation_name=table.name)
    scope = ex.Scope()
    scope.add_table(entry.alias, entry.columns)
    return LogicalDML(entry=entry, scope=scope,
                      where_conjuncts=split_conjuncts(statement.where))


def build_logical(select: ast.Select, catalog: Catalog,
                  outer_scope: Optional[ex.Scope] = None,
                  declass: Label = EMPTY_LABEL,
                  grants: Optional[List] = None) -> LogicalQuery:
    """Resolve a parsed SELECT into a logical query."""
    grants = grants or []
    scope = ex.Scope(outer=outer_scope)
    entries: List[SourceEntry] = []
    for item, kind, on in _flatten_from(select.from_items):
        entry = _entry_for(item, catalog, declass, grants)
        entry.join_kind = kind
        entry.join_on = on
        if any(e.alias == entry.alias for e in entries):
            raise CatalogError("duplicate table alias %r" % entry.alias)
        entries.append(entry)
        scope.add_table(entry.alias, entry.columns)

    items = _expand_items(select, scope)
    return LogicalQuery(select=select, entries=entries, scope=scope,
                        items=items, columns=[name for _, name in items],
                        where_conjuncts=split_conjuncts(select.where))
