"""Fork-based worker gang: the process pool behind parallel execution.

The execution layer parallelizes two shapes of work (see
ARCHITECTURE.md, "Parallel execution"):

* **partitioned scans** — the :class:`~repro.db.physical.Gather`
  exchange operator splits a full heap scan into contiguous
  batch-aligned chunk ranges and runs the scan subtree once per range;
* **grace partitions** — a spilled hash join or hash aggregate hands
  disjoint spill partitions to the gang, one contiguous partition
  range per worker.

Workers are **forked**, never spawned: a child inherits the parent's
address space — the catalog, the MVCC version arrays, the interned
label table and the memoized ``covers``/``strip`` tables — at the
instant the gather starts, so nothing about the plan or the data needs
to be pickled or rebuilt.  The statement's snapshot is immutable for
its whole lifetime, which is exactly what makes a copy-on-write clone
of the heap a correct execution substrate.

Rows travel back over a pipe in the labeled-row wire format
(:func:`repro.db.spill.encode_labeled_row`): labels are re-interned on
arrival, so a decoded row's label is *identical* to the live instance
and every downstream identity-keyed memo keeps working.

**Counter protocol.**  Each child resets the process-wide
:class:`~repro.db.metrics.MetricsRegistry` right after the fork (its
copy-on-write copy — the parent is unaffected), does its slice of the
work, and ships its final ``REGISTRY.snapshot()`` as a pure delta with
the end-of-stream sentinel.  The parent merges every delta through
``REGISTRY.merge()``, which lands on the gathering statement's own
thread-local counters — so the per-statement bracket sees exactly the
sum of serial-equivalent work, with zero slack.

**Ordering.**  Ranges are contiguous and workers drain in worker
order, so the gathered row stream is exactly the serial row order.

**Error parity.**  A worker exception is pickled and re-raised in the
parent (falling back to :class:`WorkerError` for unpicklable ones), so
a statement fails with the same exception type it would raise
serially.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Callable, Iterator, List, Tuple

from . import metrics
from .spill import decode_labeled_row, encode_labeled_row

#: Rows per pipe message: large enough to amortize a pickle round-trip,
#: small enough to keep the parent/worker pipeline streaming.
CHUNK_ROWS = 256

#: Plan-time cost floor for the exchange operator: forking a gang and
#: shipping rows costs a few milliseconds, so the optimizer only
#: parallelizes scans whose estimated candidate count clears this bar
#: (``REPRO_PARALLEL_MIN_ROWS`` overrides; tests set it low).
DEFAULT_MIN_ROWS = 2048


def fork_available() -> bool:
    """True when this platform can fork workers (POSIX with the
    ``fork`` start method); everything degrades to serial otherwise."""
    try:
        return (hasattr(os, "fork")
                and "fork" in multiprocessing.get_all_start_methods())
    except Exception:                                 # pragma: no cover
        return False


FORK_AVAILABLE = fork_available()


class WorkerError(RuntimeError):
    """A worker failed in a way that could not cross the pipe intact
    (unpicklable exception, or the process died without a message)."""


def split_ranges(start: int, stop: int,
                 workers: int) -> List[Tuple[int, int]]:
    """Split ``[start, stop)`` into up to ``workers`` contiguous,
    near-even, non-empty ranges — the unit assignment for both chunked
    scans and spill partitions.  Contiguity is what makes gather order
    equal serial order."""
    total = stop - start
    if total <= 0 or workers <= 0:
        return []
    n = min(workers, total)
    ranges = []
    for w in range(n):
        lo = start + (total * w) // n
        hi = start + (total * (w + 1)) // n
        if lo < hi:
            ranges.append((lo, hi))
    return ranges


def _worker_main(conn, fn: Callable[[], Iterator]) -> None:
    """Child half of the gang protocol (runs in the forked process).

    Resets the inherited counter registry (pure-delta accounting),
    streams ``fn()``'s rows back in encoded chunks, then sends the
    ``("done", snapshot)`` sentinel.  Exits with ``os._exit`` so the
    child never runs the parent's atexit hooks or flushes inherited
    buffered files (whose descriptors it shares with the parent).
    """
    status = 0
    try:
        metrics.REGISTRY.reset()
        buf: list = []
        for values, label, ilabel in fn():
            buf.append(encode_labeled_row(values, label, ilabel))
            if len(buf) >= CHUNK_ROWS:
                conn.send(("rows", buf))
                buf = []
        if buf:
            conn.send(("rows", buf))
        conn.send(("done", metrics.REGISTRY.snapshot()))
    except BaseException as exc:                # noqa: BLE001 — shipped
        try:
            payload = pickle.dumps(exc)
            pickle.loads(payload)               # must survive the pipe
        except Exception:
            payload = pickle.dumps(WorkerError(
                "%s: %s" % (type(exc).__name__, exc)))
        try:
            conn.send(("err", payload))
        except Exception:                             # pragma: no cover
            status = 1
    finally:
        try:
            conn.close()
        except Exception:                             # pragma: no cover
            pass
        os._exit(status)


def run_gang(tasks: List[Callable[[], Iterator]]) -> Iterator:
    """Fork one worker per task; yield the decoded rows of task 0, then
    task 1, … (serial order); merge every worker's counter snapshot
    into the calling thread's registry.

    The pipe gives natural backpressure: later workers compute ahead
    until their pipe buffer fills, then block until the parent drains
    them.  On any failure — a worker error, or the consumer abandoning
    this generator — the ``finally`` terminates and reaps the whole
    gang.
    """
    if not tasks:
        return
    ctx = multiprocessing.get_context("fork")
    procs: list = []
    conns: list = []
    try:
        for fn in tasks:
            recv, send = ctx.Pipe(duplex=False)
            # The child closes the parent-side ends it inherited (its
            # own recv plus earlier workers') so a dead worker's pipe
            # reads as EOF instead of hanging.
            inherited = conns + [recv]

            def _child(conn=send, fn=fn, inherited=inherited):
                for other in inherited:
                    try:
                        other.close()
                    except Exception:                 # pragma: no cover
                        pass
                _worker_main(conn, fn)

            proc = ctx.Process(target=_child, daemon=True)
            proc.start()
            send.close()                # parent keeps only the recv end
            procs.append(proc)
            conns.append(recv)
        for recv in conns:
            while True:
                try:
                    kind, payload = recv.recv()
                except EOFError:
                    raise WorkerError(
                        "parallel worker exited without a result")
                if kind == "rows":
                    for encoded in payload:
                        yield decode_labeled_row(encoded)
                elif kind == "done":
                    metrics.REGISTRY.merge(payload)
                    break
                else:                                        # "err"
                    raise pickle.loads(payload)
    finally:
        for recv in conns:
            try:
                recv.close()
            except Exception:                         # pragma: no cover
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()
