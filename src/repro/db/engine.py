"""The database engine facade.

:class:`Database` ties everything together: authority state, catalog,
transaction manager, buffer cache, planner, and the statement caches.
It is the analogue of the modified PostgreSQL server of section 7.1.

Two construction-time switches drive the benchmarks:

* ``ifc_enabled=False`` gives the **baseline** ("PostgreSQL"): labels are
  neither stored nor checked, tuple sizes exclude labels, and sessions
  run with an empty label.  Everything else is byte-for-byte the same
  engine, isolating exactly the overhead the paper attributes to IFDB.
* ``buffer_pages``/``io_penalty`` configure the storage model: unbounded
  cache ≈ the paper's in-memory DBT-2 database, a small cache with a
  per-miss penalty ≈ the disk-bound 150-warehouse database.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.authority import AuthorityState
from ..core.idgen import SeededIdGenerator
from ..core.labels import EMPTY_LABEL, Label
from ..errors import AuthorityError, CatalogError, DatabaseError
from ..sql import ast
from ..sql.parser import parse_script, parse_statement
from .catalog import (
    Catalog,
    FunctionDef,
    ProcedureDef,
    TriggerDef,
    ViewDef,
)
from .expressions import Scope
from .metrics import REGISTRY, AuditLog, SlowQueryLog, StatementStats, \
    compile_reader, normalize_sql
from .pages import BufferCache
from .physical import (
    DEFAULT_BATCH_SIZE,
    PreparedDML,
    PreparedSelect,
    explain_plan,
    plan_tables,
)
from .planner import Planner
from .schema import (
    CheckConstraint,
    Column,
    ForeignKeyConstraint,
    LabelCheckConstraint,
    TableSchema,
    UniqueConstraint,
)
from .session import Session
from .stats import StatsManager
from .storage import Table
from .transactions import SNAPSHOT, TransactionManager
from .types import type_by_name
from . import wal as wal_mod


class PreparedInsert:
    """A planned INSERT: target positions, defaults, compiled sources.

    Either ``row_fns`` (VALUES form: one list of compiled expressions
    per row) or ``select`` (INSERT ... SELECT form) is set.  Compiling
    the value expressions once per statement instead of once per
    execution is a large win for insert-heavy workloads (TPC-C).
    """

    __slots__ = ("table", "target_positions", "defaults", "row_fns",
                 "select")

    def __init__(self, table: Table, target_positions: List[int],
                 defaults: List, row_fns, select):
        self.table = table
        self.target_positions = target_positions
        self.defaults = defaults
        self.row_fns = row_fns
        self.select = select


class Database:
    """An IFDB database instance."""

    def __init__(self, authority: Optional[AuthorityState] = None, *,
                 ifc_enabled: bool = True,
                 page_size: int = 8192,
                 buffer_pages: Optional[int] = None,
                 io_penalty: float = 0.0,
                 deterministic_order: bool = False,
                 default_isolation: str = SNAPSHOT,
                 seed: Optional[int] = None,
                 clock: Optional[Callable[[], float]] = None,
                 naive_plans: bool = False,
                 batch_size: Optional[int] = None,
                 work_mem: Optional[int] = None,
                 slow_query_ms: Optional[float] = None,
                 audit_log: Optional[int] = None,
                 wal: Optional[str] = None,
                 group_commit_ms: Optional[float] = None,
                 workers: Optional[int] = None):
        if authority is None:
            idgen = SeededIdGenerator(seed) if seed is not None else None
            authority = AuthorityState(idgen=idgen)
        self.authority = authority
        self.ifc_enabled = ifc_enabled
        self.page_size = page_size
        self.deterministic_order = deterministic_order
        self.default_isolation = default_isolation
        self.clock = clock or time.time
        self.catalog = Catalog()
        self.txn_manager = TransactionManager()
        self.buffer_cache = BufferCache(capacity=buffer_pages,
                                        io_penalty=io_penalty)
        self.stats_manager = StatsManager(self)
        # Execution batch size: ``None`` defers to the REPRO_BATCH_SIZE
        # environment variable (CI runs the whole suite at 1 to prove
        # batch boundaries can't change results), then the built-in
        # default; 0 pins row-at-a-time execution.  Naive mode always
        # pins row-at-a-time (see Optimizer.exec_batch_size).
        if batch_size is None:
            batch_size = int(os.environ.get("REPRO_BATCH_SIZE",
                                            str(DEFAULT_BATCH_SIZE)))
        self.batch_size = max(0, int(batch_size))
        # Per-operator memory budget in bytes for memory-bounded
        # operators (hash-join builds): ``None`` defers to the
        # ``REPRO_WORK_MEM`` environment variable (CI runs a tier-1
        # job at 1024 to force grace spilling everywhere), then
        # unbounded (0).  The executor reads the live value per
        # statement; the optimizer costs expected spilling with it.
        if work_mem is None:
            work_mem = int(os.environ.get("REPRO_WORK_MEM", "0"))
        self.work_mem = max(0, int(work_mem))
        # Parallel worker-pool size: ``None`` defers to the
        # ``REPRO_WORKERS`` environment variable (CI runs a tier-1 job
        # at 2), then serial (0).  The planner inserts Gather exchange
        # operators above parallel-safe subtrees and hands the pool to
        # spilling joins/aggregates; 0 and 1 both mean serial.
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
        self.workers = max(0, int(workers))
        # ``naive_plans`` forces reference plans (full scans, nested
        # loops, no pushdown, row-at-a-time execution) — the
        # differential harness's known-good executor; see
        # Optimizer.naive.
        self.planner = Planner(self.catalog, self.authority.tags,
                               stats=self.stats_manager,
                               naive=naive_plans,
                               batch_size=self.batch_size,
                               work_mem=self.work_mem,
                               workers=self.workers)
        self._parse_cache: Dict[str, object] = {}
        # Prepared-plan caches, keyed by SQL text (or statement identity
        # for programmatic statements); each entry is
        # ``(statement, prepared, table_names)``.  The whole cache is
        # versioned by ``plan_cache_epoch``: any DDL or tag-registry
        # change clears it, which both invalidates stale plans and
        # bounds growth.  Statistics refreshes are gentler: they evict
        # only the entries whose ``table_names`` include the refreshed
        # table (see ``invalidate_plans_for``).
        self._select_cache: Dict[object, Tuple] = {}
        self._dml_cache: Dict[object, Tuple] = {}
        self._insert_cache: Dict[object, Tuple] = {}
        self._plan_epoch: Optional[Tuple[int, int]] = None
        self._stats_probe = 0
        # Activity counters (read by benchmarks and tests).
        self.statements_executed = 0
        self.rows_inserted = 0
        self.rows_updated = 0
        self.rows_deleted = 0
        self._sequences: Dict[str, int] = {}
        # -- observability (db/metrics.py) ------------------------------
        # The process-wide registry plus this database's buffer-cache
        # stats form the per-statement counter space: sessions bracket
        # every tracked statement with two compiled flat-tuple reads
        # (``_begin_statement``/``_finish_statement``) and the deltas
        # feed the statement aggregate, the slow-query log, and the
        # audit trail.
        self.metrics = REGISTRY
        self.statement_stats = StatementStats()
        # Slow-query threshold in milliseconds; 0 disables the log.
        if slow_query_ms is None:
            slow_query_ms = float(os.environ.get("REPRO_SLOW_QUERY_MS",
                                                 "0"))
        self.slow_query_ms = max(0.0, float(slow_query_ms))
        self.slow_queries = SlowQueryLog()
        # IFC audit trail: opt-in ring buffer (capacity in events;
        # 0/None disables).  Off by default — it records facts (e.g.
        # suppressed-row counts) that must not flow back to confined
        # processes.
        if audit_log is None:
            audit_log = int(os.environ.get("REPRO_AUDIT_LOG", "0"))
        self.audit = AuditLog(audit_log) if audit_log else None
        # -- durability (db/wal.py) --------------------------------------
        # ``wal`` is a log file path; ``None`` defers to ``REPRO_WAL``,
        # which names a *directory* so every Database in the process
        # gets its own log.  ``group_commit_ms`` is the commit-delay
        # window leaders wait for stragglers (``REPRO_GROUP_COMMIT_MS``;
        # 0 = fsync per flush leader, still batching whatever is
        # already queued).  Unset → no WAL, the seed behaviour.
        if wal is None:
            wal_dir = os.environ.get("REPRO_WAL", "").strip()
            if wal_dir:
                os.makedirs(wal_dir, exist_ok=True)
                wal = wal_mod.auto_wal_path(wal_dir)
        if group_commit_ms is None:
            group_commit_ms = float(os.environ.get("REPRO_GROUP_COMMIT_MS",
                                                   "0"))
        self.group_commit_ms = max(0.0, float(group_commit_ms))
        self.wal: Optional[wal_mod.WriteAheadLog] = None
        if isinstance(wal, wal_mod.WriteAheadLog):
            self.wal = wal                 # tests inject fault specs here
        elif wal is not None:
            self.wal = wal_mod.WriteAheadLog(
                wal, group_commit_ms=self.group_commit_ms)
        #: True while ``recover`` replays a log: suppresses re-logging
        #: of replayed DDL/sequence traffic.
        self._wal_replaying = False
        #: Replay watermark: log records below this index are already
        #: applied to this database (makes ``recover`` idempotent).
        self._wal_applied = 0
        #: Per-table original-tid → recovered-tid maps (replayed heaps
        #: are denser than the originals: aborted appends are absent).
        self._wal_tid_maps: Dict[str, Dict[int, int]] = {}
        #: Sequences bumped since the last logged commit; attached to
        #: the next commit record (sequences are non-transactional, so
        #: they ride along rather than get their own records).
        self._wal_dirty_seqs: Dict[str, int] = {}
        #: Commits applied by replay; ``recover`` refuses to run once
        #: ``txn_manager.commits`` has moved past this (new local
        #: commits would make the watermark meaningless).
        self._wal_replay_commits = 0
        self._reader = None
        self._reader_version = -1
        self._metrics_cells: List[Tuple[str, str]] = []
        self._spill_bytes_cell = -1
        self._suppressed_cell = -1
        self._norm_keys: Dict[str, str] = {}
        self._last_statement = None
        # Statement collectors (statement_stats / slow_queries / audit /
        # _norm_keys) are shared by every session on this database;
        # concurrent statements update them under this lock.  The
        # counter *reads* need no lock: they are per-thread
        # (core/counters.py), which is what makes the bracket deltas
        # safe under concurrency in the first place.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def connect(self, process=None) -> Session:
        """Open a session.  With IFC enabled, a process carrying the label
        and principal should be supplied; ``None`` connects an internal
        session with an empty label and no authority."""
        return Session(self, process)

    # ------------------------------------------------------------------
    # parsing and preparation (cached)
    # ------------------------------------------------------------------
    def parse(self, sql: str):
        statement = self._parse_cache.get(sql)
        if statement is None:
            statement = parse_statement(sql)
            self._parse_cache[sql] = statement
        return statement

    def parse_script(self, sql: str):
        return parse_script(sql)

    #: Every this many plan-cache probes, sweep the analyzed tables for
    #: modification drift and refresh their statistics (evicting only
    #: the cached plans that touch them).
    STATS_PROBE_INTERVAL = 256

    def plan_cache_epoch(self) -> Tuple[int, int]:
        """The versions the prepared-plan caches are keyed on.

        ``catalog.version`` bumps on every DDL statement — including
        ``CREATE/DROP INDEX`` and view changes — and ``tags.version``
        bumps on every tag-registry mutation (new tags, compound-tag
        membership).  Statistics refreshes are deliberately *not* part
        of the epoch: new histograms change plan optimality, never plan
        correctness, so a refresh evicts only the cached plans reading
        the refreshed table (``invalidate_plans_for``) instead of
        clearing everything.  Declassifying-view *authority* is also
        not part of the epoch: cached plans re-validate the view
        principal's authority on every execution, so revocation takes
        effect without a replan.
        """
        return (self.catalog.version, self.authority.tags.version)

    def _check_plan_epoch(self) -> None:
        epoch = self.plan_cache_epoch()
        if epoch != self._plan_epoch:
            self._select_cache.clear()
            self._dml_cache.clear()
            self._insert_cache.clear()
            self._plan_epoch = epoch
        self._stats_probe += 1
        if self._stats_probe >= self.STATS_PROBE_INTERVAL:
            self._stats_probe = 0
            self.stats_manager.refresh_drifted()

    def invalidate_plans_for(self, table_name: str) -> None:
        """Evict cached plans that read ``table_name`` (stats refresh).

        DML plans participate too: UPDATE/DELETE target scans come out
        of the same cost-based access-path enumeration as SELECT, so a
        refreshed histogram can legitimately flip their plan (e.g.
        full scan → index range scan once a range predicate turns out
        to be selective).
        """
        for cache in (self._select_cache, self._dml_cache,
                      self._insert_cache):
            stale = [key for key, entry in cache.items()
                     if table_name in entry[2]]
            for key in stale:
                del cache[key]

    def prepare_select(self, statement: ast.Select,
                       sql: Optional[str]) -> PreparedSelect:
        # The cache keeps a strong reference to the statement so the
        # id()-based fallback key can never alias a recycled object.
        self._check_plan_epoch()
        key = sql if sql is not None else id(statement)
        cached = self._select_cache.get(key)
        if cached is not None and cached[0] is statement:
            return cached[1]
        prepared = self.planner.plan_select(statement)
        self._select_cache[key] = (statement, prepared,
                                   plan_tables(prepared.plan))
        return prepared

    def prepare_dml(self, statement, sql: Optional[str]) -> PreparedDML:
        self._check_plan_epoch()
        key = sql if sql is not None else id(statement)
        cached = self._dml_cache.get(key)
        if cached is not None and cached[0] is statement:
            return cached[1]
        prepared = self.planner.plan_dml(statement)
        self._dml_cache[key] = (statement, prepared,
                                plan_tables(prepared.plan))
        return prepared

    def prepare_insert(self, statement: ast.Insert,
                       sql: Optional[str]) -> PreparedInsert:
        self._check_plan_epoch()
        key = sql if sql is not None else id(statement)
        cached = self._insert_cache.get(key)
        if cached is not None and cached[0] is statement:
            return cached[1]
        prepared = self._plan_insert(statement)
        tables = {statement.table}
        if prepared.select is not None:
            tables |= plan_tables(prepared.select.plan)
        self._insert_cache[key] = (statement, prepared, frozenset(tables))
        return prepared

    def _plan_insert(self, statement: ast.Insert) -> PreparedInsert:
        table = self.catalog.get_table(statement.table)
        schema = table.schema
        if statement.columns is not None:
            target_cols = list(statement.columns)
        else:
            target_cols = list(schema.column_names)
        positions = [schema.position(col) for col in target_cols]
        defaults = [column.default if column.has_default else None
                    for column in schema.columns]
        row_fns = None
        select = None
        if statement.select is not None:
            select = self.prepare_select(statement.select, None)
        else:
            compiler = self.planner.compiler(Scope())
            row_fns = [[compiler.compile(e) for e in row]
                       for row in statement.rows]
        return PreparedInsert(table, positions, defaults, row_fns, select)

    def explain(self, statement, sql: Optional[str] = None) -> List[str]:
        """One line per plan operator for ``EXPLAIN`` (shares the plan
        caches, so the rendered tree is the one execution would use)."""
        if isinstance(statement, ast.Select):
            prepared = self.prepare_select(statement, sql)
            return explain_plan(prepared.plan)
        if isinstance(statement, (ast.Update, ast.Delete)):
            prepared = self.prepare_dml(statement, sql)
            verb = "Update" if isinstance(statement, ast.Update) \
                else "Delete"
            return (["%s %s" % (verb, statement.table)]
                    + explain_plan(prepared.plan, indent=1))
        raise DatabaseError(
            "EXPLAIN supports SELECT, UPDATE, and DELETE, not %s"
            % type(statement).__name__)

    def resolve_tag_label(self, names: Sequence[str]) -> Label:
        if not names:
            return EMPTY_LABEL
        return Label(self.authority.tags.lookup(n).id for n in names)

    # ------------------------------------------------------------------
    # DDL (programmatic API)
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        table = Table(schema, page_size=self.page_size,
                      buffer_cache=self.buffer_cache,
                      store_labels=self.ifc_enabled)
        self.catalog.add_table(table)
        self._wal_log_ddl(("ddl", "create_table", schema))
        return table

    def create_index(self, name: str, table_name: str,
                     columns: Sequence[str], *, ordered: bool = False):
        table = self.catalog.get_table(table_name)
        index = table.create_index(name, columns, ordered=ordered)
        self.catalog._bump()
        self._wal_log_ddl(("ddl", "create_index", table_name, name,
                           tuple(columns), ordered))
        return index

    def drop_index(self, name: str) -> None:
        owners = [table for table in self.catalog.tables.values()
                  if name in table.indexes]
        if not owners:
            raise CatalogError("index %r does not exist" % name)
        if len(owners) > 1:
            raise CatalogError(
                "index name %r is ambiguous (tables: %s)"
                % (name, ", ".join(sorted(t.name for t in owners))))
        owners[0].drop_index(name)
        self.catalog._bump()
        self._wal_log_ddl(("ddl", "drop_index", name))

    def create_view(self, name: str, select: ast.Select, *,
                    declassify: Label = EMPTY_LABEL,
                    principal: Optional[int] = None) -> ViewDef:
        """Create a (possibly declassifying) view.

        For declassifying views the backing ``principal`` must hold
        authority for every declassified tag at creation time — "the user
        must have whatever authority is being given to the view"
        (section 4.3) — and the authority is re-checked on every use.
        """
        prepared = self.planner.plan_select(select)
        if declassify and self.ifc_enabled:
            if principal is None:
                raise AuthorityError(
                    "a declassifying view needs a backing principal")
            for tag_id in declassify:
                self.authority.check_authority(principal, tag_id)
        view = ViewDef(name=name, select=select,
                       columns=list(prepared.columns),
                       declassify=declassify, principal=principal)
        self.catalog.add_view(view)
        self._wal_log_ddl(("ddl", "create_view", name, select,
                           tuple(view.columns), tuple(declassify),
                           principal))
        return view

    def create_function(self, name: str, fn: Callable, *,
                        needs_context: bool = False) -> None:
        """Register a scalar function callable from SQL expressions."""
        self.catalog.add_function(FunctionDef(name=name, fn=fn,
                                              needs_context=needs_context))

    def create_procedure(self, name: str, fn: Callable, *,
                         closure_principal: Optional[int] = None,
                         creator=None) -> None:
        """Register a stored procedure; binding a principal makes it a
        stored authority closure (section 4.3).  If ``creator`` (an
        IFCProcess) is given, it must hold the closure's authority —
        creation-time check per section 3.3."""
        if closure_principal is not None and creator is not None:
            self.authority.principals.get(closure_principal)
        self.catalog.add_procedure(ProcedureDef(
            name=name, fn=fn, closure_principal=closure_principal))

    def create_trigger(self, name: str, table: str, events, timing: str,
                       fn: Callable, *,
                       closure_principal: Optional[int] = None) -> None:
        if isinstance(events, str):
            events = (events,)
        self.catalog.add_trigger(TriggerDef(
            name=name, table=table, events=frozenset(events), timing=timing,
            fn=fn, closure_principal=closure_principal))

    # ------------------------------------------------------------------
    # DDL via SQL
    # ------------------------------------------------------------------
    def execute_ddl(self, session: Session, statement):
        from .session import Result
        if isinstance(statement, ast.CreateTable):
            if statement.if_not_exists and \
                    self.catalog.relation_exists(statement.name):
                return Result()
            self.create_table(self._schema_from_ast(statement))
            return Result()
        if isinstance(statement, ast.CreateView):
            declassify = self.resolve_tag_label(statement.declassifying)
            principal = session.acting.principal if declassify else None
            self.create_view(statement.name, statement.select,
                             declassify=declassify, principal=principal)
            return Result()
        if isinstance(statement, ast.CreateIndex):
            self.create_index(statement.name, statement.table,
                              statement.columns, ordered=statement.ordered)
            return Result()
        if isinstance(statement, ast.DropTable):
            if statement.if_exists and not \
                    self.catalog.relation_exists(statement.name):
                return Result()
            self.catalog.drop_table(statement.name)
            self.stats_manager.forget(statement.name)
            self._wal_log_ddl(("ddl", "drop_table", statement.name))
            return Result()
        if isinstance(statement, ast.DropView):
            self.catalog.drop_view(statement.name)
            self._wal_log_ddl(("ddl", "drop_view", statement.name))
            return Result()
        if isinstance(statement, ast.DropIndex):
            self.drop_index(statement.name)
            return Result()
        raise DatabaseError("unsupported statement %r" % (statement,))

    def _schema_from_ast(self, statement: ast.CreateTable) -> TableSchema:
        columns: List[Column] = []
        primary_key: Optional[Tuple[str, ...]] = None
        uniques: List[UniqueConstraint] = []
        fks: List[ForeignKeyConstraint] = []
        checks: List[CheckConstraint] = []
        label_checks: List[LabelCheckConstraint] = []
        fk_counter = 0

        for col_def in statement.columns:
            sql_type = type_by_name(col_def.type_name, col_def.type_length)
            columns.append(Column(name=col_def.name, type=sql_type,
                                  not_null=col_def.not_null,
                                  default=col_def.default))
            if col_def.has_default and col_def.default is None:
                columns[-1].has_default = True
            if col_def.primary_key:
                if primary_key is not None:
                    raise CatalogError("multiple primary keys for table %r"
                                       % statement.name)
                primary_key = (col_def.name,)
                columns[-1].not_null = True
            if col_def.unique:
                uniques.append(UniqueConstraint(
                    name="%s_%s_key" % (statement.name, col_def.name),
                    columns=(col_def.name,)))
            if col_def.references is not None:
                fk_counter += 1
                ref_table, ref_column = col_def.references
                fks.append(ForeignKeyConstraint(
                    name="%s_fk%d" % (statement.name, fk_counter),
                    columns=(col_def.name,), ref_table=ref_table,
                    ref_columns=(ref_column,),
                    match_label=col_def.match_label))

        for constraint in statement.constraints:
            if constraint.kind == "primary_key":
                if primary_key is not None:
                    raise CatalogError("multiple primary keys for table %r"
                                       % statement.name)
                primary_key = constraint.columns
            elif constraint.kind == "unique":
                uniques.append(UniqueConstraint(
                    name=constraint.name or "%s_unique%d"
                    % (statement.name, len(uniques) + 1),
                    columns=constraint.columns))
            elif constraint.kind == "foreign_key":
                fk_counter += 1
                fks.append(ForeignKeyConstraint(
                    name=constraint.name or "%s_fk%d" % (statement.name,
                                                         fk_counter),
                    columns=constraint.columns,
                    ref_table=constraint.ref_table,
                    ref_columns=constraint.ref_columns,
                    match_label=constraint.match_label,
                    deferred=constraint.deferred))
            elif constraint.kind == "check":
                checks.append(CheckConstraint(
                    name=constraint.name or "%s_check%d"
                    % (statement.name, len(checks) + 1),
                    expr=constraint.expr))
            elif constraint.kind == "label_check":
                label_checks.append(LabelCheckConstraint(
                    name=constraint.name or "%s_label_check%d"
                    % (statement.name, len(label_checks) + 1),
                    expr=constraint.expr))
            else:
                raise CatalogError("unknown constraint kind %r"
                                   % constraint.kind)

        return TableSchema(statement.name, columns,
                           primary_key=primary_key, uniques=uniques,
                           foreign_keys=fks, checks=checks,
                           label_checks=label_checks)

    def next_sequence(self, name: str) -> int:
        """A simple named sequence.

        Note: the paper lists leak-free sequences as *future work*
        (section 10) — a sequential counter is an allocation channel if
        its values are exposed across labels.  Applications here only
        use sequences for ids of tuples whose existence the reader may
        already see.
        """
        value = self._sequences.get(name, 0) + 1
        self._sequences[name] = value
        if self.wal is not None and not self._wal_replaying:
            # Sequences are non-transactional (like PostgreSQL's): the
            # bump becomes durable with the next logged commit, which
            # records the then-current value (replay takes the max, so
            # it is idempotent and monotone).
            self._wal_dirty_seqs[name] = value
        return value

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def analyze(self, table_name: Optional[str] = None) -> List[str]:
        """Collect optimizer statistics (``ANALYZE [table]``).

        Like vacuum, statistics collection reads the heap outside the
        label rules (section 7.1 exempts maintenance); the numbers only
        steer plan choice, never tuple visibility.
        """
        return self.stats_manager.analyze(table_name)

    def vacuum(self, table_name: Optional[str] = None) -> int:
        """Garbage-collect dead versions (exempt from label rules).

        A full pass (no table name) also un-stalls the batched
        executor's MVCC fast path: with every aborted-created version
        reclaimed from every heap, the committed horizon may advance
        past old rollbacks (see ``TransactionManager.committed_horizon``).
        """
        if table_name is not None:
            return self.catalog.get_table(table_name).vacuum(self.txn_manager)
        removed = 0
        for table in self.catalog.tables.values():
            removed += table.vacuum(self.txn_manager)
        self.txn_manager.aborted_reclaimed()
        return removed

    # ------------------------------------------------------------------
    # durability (db/wal.py)
    # ------------------------------------------------------------------
    def _wal_log_commit(self, txn) -> None:
        """Make ``txn`` durable; called by ``Session.commit`` *before*
        the transaction manager acknowledges.  Raises (``WalError`` /
        ``CrashError``) when durability cannot be promised — the caller
        aborts the transaction, upholding logged-before-acknowledged."""
        if self.wal is None or self._wal_replaying:
            return
        record = wal_mod.build_commit_record(self, txn)
        if record is None:
            return                       # read-only: nothing to log
        try:
            self.wal.log_commit(record)
        except BaseException:
            # Put the un-logged sequence bumps back so a later commit
            # (fsync-failure mode: the process survives) re-carries
            # them rather than silently dropping durability for them.
            for name, value in record[3].items():
                if value > self._wal_dirty_seqs.get(name, 0):
                    self._wal_dirty_seqs[name] = value
            raise

    def _wal_log_ddl(self, record: tuple) -> None:
        """Log a DDL effect (immediately durable, non-transactional)."""
        if self.wal is not None and not self._wal_replaying:
            self.wal.log(record)

    def _take_wal_sequences(self) -> Dict[str, int]:
        """Detach the sequences bumped since the last logged commit."""
        if not self._wal_dirty_seqs:
            return {}
        seqs = self._wal_dirty_seqs
        self._wal_dirty_seqs = {}
        return seqs

    def recover(self, path: Optional[str] = None) -> Dict[str, object]:
        """Replay a WAL into this database (trusted maintenance op).

        ``path`` defaults to this database's own log.  Must run before
        the database commits anything of its own — the usual shape is
        a fresh ``Database`` sharing the crashed instance's authority
        state (tag ids must resolve identically).  Idempotent: records
        below the replay watermark are skipped, so recovering twice is
        a no-op.  Returns replay statistics (records seen/applied,
        transactions, DDL, tail disposition).
        """
        if path is None:
            if self.wal is None:
                raise wal_mod.WalError("no WAL configured and no path given")
            path = self.wal.path
        if self.txn_manager.write_commits != 0:
            # Replayed transactions bypass ``record_write``, so any
            # write commit here is the database's own — its heap tids
            # are unknown to the replay tid maps and replaying over
            # them could double-apply.  (Read-only commits are fine.)
            raise wal_mod.WalError(
                "recover() must run before this database commits its own "
                "writes (%d write commits present)"
                % self.txn_manager.write_commits)
        self._wal_replaying = True
        try:
            return wal_mod.replay(self, path)
        finally:
            self._wal_replaying = False

    def close(self) -> None:
        """Release the WAL file (the engine itself needs no teardown)."""
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------
    # metrics (db/metrics.py)
    # ------------------------------------------------------------------
    def _rebuild_reader(self) -> None:
        """Compile the per-statement counter reader: every registry
        cell plus this database's buffer-cache stats (per-``Database``
        state, so it cannot live in the process-wide registry)."""
        cells: List[Tuple[str, str]] = []
        owners: List[Tuple[object, str]] = []
        for group, field, owner in self.metrics.cells():
            cells.append((group, field))
            owners.append((owner, field))
        buffer_stats = self.buffer_cache.stats
        for field in ("hits", "misses", "evictions", "io_time"):
            cells.append(("buffer", field))
            owners.append((buffer_stats, field))
        self._metrics_cells = cells
        self._reader = compile_reader(owners)
        self._spill_bytes_cell = cells.index(("spill", "bytes_spilled"))
        self._suppressed_cell = cells.index(("labels", "rows_suppressed"))
        # Version last: a concurrent reader that sees the new version
        # sees the fully-rebuilt reader state.
        self._reader_version = self.metrics.version

    def metrics_cells(self) -> List[Tuple[str, str]]:
        """``(group, field)`` names, one per :meth:`read_counters` slot."""
        if self._reader_version != self.metrics.version:
            self._rebuild_reader()
        return list(self._metrics_cells)

    def read_counters(self) -> tuple:
        """All counters (registry + this database's buffer cache) as a
        flat tuple — the reader EXPLAIN ANALYZE probes call per row."""
        if self._reader_version != self.metrics.version:
            self._rebuild_reader()
        return self._reader()

    def counter_delta(self, before: tuple,
                      after: tuple) -> Dict[str, Dict[str, int]]:
        """Named nested delta between two :meth:`read_counters` reads."""
        out: Dict[str, Dict[str, int]] = {}
        for i, (group, field) in enumerate(self._metrics_cells):
            bucket = out.get(group)
            if bucket is None:
                bucket = out[group] = {}
            bucket[field] = after[i] - before[i]
        return out

    def _begin_statement(self) -> Tuple[float, tuple]:
        """Start of per-statement tracking: wall clock + counter read."""
        if self._reader_version != self.metrics.version:
            self._rebuild_reader()
        return (time.perf_counter(), self._reader())

    def _finish_statement(self, track: Tuple[float, tuple], statement,
                          sql: Optional[str], rowcount: int) -> None:
        """End of per-statement tracking: aggregate into the statement
        stats, the slow-query log, and the audit trail.  Hot path — a
        handful of microseconds per statement."""
        after = self._reader()
        started, before = track
        elapsed = time.perf_counter() - started
        self._last_statement = (before, after, elapsed, rowcount)
        if sql is not None:
            key = self._norm_keys.get(sql)
            if key is None:
                key = normalize_sql(sql)
        else:
            # Programmatic statements (no SQL text) aggregate by shape.
            key = "<%s>" % type(statement).__name__
        # ``before``/``after`` are this thread's own counter state, so
        # the deltas are statement-exact even with concurrent sessions;
        # the shared collectors are the only cross-thread state left.
        with self._stats_lock:
            if sql is not None and sql not in self._norm_keys \
                    and len(self._norm_keys) < 4096:
                self._norm_keys[sql] = key
            cell = self._spill_bytes_cell
            self.statement_stats.record(key, elapsed, rowcount,
                                        after[cell] - before[cell])
            threshold = self.slow_query_ms
            if threshold and elapsed * 1000.0 >= threshold:
                self.slow_queries.record(key, elapsed * 1000.0, rowcount,
                                         self.counter_delta(before, after))
            audit = self.audit
            if audit is not None:
                cell = self._suppressed_cell
                suppressed = after[cell] - before[cell]
                if suppressed:
                    audit.record("rows_suppressed", statement=key,
                                 count=suppressed)

    def _audit_denial(self, statement, sql: Optional[str], error) -> None:
        """Audit hook for write-rule / commit-label denials."""
        audit = self.audit
        if audit is None:
            return
        key = normalize_sql(sql) if sql is not None \
            else "<%s>" % type(statement).__name__
        with self._stats_lock:
            audit.record("write_denied", statement=key, error=str(error))

    def last_statement_metrics(self) -> Optional[Dict[str, object]]:
        """Named counter deltas (plus ``elapsed_ms``/``rows``) of the
        most recently tracked statement — what tests pin instead of
        hand-diffing module globals."""
        if self._last_statement is None:
            return None
        before, after, elapsed, rowcount = self._last_statement
        named: Dict[str, object] = self.counter_delta(before, after)
        named["elapsed_ms"] = elapsed * 1000.0
        named["rows"] = rowcount
        return named

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        cache = self.buffer_cache.stats
        snapshot = self.metrics.snapshot()
        # The registry groups (labels/index/exec/spill/stats) are
        # process-wide: with several Database instances in one process
        # they aggregate across them — diff before/after around the
        # work of interest, or read last_statement_metrics() /
        # statement_stats for attributed numbers.
        report: Dict[str, object] = dict(snapshot)
        report.update({
            "statements": self.statement_stats.snapshot(),
            "statements_executed": self.statements_executed,
            "slow_queries": self.slow_queries.snapshot(),
            "audit_events": self.audit.total if self.audit else 0,
            "rows_inserted": self.rows_inserted,
            "rows_updated": self.rows_updated,
            "rows_deleted": self.rows_deleted,
            "commits": self.txn_manager.commits,
            "aborts": self.txn_manager.aborts,
            "buffer_hits": cache.hits,
            "buffer_misses": cache.misses,
            "buffer_hit_rate": cache.hit_rate,
            "simulated_io_time": cache.io_time,
            "tables_analyzed": self.stats_manager.analyzed(),
            "polyinstantiated": {
                t.name: t.polyinstantiation_count
                for t in self.catalog.tables.values()
                if t.polyinstantiation_count
            },
        })
        return report
