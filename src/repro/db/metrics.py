"""Unified metrics: one registry over the engine's counter families.

Before this module, observability was four disconnected process-wide
counter singletons (``core/rules.COUNTERS``, ``db/indexes.COUNTERS``,
``db/physical.EXEC_COUNTERS``, ``db/spill.SPILL_STATS``) — no
per-statement attribution, no way to merge per-worker counts.  The
:data:`REGISTRY` keeps those objects as the live storage (hot paths
still do ``COUNTERS.field += 1`` on a slotted int; nothing slows down)
but gives them one namespace with:

* ``snapshot()`` / ``reset()`` / ``merge()`` — the API a future
  parallel executor needs: each worker accumulates into its own
  registry and the coordinator merges the snapshots;
* ``read()`` — a compiled flat-tuple reader (one ``LOAD_ATTR`` per
  counter, built with :func:`compile_reader`) cheap enough to call
  around *every* statement; the engine diffs two reads to attribute
  counters per statement;
* :meth:`MetricsRegistry.scope` — a context manager capturing the
  named delta and wall time of a block, used by tests and benchmarks
  instead of hand-diffing module globals.

On top of the registry live the statement-level collectors the engine
owns per :class:`~repro.db.engine.Database`:

* :class:`StatementStats` — a pg_stat_statements-style aggregate keyed
  on :func:`normalize_sql` (calls, total/mean/max time, rows, spill
  bytes), surfaced as ``Database.stats()["statements"]``;
* :class:`SlowQueryLog` — a ring buffer of statements that exceeded
  ``Database(slow_query_ms=…)``, each with its counter deltas;
* :class:`AuditLog` — the opt-in IFC audit trail: rows suppressed by
  the Label Confinement Rule, declassifying-view invocations, and
  write-rule denials (``IFCViolation``), so the paper's security
  semantics are observable, not just enforced;
* :class:`PlanRecorder` — the ``EXPLAIN ANALYZE`` instrumentation: it
  shallow-copies the (stateless-between-executions) plan tree, wraps
  every node in an :class:`OpProbe`, and attributes rows, batches,
  wall time, and counter deltas to each operator as the query runs.

Import direction: this module imports the counter owners (``core`` and
its ``db`` siblings); none of them import it back — ``core`` must stay
free of ``db`` imports, and the executor hot paths keep their direct
singleton increments.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core import rules as _rules
from ..core.counters import CounterGroup
from . import indexes as _indexes
from . import physical as _physical
from . import spill as _spill
from . import stats as _stats
from . import wal as _wal

_perf_counter = time.perf_counter


def compile_reader(cells: List[Tuple[object, str]]) -> Callable[[], tuple]:
    """Build a zero-argument function returning the counters as a flat
    tuple — one attribute load per counter, no loops or dict lookups,
    so a per-statement before/after pair costs a couple of
    microseconds.

    :class:`~repro.core.counters.CounterGroup` owners are read through
    the **calling thread's** state (hoisted once per call, then slot
    loads), so the per-statement bracket sees exactly the executing
    thread's own work — the delta-isolation fix for concurrent
    statements.  Plain owners (the per-database buffer-cache stats)
    keep the direct attribute load.
    """
    namespace: Dict[str, object] = {}
    parts = []
    prologue = []
    hoisted: Dict[int, str] = {}
    for i, (obj, field) in enumerate(cells):
        if isinstance(obj, CounterGroup):
            state = hoisted.get(id(obj))
            if state is None:
                name = "g%d" % i
                state = "s%d" % i
                namespace[name] = obj
                prologue.append("    %s = %s._local.state" % (state, name))
                hoisted[id(obj)] = state
            parts.append("%s.%s" % (state, field))
        else:
            name = "g%d" % i
            namespace[name] = obj
            parts.append("%s.%s" % (name, field))
    source = "def read():\n%s    return (%s%s)\n" % (
        "".join(line + "\n" for line in prologue),
        ", ".join(parts), "," if len(parts) == 1 else "")
    exec(source, namespace)
    return namespace["read"]


class MetricsRegistry:
    """Named counter groups over the existing slotted singletons.

    A *group* is any object with integer (or float) counter attributes;
    the registered field order is its ``__slots__`` order.  Groups are
    registered once at import time; :attr:`version` bumps on every
    registration so cached readers (here and per ``Database``) know to
    rebuild.
    """

    def __init__(self):
        self._groups: Dict[str, Tuple[object, Tuple[str, ...]]] = {}
        self._order: List[str] = []
        self.version = 0
        self._reader: Optional[Callable[[], tuple]] = None
        self._reader_version = -1

    # -- registration ---------------------------------------------------
    def register(self, name: str, group: object,
                 fields: Optional[Tuple[str, ...]] = None) -> object:
        """Register (or re-register) a counter group under ``name``."""
        if fields is None:
            fields = tuple(getattr(type(group), "FIELDS", ())
                           or getattr(type(group), "__slots__", ()))
        if not fields:
            raise ValueError("counter group %r has no fields" % name)
        if name not in self._groups:
            self._order.append(name)
        self._groups[name] = (group, fields)
        self.version += 1
        return group

    def group(self, name: str) -> object:
        return self._groups[name][0]

    def groups(self) -> List[str]:
        return list(self._order)

    def cells(self) -> Iterator[Tuple[str, str, object]]:
        """Every counter as ``(group_name, field, owner_object)``, in
        deterministic registration/slot order."""
        for name in self._order:
            group, fields = self._groups[name]
            for field in fields:
                yield name, field, group

    # -- whole-registry operations --------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Named nested snapshot ``{group: {field: value}}``.

        Thread-aware groups report cross-thread **totals** (the
        whole-process view ``Database.stats()`` and the benchmark
        snapshots want); plain attribute reads on a group stay
        thread-local (what the per-statement bracket wants)."""
        out: Dict[str, Dict[str, int]] = {}
        for name in self._order:
            group, fields = self._groups[name]
            if isinstance(group, CounterGroup):
                totals = group.totals()
                out[name] = {field: totals[field] for field in fields}
            else:
                out[name] = {field: getattr(group, field)
                             for field in fields}
        return out

    def reset(self) -> None:
        for name in self._order:
            group, fields = self._groups[name]
            if isinstance(group, CounterGroup):
                group.reset()
                continue
            for field in fields:
                setattr(group, field, type(getattr(group, field))())

    def merge(self, snapshot: Dict[str, Dict[str, int]]) -> None:
        """Add a named snapshot into the live counters — the
        coordinator half of the worker protocol: workers accumulate
        privately, then their snapshots merge here.  The merge lands
        on the **calling thread's** state, so a statement that gathers
        parallel workers sees their counts inside its own bracket.
        High-water gauges (:attr:`CounterGroup.MAX_FIELDS`) combine
        with ``max`` instead of ``+``."""
        for name, values in snapshot.items():
            entry = self._groups.get(name)
            if entry is None:
                continue
            group, fields = entry
            maxes = getattr(type(group), "MAX_FIELDS", ())
            for field in fields:
                if field in values:
                    if field in maxes:
                        if values[field] > getattr(group, field):
                            setattr(group, field, values[field])
                    else:
                        setattr(group, field,
                                getattr(group, field) + values[field])

    def read(self) -> tuple:
        """The counters as a flat tuple (compiled reader, cached until
        the registered-group set changes)."""
        if self._reader_version != self.version:
            self._reader = compile_reader(
                [(group, field) for _n, field, group in self.cells()])
            self._reader_version = self.version
        return self._reader()

    def named_delta(self, before: tuple,
                    after: tuple) -> Dict[str, Dict[str, int]]:
        """``{group: {field: after - before}}`` for two :meth:`read`\\ s."""
        out: Dict[str, Dict[str, int]] = {}
        for i, (name, field, _group) in enumerate(self.cells()):
            out.setdefault(name, {})[field] = after[i] - before[i]
        return out

    def scope(self) -> "MetricsScope":
        """``with REGISTRY.scope() as s: …`` — then ``s.delta`` holds
        the named counter deltas and ``s.elapsed`` the wall seconds."""
        return MetricsScope(self)


class MetricsScope:
    """Delta snapshot of a registry around a ``with`` block."""

    __slots__ = ("registry", "before", "after", "elapsed", "_started",
                 "_delta")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.before: Optional[tuple] = None
        self.after: Optional[tuple] = None
        self.elapsed = 0.0
        self._started = 0.0
        self._delta: Optional[Dict[str, Dict[str, int]]] = None

    def __enter__(self) -> "MetricsScope":
        self._delta = None
        self.before = self.registry.read()
        self._started = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = _perf_counter() - self._started
        self.after = self.registry.read()

    @property
    def delta(self) -> Dict[str, Dict[str, int]]:
        if self._delta is None:
            if self.after is None:
                raise RuntimeError("scope not finished")
            self._delta = self.registry.named_delta(self.before, self.after)
        return self._delta

    def __getitem__(self, group: str) -> Dict[str, int]:
        return self.delta[group]


#: The process-wide registry.  The module singletons stay the live
#: storage (and the backward-compatible aliases); registering them here
#: is what unifies ``Database.stats()``, per-statement deltas, EXPLAIN
#: ANALYZE, and the benchmark snapshots on one namespace.
REGISTRY = MetricsRegistry()
REGISTRY.register("labels", _rules.COUNTERS)
REGISTRY.register("index", _indexes.COUNTERS)
REGISTRY.register("exec", _physical.EXEC_COUNTERS)
REGISTRY.register("spill", _spill.SPILL_STATS)
REGISTRY.register("stats", _stats.COUNTERS)
REGISTRY.register("wal", _wal.WAL_STATS)


def reset() -> None:
    """Reset every registered counter (test isolation)."""
    REGISTRY.reset()


def snapshot() -> Dict[str, Dict[str, int]]:
    return REGISTRY.snapshot()


# ---------------------------------------------------------------------------
# statement-level collectors
# ---------------------------------------------------------------------------

_NORM_CACHE: Dict[str, str] = {}
_NORM_CACHE_CAP = 4096


def normalize_sql(sql: str) -> str:
    """The pg_stat_statements-style fingerprint: literals (numbers,
    strings) become ``?`` so ``…WHERE id = 7`` and ``…WHERE id = 9``
    aggregate under one key; whitespace and comments disappear with the
    lexer.  Unparsable text falls back to whitespace collapsing."""
    key = _NORM_CACHE.get(sql)
    if key is not None:
        return key
    from ..sql import lexer
    try:
        parts = []
        for token in lexer.tokenize(sql):
            if token.kind == lexer.EOF:
                break
            if token.kind in (lexer.NUMBER, lexer.STRING, lexer.PARAM):
                parts.append("?")
            else:
                parts.append(str(token.value))
        key = " ".join(parts)
    except Exception:
        key = " ".join(sql.split())
    if len(_NORM_CACHE) < _NORM_CACHE_CAP:
        _NORM_CACHE[sql] = key
    return key


class StatementStats:
    """Aggregate execution stats keyed on normalized SQL.

    Entries are mutable 5-lists ``[calls, total_s, max_s, rows,
    spill_bytes]`` so the per-statement record is a dict hit plus five
    in-place adds; :meth:`snapshot` shapes them for consumption.
    """

    __slots__ = ("entries", "capacity", "dropped")

    def __init__(self, capacity: int = 512):
        self.entries: Dict[str, list] = {}
        self.capacity = capacity
        self.dropped = 0

    def record(self, key: str, seconds: float, rows: int,
               spill_bytes: int) -> None:
        entry = self.entries.get(key)
        if entry is None:
            if len(self.entries) >= self.capacity:
                self.dropped += 1
                return
            self.entries[key] = [1, seconds, seconds, rows, spill_bytes]
            return
        entry[0] += 1
        entry[1] += seconds
        if seconds > entry[2]:
            entry[2] = seconds
        entry[3] += rows
        entry[4] += spill_bytes

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for key, (calls, total, worst, rows, spill_bytes) in \
                self.entries.items():
            out[key] = {
                "calls": calls,
                "total_ms": total * 1000.0,
                "mean_ms": total * 1000.0 / calls,
                "max_ms": worst * 1000.0,
                "rows": rows,
                "spill_bytes": spill_bytes,
            }
        return out

    def reset(self) -> None:
        self.entries.clear()
        self.dropped = 0


class SlowQueryLog:
    """Ring buffer of statements that exceeded the slow-query
    threshold, each carrying its per-statement counter deltas."""

    __slots__ = ("entries", "total")

    def __init__(self, capacity: int = 128):
        self.entries: deque = deque(maxlen=capacity)
        self.total = 0

    def record(self, statement: str, elapsed_ms: float, rows: int,
               delta: Dict[str, Dict[str, int]]) -> None:
        self.total += 1
        self.entries.append({
            "statement": statement,
            "elapsed_ms": elapsed_ms,
            "rows": rows,
            "counters": delta,
        })

    def snapshot(self) -> List[dict]:
        return list(self.entries)

    def reset(self) -> None:
        self.entries.clear()
        self.total = 0


class AuditLog:
    """Opt-in IFC audit trail (ring buffer).

    Event kinds and fields:

    * ``rows_suppressed`` — ``statement`` (normalized SQL), ``count``:
      tuples the statement's scans rejected under the Label
      Confinement Rule (section 4.2);
    * ``declassify_view`` — ``view``, ``tags``: a declassifying view's
      scan ran (its authority re-validated) for one execution
      (section 4.3);
    * ``write_denied`` — ``statement``, ``error``: a write-rule or
      commit-label denial (``IFCViolation``, sections 4.2/5.1).

    The log is observability for the *trusted* embedder — it records
    facts (suppressed-row counts) that must not flow back to the
    confined process that triggered them, which is why it is off by
    default and never surfaced through SQL.
    """

    __slots__ = ("events", "total")

    def __init__(self, capacity: int = 1024):
        self.events: deque = deque(maxlen=capacity)
        self.total = 0

    def record(self, kind: str, **fields) -> None:
        self.total += 1
        event = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    def of_kind(self, kind: str) -> List[dict]:
        return [e for e in self.events if e["kind"] == kind]

    def snapshot(self) -> List[dict]:
        return list(self.events)

    def reset(self) -> None:
        self.events.clear()
        self.total = 0


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE instrumentation
# ---------------------------------------------------------------------------

#: Short EXPLAIN ANALYZE labels for the counters worth showing
#: per-operator; anything not listed renders as ``group.field``.
#: ``buffer.hits``/``buffer.misses`` are folded into one ``touches``
#: figure (buffer-cache accesses) at render time.
_ANALYZE_LABELS: Dict[Tuple[str, str], str] = {
    ("labels", "covers_calls"): "covers",
    ("labels", "strip_calls"): "strip",
    ("labels", "rows_suppressed"): "suppressed",
    ("index", "lookups"): "lookups",
    ("index", "range_scans"): "range_scans",
    ("exec", "columns_materialized"): "cells",
    ("exec", "rows_widened"): "widened",
    ("spill", "spills"): "spills",
    ("spill", "partitions_created"): "spill_partitions",
    ("spill", "repartitions"): "repartitions",
    ("spill", "rows_spilled"): "spill_rows",
    ("spill", "bytes_spilled"): "spill_bytes",
    ("spill", "sort_spills"): "sort_spills",
    ("spill", "sort_runs"): "sort_runs",
    ("spill", "agg_spills"): "agg_spills",
    ("spill", "agg_partitions"): "agg_partitions",
    ("wal", "records"): "wal_records",
    ("wal", "bytes"): "wal_bytes",
    ("wal", "flushes"): "wal_flushes",
    ("wal", "commits"): "wal_commits",
}

#: Counters that never appear in per-operator EXPLAIN ANALYZE lines.
#: The stats sweep can fire during planning, outside any operator.
_ANALYZE_SKIP = {("stats", "tables_collected"), ("stats", "drift_refreshes"),
                 # A high-water gauge, not a counter — deltas between
                 # two reads of it are meaningless.
                 ("wal", "group_commit_size")}


class OpStats:
    """Actuals for one plan operator: rows/batches emitted, inclusive
    wall seconds, and inclusive counter deltas (one slot per recorder
    cell)."""

    __slots__ = ("rows", "batches", "seconds", "counters")

    def __init__(self, ncells: int):
        self.rows = 0
        self.batches = 0
        self.seconds = 0.0
        self.counters = [0] * ncells


class OpProbe:
    """Pull-through wrapper around one (cloned) plan node.

    Every ``next()`` on the wrapped iterator is timed and bracketed by
    two counter reads; because execution is single-threaded and
    pull-based, counters only move inside nested ``next()`` calls, so
    the accumulated per-operator delta is *inclusive* of the subtree
    and exact — the renderer subtracts children to get self-only
    figures.
    """

    __slots__ = ("inner", "stats", "read")

    def __init__(self, inner, stats: OpStats, read: Callable[[], tuple]):
        self.inner = inner
        self.stats = stats
        self.read = read

    @property
    def batch_size(self) -> int:
        return self.inner.batch_size

    def _wrap(self, iterator, per_item: Callable[[OpStats, object], None]):
        stats = self.stats
        read = self.read
        counters = stats.counters
        while True:
            started = _perf_counter()
            before = read()
            try:
                item = next(iterator)
            except StopIteration:
                after = read()
                stats.seconds += _perf_counter() - started
                if after != before:
                    for i in range(len(counters)):
                        counters[i] += after[i] - before[i]
                return
            after = read()
            stats.seconds += _perf_counter() - started
            if after != before:
                for i in range(len(counters)):
                    counters[i] += after[i] - before[i]
            per_item(stats, item)
            yield item

    def rows(self, ctx):
        def count(stats, _row):
            stats.rows += 1
        return self._wrap(self.inner.rows(ctx), count)

    def batches(self, ctx):
        def count(stats, batch):
            stats.batches += 1
            stats.rows += len(batch)
        return self._wrap(self.inner.batches(ctx), count)

    def versions(self, ctx):
        def count(stats, _version):
            stats.rows += 1
        return self._wrap(self.inner.versions(ctx), count)


#: Plan-node attributes that hold child plans (see
#: :func:`repro.db.physical._children`).
_CHILD_ATTRS = ("child", "left", "right", "inner")


class PlanRecorder:
    """Builds and renders an instrumented copy of a plan tree.

    Plans are cached and shared across executions, and all their
    execution state lives in generator locals — so the recorder never
    mutates the original tree: :meth:`instrument` shallow-copies each
    node, rewires the copies' child attributes to probes, and keys the
    collected :class:`OpStats` by the *original* node identity so
    rendering walks the original (cached) tree.
    """

    def __init__(self, db):
        self.db = db
        self.cells: List[Tuple[str, str]] = db.metrics_cells()
        self.read: Callable[[], tuple] = db.read_counters
        self._stats: Dict[int, Tuple[object, OpStats]] = {}
        self.total: Optional[List] = None
        self._started = 0.0
        self._before: Optional[tuple] = None

    # -- instrumentation ------------------------------------------------
    def instrument(self, plan) -> OpProbe:
        clone = copy.copy(plan)
        for attr in _CHILD_ATTRS:
            child = getattr(plan, attr, None)
            if isinstance(child, _physical.Plan):
                setattr(clone, attr, self.instrument(child))
        stats = OpStats(len(self.cells))
        self._stats[id(plan)] = (plan, stats)
        return OpProbe(clone, stats, self.read)

    def stats_of(self, plan) -> Optional[OpStats]:
        entry = self._stats.get(id(plan))
        return entry[1] if entry is not None else None

    # -- statement-total bracket ---------------------------------------
    def start(self) -> None:
        self._before = self.read()
        self._started = _perf_counter()

    def finish(self) -> None:
        elapsed = _perf_counter() - self._started
        after = self.read()
        before = self._before
        self.total = [elapsed,
                      [after[i] - before[i] for i in range(len(before))]]

    # -- rendering ------------------------------------------------------
    def _exclusive(self, plan) -> List:
        """Self-only counter deltas: inclusive minus children."""
        stats = self.stats_of(plan)
        counters = list(stats.counters)
        for child in _physical._children(plan):
            child_stats = self.stats_of(child)
            if child_stats is None:
                continue
            for i, value in enumerate(child_stats.counters):
                counters[i] -= value
        return counters

    def _format_counters(self, counters: List) -> str:
        parts = []
        touches = 0
        for (group, field), value in zip(self.cells, counters):
            if not value:
                continue
            if group == "buffer":
                if field in ("hits", "misses"):
                    touches += value
                    continue
                if field == "io_time":
                    parts.append("io=%.3fms" % (value * 1000.0))
                    continue
            if (group, field) in _ANALYZE_SKIP:
                continue
            label = _ANALYZE_LABELS.get((group, field),
                                        "%s.%s" % (group, field))
            parts.append("%s=%s" % (label, value))
        if touches:
            parts.insert(0, "touches=%d" % touches)
        return "".join(" " + part for part in parts)

    def render_plan(self, plan, indent: int = 0) -> List[str]:
        """The original tree's EXPLAIN lines, each annotated with the
        operator's actuals: ``(actual rows=… batches=… time=…ms …)``."""
        stats = self.stats_of(plan)
        line = "  " * indent + _physical._explain_line(plan)
        if stats is not None:
            actual = "actual rows=%d" % stats.rows
            if stats.batches:
                actual += " batches=%d" % stats.batches
            actual += " time=%.3fms" % (stats.seconds * 1000.0)
            actual += self._format_counters(self._exclusive(plan))
            line += "  (%s)" % actual
        lines = [line]
        for child in _physical._children(plan):
            lines.extend(self.render_plan(child, indent + 1))
        return lines

    def render_summary(self) -> List[str]:
        """Statement-total lines (the registry's per-statement delta —
        per-operator exclusive figures sum to exactly this)."""
        if self.total is None:
            return []
        elapsed, counters = self.total
        lines = ["Execution time: %.3f ms" % (elapsed * 1000.0)]
        formatted = self._format_counters(counters)
        if formatted:
            lines.append("Statement counters:%s" % formatted)
        return lines

    def render(self, plan) -> List[str]:
        return self.render_plan(plan) + self.render_summary()
