"""Fault injection for the durability subsystem.

Crash recovery that is merely *implemented* is recovery that silently
rots; it has to be *proven* against every place a machine can die.  This
module wraps the write-ahead log's file object (see
:mod:`repro.db.wal`) with a deterministic fault schedule so the crash
matrix in ``tests/test_wal.py`` can kill the "process" at every write
boundary, inside a record (torn and short writes), and at the fsync
gate — and then assert that :meth:`repro.db.engine.Database.recover`
reconstructs exactly the acknowledged-commit prefix, labels included.

Injection points are counted over the raw ``write``/``fsync`` calls the
WAL issues (the WAL writes exactly one call per record, plus one for
the file magic, so "write #N" is a stable, enumerable coordinate):

``record:N``
    Simulated power loss immediately *before* write ``N``: nothing of
    the record reaches the file.
``torn:N``
    Torn page write: the first half of write ``N``'s bytes reach the
    file, then the machine dies mid-record.
``short:N``
    A short write that dies inside the record *header* (first 3 bytes
    only) — the nastiest tail a scanner can meet.
``fsync:N``
    The ``N``-th ``fsync`` raises ``OSError`` instead of crashing.
    This is not a power loss: the process survives, but the kernel
    refused to promise durability, so the WAL must refuse to
    acknowledge the commit (and truncate the unsynced tail — the
    "fsync-gate" discipline; see :class:`repro.db.wal.WriteAheadLog`).

Specs come either from the ``REPRO_CRASH_POINT`` environment variable
(the CI sweep) or programmatically via :meth:`FaultSpec.parse` (the
in-process crash matrix).  After a crash fires, the wrapped file is
dead: every further operation raises :class:`CrashError`, modelling a
process that no longer exists.  The bytes already written remain on
disk for recovery to find, which is the point.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import DatabaseError

#: Environment variable holding the active crash point, e.g.
#: ``REPRO_CRASH_POINT=torn:12``.
ENV_VAR = "REPRO_CRASH_POINT"

#: Injection modes that simulate power loss at/inside a write.
CRASH_MODES = ("record", "torn", "short")
#: The non-crash mode: fsync reports failure but the process lives.
FSYNC_MODE = "fsync"


class CrashError(DatabaseError):
    """Simulated power loss: the process owning this file is dead.

    Raised by :class:`FaultyFile` at the scheduled injection point and
    on every operation thereafter.  Test drivers treat it the way an
    operator treats a dead server — discard the in-memory state and
    recover from the log.
    """


class FaultSpec:
    """A parsed injection point: ``(mode, n)``."""

    __slots__ = ("mode", "n")

    def __init__(self, mode: str, n: int):
        if mode not in CRASH_MODES + (FSYNC_MODE,):
            raise ValueError("unknown fault mode %r" % mode)
        if n < 0:
            raise ValueError("fault ordinal must be >= 0, got %d" % n)
        self.mode = mode
        self.n = n

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``"<mode>:<n>"`` (the ``REPRO_CRASH_POINT`` syntax)."""
        try:
            mode, _, ordinal = text.partition(":")
            return cls(mode.strip(), int(ordinal))
        except (ValueError, AttributeError):
            raise ValueError(
                "bad crash point %r; expected <mode>:<n> with mode one of "
                "%s" % (text, ", ".join(CRASH_MODES + (FSYNC_MODE,)))
            ) from None

    @classmethod
    def from_env(cls) -> Optional["FaultSpec"]:
        """The spec in ``REPRO_CRASH_POINT``, or ``None`` when unset."""
        text = os.environ.get(ENV_VAR, "").strip()
        return cls.parse(text) if text else None

    def __repr__(self):
        return "FaultSpec(%s:%d)" % (self.mode, self.n)


class FaultyFile:
    """A counting, optionally-faulting wrapper around a WAL file.

    Wraps any object exposing ``write(bytes)``, ``fsync()``,
    ``truncate(n)``, ``size()``, and ``close()`` (the
    :class:`repro.db.wal._RealFile` adapter).  With ``spec=None`` it is
    a pure pass-through that counts calls — the crash matrix first does
    a clean run to enumerate ``writes``/``fsyncs``, then replays the
    workload once per coordinate with a live spec.
    """

    __slots__ = ("_inner", "spec", "writes", "fsyncs", "dead")

    def __init__(self, inner, spec: Optional[FaultSpec] = None):
        self._inner = inner
        self.spec = spec
        self.writes = 0          # write calls seen (== records + magic)
        self.fsyncs = 0          # fsync calls seen
        self.dead = False

    # -- crash machinery -----------------------------------------------
    def _die(self, partial: bytes = b"") -> None:
        """Write the surviving prefix (if any), then die for good."""
        if partial:
            self._inner.write(partial)
        self.dead = True
        raise CrashError(
            "simulated crash at %r (write #%d, fsync #%d)"
            % (self.spec, self.writes, self.fsyncs))

    def _check_alive(self) -> None:
        if self.dead:
            raise CrashError("file is dead (crashed earlier at %r)"
                             % (self.spec,))

    # -- the file interface --------------------------------------------
    def write(self, data: bytes) -> None:
        self._check_alive()
        spec = self.spec
        if spec is not None and spec.mode in CRASH_MODES \
                and self.writes == spec.n:
            self.writes += 1
            if spec.mode == "record":
                self._die()                        # nothing reaches disk
            if spec.mode == "torn":
                self._die(data[:max(1, len(data) // 2)])
            self._die(data[:3])                    # "short": mid-header
        self.writes += 1
        self._inner.write(data)

    def fsync(self) -> None:
        self._check_alive()
        spec = self.spec
        if spec is not None and spec.mode == FSYNC_MODE \
                and self.fsyncs == spec.n:
            self.fsyncs += 1
            raise OSError("simulated fsync failure (fsync #%d)" % spec.n)
        self.fsyncs += 1
        self._inner.fsync()

    def truncate(self, n: int) -> None:
        # Truncation is the WAL's *reaction* to an fsync failure, not a
        # durability promise, so it stays available after an OSError —
        # but not after a simulated power loss.
        self._check_alive()
        self._inner.truncate(n)

    def size(self) -> int:
        return self._inner.size()

    def close(self) -> None:
        self._inner.close()
